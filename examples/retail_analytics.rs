//! Retail analytics: a mixed dashboard workload over a synthetic sales
//! fact table, comparing the no-sketch baseline against IMP with lazy and
//! eager maintenance (the scenario the paper's introduction motivates:
//! recurring HAVING/top-k dashboards over data that keeps changing).
//!
//! ```sh
//! cargo run --release --example retail_analytics
//! ```

use imp::data::synthetic::{load, SyntheticConfig};
use imp::data::workload::{mixed_workload, WorkloadOp};
use imp::engine::Database;
use imp::{Imp, ImpConfig, MaintenanceStrategy};
use std::time::Instant;

const ROWS: usize = 20_000;
const GROUPS: i64 = 1_000;

fn fresh_db() -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            rows: ROWS,
            groups: GROUPS,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

fn main() {
    // A 1U1Q dashboard: every refresh is preceded by a batch of sales.
    let workload = mixed_workload(1, 1, 200, 50, GROUPS, ROWS, 42);
    println!(
        "workload: {} ops ({} updates x {} rows, {} queries)",
        workload.len(),
        workload
            .ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Update { .. }))
            .count(),
        workload.delta_size,
        workload
            .ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Query(_)))
            .count(),
    );

    // Baseline: every query runs against the full table.
    let mut db = fresh_db();
    let t = Instant::now();
    for op in &workload.ops {
        match op {
            WorkloadOp::Query(sql) => {
                db.query(sql).unwrap();
            }
            WorkloadOp::Update { sql, .. } => {
                db.execute_sql(sql).unwrap();
            }
        }
    }
    let ns = t.elapsed();
    println!("no sketches  : {ns:?}");

    // IMP, lazy: sketches maintained when a query needs them.
    for (label, strategy) in [
        ("IMP (lazy)  ", MaintenanceStrategy::Lazy),
        (
            "IMP (eager) ",
            MaintenanceStrategy::Eager { batch_size: 50 },
        ),
    ] {
        let mut imp = Imp::new(
            fresh_db(),
            ImpConfig {
                strategy,
                fragments: 100,
                ..ImpConfig::default()
            },
        );
        let t = Instant::now();
        for op in &workload.ops {
            match op {
                WorkloadOp::Query(sql) | WorkloadOp::Update { sql, .. } => {
                    imp.execute(sql).unwrap();
                }
            }
        }
        let d = t.elapsed();
        println!(
            "{label}: {d:?}  ({:.1}x vs baseline, {} sketches stored, {:.0} KB state)",
            ns.as_secs_f64() / d.as_secs_f64(),
            imp.sketch_count(),
            imp.store_heap_size() as f64 / 1e3,
        );
    }
}
