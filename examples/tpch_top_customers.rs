//! TPC-H top customers: Q10-style top-k over joins (the paper's Q_space,
//! Appendix A.4) with bounded top-l state (§7.2) and state persistence
//! (§2: evict operator state, restore later, continue incrementally).
//!
//! ```sh
//! cargo run --release --example tpch_top_customers
//! ```

use imp::core::maintain::SketchMaintainer;
use imp::core::ops::OpConfig;
use imp::core::state_codec::{load_state, save_state};
use imp::data::{queries, tpch};
use imp::engine::Database;
use imp::sketch::{PartitionSet, RangePartition};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut db = Database::new();
    tpch::load(&mut db, 0.05, 17).unwrap();
    println!(
        "TPC-H: {} customers, {} orders, {} lineitems",
        db.table("customer").unwrap().row_count(),
        db.table("orders").unwrap().row_count(),
        db.table("lineitem").unwrap().row_count(),
    );

    let plan = db.plan_sql(queries::Q_SPACE).unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![RangePartition::equi_depth(
            &db,
            "customer",
            "c_custkey",
            100,
        )
        .unwrap()])
        .unwrap(),
    );

    // Bounded top-l state: remember only the best 200 candidate customers.
    let cfg = OpConfig {
        topk_buffer: Some(200),
        minmax_buffer: Some(200),
        ..OpConfig::default()
    };
    let t = Instant::now();
    let (mut m, result) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
    println!(
        "captured in {:?}; top-20 revenue customers: {} rows; state = {:.0} KB",
        t.elapsed(),
        result.len(),
        m.state_heap_size() as f64 / 1e3,
    );
    for (row, _) in result.iter().take(3) {
        println!("  {} -> revenue {}", row[1], row[2]);
    }

    // Persist the operator state (as the middleware would when evicting),
    // apply updates, restore, and continue maintaining incrementally.
    let saved = save_state(&m);
    println!("persisted state: {} bytes", saved.len());

    db.execute_sql(
        "INSERT INTO lineitem VALUES \
         (1, 1, 1, 8, 30, 9500.0, 0.00, 0.02, 'R', 19941215), \
         (2, 2, 1, 8, 10, 8000.0, 0.05, 0.02, 'R', 19941220)",
    )
    .unwrap();

    // A fresh maintainer (e.g. after restart) gets the saved state back.
    let (mut restored, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
    load_state(&mut restored, saved).unwrap();
    assert!(restored.is_stale(&db));
    let t = Instant::now();
    let report = restored.maintain(&db).unwrap();
    println!(
        "restored + maintained in {:?} ({} delta rows, recaptured: {})",
        t.elapsed(),
        report.metrics.delta_rows_fetched,
        report.recaptured,
    );

    // The uninterrupted maintainer must agree.
    m.maintain(&db).unwrap();
    assert_eq!(m.sketch(), restored.sketch());
    println!(
        "sketch agrees with uninterrupted maintenance: {} fragments",
        m.sketch().fragment_count()
    );
}
