//! Quickstart: the paper's running example (Fig. 1, Ex. 1.1/1.2) end to
//! end through the IMP middleware.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use imp::engine::Database;
use imp::storage::{row, DataType, Field, Schema};
use imp::{Imp, ImpConfig, ImpResponse, QueryMode};

fn main() {
    // 1. A backend database with the `sales` table of paper Fig. 1.
    let mut db = Database::new();
    db.create_table(
        "sales",
        Schema::new(vec![
            Field::new("sid", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("productname", DataType::Str),
            Field::new("price", DataType::Int),
            Field::new("numsold", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("sales")
        .unwrap()
        .bulk_load([
            row![1, "Lenovo", "ThinkPad T14s Gen 2", 349, 1],
            row![2, "Lenovo", "ThinkPad T14s Gen 2", 449, 2],
            row![3, "Apple", "MacBook Air 13-inch", 1199, 1],
            row![4, "Apple", "MacBook Pro 14-inch", 3875, 1],
            row![5, "Dell", "Dell XPS 13 Laptop", 1345, 1],
            row![6, "HP", "HP ProBook 450 G9", 999, 4],
            row![7, "HP", "HP ProBook 550 G9", 899, 1],
        ])
        .unwrap();

    // 2. IMP as middleware. The paper partitions `sales` on `price` with
    //    ranges ρ1..ρ4; `price` is not a group-by attribute, so we opt in
    //    explicitly (§4.4 assumes partition attributes are safe).
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 4,
            partition_overrides: vec![("sales".into(), "price".into())],
            allow_unsafe_attributes: true,
            ..ImpConfig::default()
        },
    );

    let q_top = "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                 GROUP BY brand HAVING SUM(price * numsold) > 5000";

    // 3. First execution captures a provenance sketch.
    let ImpResponse::Rows { result, mode } = imp.execute(q_top).unwrap() else {
        unreachable!()
    };
    println!("Q_top (first run, {:?}):", kind(&mode));
    for (r, _) in result.canonical() {
        println!("  {r}");
    }

    // 4. Re-running uses the sketch: the engine skips fragments outside
    //    P = {ρ3, ρ4}.
    let ImpResponse::Rows { result, mode } = imp.execute(q_top).unwrap() else {
        unreachable!()
    };
    println!(
        "Q_top (second run, {:?}): scanned {} rows, skipped {}",
        kind(&mode),
        result.stats.rows_scanned,
        result.stats.rows_skipped
    );

    // 5. Ex. 1.2: inserting s8 pushes HP over the threshold. The sketch is
    //    stale; IMP maintains it incrementally from the one-tuple delta.
    imp.execute("INSERT INTO sales VALUES (8, 'HP', 'HP ProBook 650 G10', 1299, 1)")
        .unwrap();
    let ImpResponse::Rows { result, mode } = imp.execute(q_top).unwrap() else {
        unreachable!()
    };
    match &mode {
        QueryMode::Maintained(report) => println!(
            "Q_top (after insert, maintained): Δsketch added={:?} removed={:?}, \
             {} delta rows processed",
            report.sketch_delta.added,
            report.sketch_delta.removed,
            report.metrics.delta_rows_fetched,
        ),
        other => println!("unexpected mode {other:?}"),
    }
    for (r, _) in result.canonical() {
        println!("  {r}");
    }
}

fn kind(mode: &QueryMode) -> &'static str {
    match mode {
        QueryMode::NoSketch => "no sketch",
        QueryMode::Captured => "captured",
        QueryMode::UsedFresh => "used fresh sketch",
        QueryMode::Maintained(_) => "maintained",
    }
}
