//! Crime hotspots: the paper's real-world scenario (§8.2.2) — CQ1 (crimes
//! per beat and year) and CQ2 (areas with more than 1000 crimes) over a
//! Chicago-crimes-like dataset, with incremental maintenance as new
//! incidents stream in.
//!
//! ```sh
//! cargo run --release --example crime_hotspots
//! ```

use imp::core::maintain::SketchMaintainer;
use imp::core::ops::OpConfig;
use imp::data::crimes;
use imp::data::queries::{CRIMES_CQ1, CRIMES_CQ2};
use imp::engine::Database;
use imp::sketch::{apply_sketch_filter, PartitionSet, RangePartition};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let rows = 100_000;
    let mut db = Database::new();
    crimes::load(&mut db, rows, 11).unwrap();
    println!("crimes table: {rows} incidents, {} beats", crimes::BEATS);

    // Partition on `beat` (a group-by attribute of both queries → safe).
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::equi_depth(&db, "crimes", "beat", 100).unwrap()
        ])
        .unwrap(),
    );

    for (name, sql) in [("CQ1", CRIMES_CQ1), ("CQ2", CRIMES_CQ2)] {
        let plan = db.plan_sql(sql).unwrap();
        let t = Instant::now();
        let (m, result) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
                .unwrap();
        println!(
            "\n{name}: captured in {:?}; {} result rows; sketch covers {}/{} fragments",
            t.elapsed(),
            result.len(),
            m.sketch().fragment_count(),
            pset.total_fragments(),
        );
        // Answer the query through the sketch.
        let rewritten = apply_sketch_filter(&plan, m.sketch()).unwrap();
        let full = db.execute_plan(&plan).unwrap();
        let skipped = db.execute_plan(&rewritten).unwrap();
        println!(
            "{name}: full scan reads {} rows; sketch scan reads {} (skips {})",
            full.stats.rows_scanned, skipped.stats.rows_scanned, skipped.stats.rows_skipped,
        );
        assert_eq!(full.canonical(), skipped.canonical());
    }

    // Stream new incidents for the top Zipf beats; maintain CQ2.
    let plan = db.plan_sql(CRIMES_CQ2).unwrap();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let before = m.sketch().fragment_count();
    for batch in 0..5 {
        let values: Vec<String> = (0..200)
            .map(|i| {
                let id = rows as i64 * 10 + batch * 1000 + i;
                // A burst of incidents in a quiet tail beat.
                let beat = 180i64;
                let district = beat * crimes::DISTRICTS / crimes::BEATS;
                let ward = beat * crimes::WARDS / crimes::BEATS;
                let ca = beat * crimes::COMMUNITY_AREAS / crimes::BEATS;
                format!("({id}, 2024, {beat}, {district}, {ward}, {ca}, 'THEFT', false)")
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO crimes VALUES {}", values.join(", ")))
            .unwrap();
        let t = Instant::now();
        let report = m.maintain(&db).unwrap();
        println!(
            "batch {batch}: maintained in {:?} (Δ+{:?} Δ-{:?})",
            t.elapsed(),
            report.sketch_delta.added,
            report.sketch_delta.removed,
        );
    }
    println!(
        "CQ2 sketch fragments: {before} -> {} (hotspot beat crossed the \
         1000-incident threshold)",
        m.sketch().fragment_count()
    );
}
