//! Failure-injection and edge-case tests: unsupported operators fall back
//! gracefully, corrupted persisted state is rejected, unsafe partitions
//! are refused, and degenerate inputs (empty tables, NULLs in partition
//! columns) behave.

use imp::core::maintain::SketchMaintainer;
use imp::core::ops::OpConfig;
use imp::core::state_codec::{load_state, save_state};
use imp::engine::Database;
use imp::sketch::{capture, PartitionSet, RangePartition};
use imp::storage::{row, DataType, Field, Row, Schema, Value};
use imp::{Imp, ImpConfig, ImpResponse, QueryMode};
use std::sync::Arc;

fn db_gv(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::nullable("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load(rows.iter().map(|(g, v)| row![*g, *v]))
        .unwrap();
    db
}

#[test]
fn except_is_answered_through_no_sketch_path() {
    // Set difference (paper §9 future work) cannot be sketched; the
    // middleware transparently answers it directly.
    let db = db_gv(&[(1, 10), (2, 20), (3, 30)]);
    let mut imp = Imp::new(db, ImpConfig::default());
    let sql = "SELECT g FROM t WHERE v < 25 EXCEPT SELECT g FROM t WHERE v < 15";
    let ImpResponse::Rows { result, mode } = imp.execute(sql).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::NoSketch), "{mode:?}");
    assert_eq!(result.canonical(), vec![(row![2], 1)]);
}

#[test]
fn except_all_respects_multiplicities() {
    let db = db_gv(&[(1, 10), (1, 10), (1, 10), (2, 20)]);
    let r = db
        .query("SELECT g FROM t EXCEPT ALL SELECT g FROM t WHERE v = 20")
        .unwrap();
    // g=1 has 3 copies minus 0, g=2 has 1 minus 1.
    assert_eq!(r.canonical(), vec![(row![1], 3)]);
    let r = db
        .query("SELECT g FROM t EXCEPT SELECT g FROM t WHERE v = 20")
        .unwrap();
    assert_eq!(r.canonical(), vec![(row![1], 1)]);
}

#[test]
fn except_arity_mismatch_rejected() {
    let db = db_gv(&[(1, 10)]);
    assert!(db
        .query("SELECT g FROM t EXCEPT SELECT g, v FROM t")
        .is_err());
}

#[test]
fn explain_renders_the_plan() {
    let db = db_gv(&[(1, 10)]);
    let mut imp = Imp::new(db, ImpConfig::default());
    let ImpResponse::Explained(text) = imp
        .execute("EXPLAIN SELECT g, sum(v) FROM t GROUP BY g HAVING sum(v) > 5")
        .unwrap()
    else {
        panic!()
    };
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("Filter"), "{text}");
    assert!(text.contains("Scan t"), "{text}");
}

#[test]
fn corrupted_state_rejected() {
    let db = db_gv(&[(1, 10), (2, 20)]);
    let plan = db
        .plan_sql("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, vec![Value::Int(2)]).unwrap()
        ])
        .unwrap(),
    );
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let saved = save_state(&m);

    // Truncations at every prefix must error, never panic.
    for cut in 0..saved.len().min(64) {
        assert!(load_state(&mut m, saved.slice(..cut)).is_err(), "cut {cut}");
    }
    // Bit-flipped header rejected.
    let mut bytes = saved.to_vec();
    bytes[0] ^= 0xff;
    assert!(load_state(&mut m, bytes::Bytes::from(bytes)).is_err());
    // Pristine bytes still load.
    assert!(load_state(&mut m, saved).is_ok());
}

#[test]
fn unsafe_partition_override_rejected_without_opt_in() {
    let db = db_gv(&[(1, 10), (2, 20)]);
    let mut imp = Imp::new(
        db,
        ImpConfig {
            // v is the aggregated attribute — not safe for this query.
            partition_overrides: vec![("t".into(), "v".into())],
            allow_unsafe_attributes: false,
            fragments: 2,
            ..ImpConfig::default()
        },
    );
    let err = imp.execute("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5");
    assert!(err.is_err());
}

#[test]
fn empty_table_capture_and_growth() {
    let db = db_gv(&[]);
    let plan = db
        .plan_sql("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, vec![Value::Int(2)]).unwrap()
        ])
        .unwrap(),
    );
    let mut db = db;
    let (mut m, result) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    assert!(result.is_empty());
    assert_eq!(m.sketch().fragment_count(), 0);
    db.execute_sql("INSERT INTO t VALUES (1, 10)").unwrap();
    m.maintain(&db).unwrap();
    assert_eq!(m.sketch(), &capture(&plan, &db, &pset).unwrap().sketch);
}

#[test]
fn nulls_in_partition_column_are_handled() {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::nullable("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load(vec![
            Row::new(vec![Value::Null, Value::Int(10)]),
            row![1, 20],
            row![5, 30],
        ])
        .unwrap();
    let plan = db
        .plan_sql("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, vec![Value::Int(3)]).unwrap()
        ])
        .unwrap(),
    );
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // NULLs land in fragment 0 by convention; maintenance stays exact.
    db.execute_sql("DELETE FROM t WHERE v = 10").unwrap();
    m.maintain(&db).unwrap();
    assert_eq!(m.sketch(), &capture(&plan, &db, &pset).unwrap().sketch);
}

#[test]
fn describe_sketches_reports_store_state() {
    let db = db_gv(&[(1, 10), (2, 20), (3, 30)]);
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 2,
            ..Default::default()
        },
    );
    imp.execute("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5")
        .unwrap();
    let summaries = imp.describe_sketches();
    assert_eq!(summaries.len(), 1);
    let s = &summaries[0];
    assert!(s.template.contains('?'), "{}", s.template);
    assert!(!s.stale);
    assert!(s.fragments <= s.total_fragments);
    // An update flips staleness.
    imp.execute("INSERT INTO t VALUES (1, 100)").unwrap();
    assert!(imp.describe_sketches()[0].stale);
}

#[test]
fn queries_without_sketchable_attribute_run_directly() {
    // Monotone query with all columns safe BUT a table with no rows on a
    // Str attribute chosen — force the no-partition path with an override
    // naming a missing attribute? Simpler: a query over a table with one
    // column where the equi-depth partition degenerates to one fragment —
    // still works; assert results equal the direct path.
    let db = db_gv(&[(1, 10), (2, 20)]);
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 8,
            ..Default::default()
        },
    );
    let ImpResponse::Rows { result, .. } = imp.execute("SELECT g, v FROM t WHERE v > 5").unwrap()
    else {
        panic!()
    };
    assert_eq!(result.canonical().len(), 2);
}

#[test]
fn eviction_roundtrip_through_middleware() {
    // Paper §2: evict operator state under memory pressure; continue
    // incrementally from the persisted state afterwards.
    let db = db_gv(&[(1, 10), (2, 20), (3, 30)]);
    let q = "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5";
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 2,
            ..Default::default()
        },
    );
    imp.execute(q).unwrap();
    let before = imp.describe_sketches()[0].state_bytes;
    let freed = imp.evict_all_states().unwrap();
    assert!(freed > 0);
    assert!(imp.describe_sketches()[0].state_bytes < before);
    // Sketch still answers reads while evicted.
    let ImpResponse::Rows { mode, .. } = imp.execute(q).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::UsedFresh), "{mode:?}");
    // An update forces restore + incremental maintenance.
    imp.execute("INSERT INTO t VALUES (1, 100)").unwrap();
    let ImpResponse::Rows { result, mode } = imp.execute(q).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Maintained(_)), "{mode:?}");
    assert!(result
        .canonical()
        .iter()
        .any(|(r, _)| r[0] == Value::Int(1) && r[1] == Value::Int(110)));
}

#[test]
fn repartition_all_recaptures_with_fresh_ranges() {
    let db = db_gv(&[(1, 10), (2, 20), (3, 30)]);
    let q = "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5";
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 2,
            ..Default::default()
        },
    );
    imp.execute(q).unwrap();
    // Shift the distribution heavily, then repartition (§7.4).
    for g in 100..160 {
        imp.execute(&format!("INSERT INTO t VALUES ({g}, 50)"))
            .unwrap();
    }
    let n = imp.repartition_all().unwrap();
    assert_eq!(n, 1);
    let s = &imp.describe_sketches()[0];
    assert!(!s.stale);
    // And the query still answers correctly afterwards.
    let ImpResponse::Rows { result, .. } = imp.execute(q).unwrap() else {
        panic!()
    };
    assert_eq!(result.canonical().len(), 63); // 3 original + 60 new groups
}

#[test]
fn vacuum_preserves_maintenance_correctness() {
    // Deletes leave tombstones + delta records; vacuum reclaims both
    // without disturbing subsequent incremental maintenance.
    let db = db_gv(&[(1, 10), (2, 20), (3, 30), (4, 40)]);
    let q = "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 15";
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 2,
            ..Default::default()
        },
    );
    imp.execute(q).unwrap();
    imp.execute("DELETE FROM t WHERE g = 4").unwrap();
    // Maintain (consumes the delta), then vacuum.
    imp.execute(q).unwrap();
    let (reclaimed, dropped) = imp.vacuum();
    assert_eq!(reclaimed, 1, "tombstone reclaimed");
    assert_eq!(dropped, 1, "consumed delta record dropped");
    // Further updates + maintenance still work and stay correct.
    imp.execute("INSERT INTO t VALUES (2, 5)").unwrap();
    let ImpResponse::Rows { result, mode } = imp.execute(q).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Maintained(_)), "{mode:?}");
    assert_eq!(result.canonical(), vec![(row![2, 25], 1), (row![3, 30], 1)]);
}

#[test]
fn vacuum_horizon_is_per_table() {
    // Maintained versions are table-local (split-invariant versioning):
    // a sketch over a low-traffic table must not pin every other table's
    // delta log. Sketch on `t` only; heavy updates on `u`; after
    // maintaining the `t` sketch, vacuum must reclaim `u`'s records even
    // though the sketch's version predates them.
    let mut db = db_gv(&[(1, 10), (2, 20)]);
    db.create_table(
        "u",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("w", DataType::Int),
        ]),
    )
    .unwrap();
    let q = "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5";
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 2,
            ..Default::default()
        },
    );
    imp.execute(q).unwrap();
    imp.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    imp.execute(q).unwrap(); // maintain: consumes t's record
    for i in 0..10 {
        imp.execute(&format!("INSERT INTO u VALUES ({i}, {i})"))
            .unwrap();
    }
    let (_, dropped) = imp.vacuum();
    assert_eq!(
        dropped, 11,
        "t's consumed record and all of unsketched u's records reclaimed"
    );
    // The t sketch keeps working.
    imp.execute("INSERT INTO t VALUES (1, 7)").unwrap();
    let ImpResponse::Rows { result, .. } = imp.execute(q).unwrap() else {
        panic!()
    };
    assert_eq!(
        result.canonical(),
        vec![(row![1, 17], 1), (row![2, 20], 1), (row![3, 30], 1)]
    );
}

#[test]
fn vacuum_keeps_unconsumed_deltas() {
    // A stale sketch still needs its delta records: vacuum must not drop
    // them before maintenance ran.
    let db = db_gv(&[(1, 10), (2, 20)]);
    let q = "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 5";
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 2,
            ..Default::default()
        },
    );
    imp.execute(q).unwrap();
    imp.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    let (_, dropped) = imp.vacuum();
    assert_eq!(dropped, 0, "pending delta must survive vacuum");
    // Maintenance still sees the insert.
    let ImpResponse::Rows { result, .. } = imp.execute(q).unwrap() else {
        panic!()
    };
    assert_eq!(result.canonical().len(), 3);
}
