//! Fast, fully deterministic smoke test of the paper's Fig. 1 running
//! example, end to end through the facade: create `sales`, capture a
//! sketch for Q_top, apply an INSERT, and verify that incremental
//! maintenance produces exactly the sketch a from-scratch recapture
//! would. This is the regression canary that still runs when the
//! property suites are dialed down via `PROPTEST_CASES`.

use imp::core::maintain::SketchMaintainer;
use imp::core::ops::OpConfig;
use imp::engine::Database;
use imp::sketch::capture;
use imp::storage::{row, DataType, Field, Schema, Value};
use imp::{Imp, ImpConfig, ImpResponse, PartitionSet, QueryMode, RangePartition};
use std::sync::Arc;

/// Q_top of the paper's §1: brands with revenue above 5000.
const QTOP: &str = "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                    GROUP BY brand HAVING SUM(price * numsold) > 5000";

fn sales_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "sales",
        Schema::new(vec![
            Field::new("sid", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("price", DataType::Int),
            Field::new("numsold", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("sales")
        .unwrap()
        .bulk_load([
            row![1, "Lenovo", 349, 1],
            row![2, "Lenovo", 449, 2],
            row![3, "Apple", 1199, 1],
            row![4, "Apple", 3875, 1],
            row![5, "Dell", 1345, 1],
            row![6, "HP", 999, 4],
            row![7, "HP", 899, 1],
        ])
        .unwrap();
    db
}

/// Fig. 1 through the maintainer API: capture, INSERT s8, maintain,
/// compare against recapture.
#[test]
fn fig1_maintain_equals_recapture() {
    let mut db = sales_db();
    let plan = db.plan_sql(QTOP).unwrap();
    // The φ_price partition of Ex. 1.1: ranges split at 601 / 1001 / 1501.
    let pset = Arc::new(
        PartitionSet::new(vec![RangePartition::new(
            "sales",
            "price",
            2,
            vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
        )
        .unwrap()])
        .unwrap(),
    );
    let (mut m, first) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // Initially only Apple qualifies; its tuples live in fragments ρ3, ρ4.
    assert_eq!(first, vec![(row!["Apple", 5074], 1)]);
    assert_eq!(m.sketch().fragments_of_partition(0), vec![2, 3]);

    // Ex. 1.2: inserting s8 pushes HP over the threshold.
    db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    assert!(m.is_stale(&db));
    let report = m.maintain(&db).unwrap();
    assert!(!report.recaptured, "small insert must not force recapture");
    assert_eq!(report.sketch_delta.added, vec![1]); // gains ρ2
    assert!(report.sketch_delta.removed.is_empty());

    // The maintained sketch equals a from-scratch recapture...
    let recaptured = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &recaptured.sketch);
    // ...and the maintained answer matches direct evaluation.
    assert_eq!(
        imp::engine::database::canonical_bag(&recaptured.result),
        db.execute_plan(&plan).unwrap().canonical()
    );
}

/// The same flow through the user-facing middleware: first query captures,
/// second uses the sketch, the update keeps it maintained.
#[test]
fn fig1_through_middleware() {
    let mut imp = Imp::new(
        sales_db(),
        ImpConfig {
            fragments: 4,
            ..Default::default()
        },
    );

    let ImpResponse::Rows { result, mode } = imp.execute(QTOP).unwrap() else {
        panic!("expected rows")
    };
    assert!(matches!(mode, QueryMode::Captured), "{mode:?}");
    assert_eq!(result.canonical(), vec![(row!["Apple", 5074], 1)]);

    let ImpResponse::Rows { mode, .. } = imp.execute(QTOP).unwrap() else {
        panic!("expected rows")
    };
    assert!(matches!(mode, QueryMode::UsedFresh), "{mode:?}");

    imp.execute("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    let ImpResponse::Rows { result, .. } = imp.execute(QTOP).unwrap() else {
        panic!("expected rows")
    };
    assert_eq!(
        result.canonical(),
        vec![(row!["Apple", 5074], 1), (row!["HP", 6194], 1)]
    );
}
