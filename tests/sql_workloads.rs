//! Broad differential SQL coverage: a battery of diverse queries run both
//! through the IMP middleware and directly against a replica backend,
//! interleaved with updates (including TPC-H refresh streams). Results
//! must agree at every step.

use imp::data::tpch;
use imp::data::workload::WorkloadOp;
use imp::engine::Database;
use imp::{Imp, ImpConfig, ImpResponse};

const TPCH_QUERIES: &[&str] = &[
    // Aggregation + HAVING over one table.
    "SELECT l_orderkey, sum(l_quantity) AS q FROM lineitem \
     GROUP BY l_orderkey HAVING sum(l_quantity) > 100",
    // Aggregation + HAVING over a join.
    "SELECT o_custkey, sum(l_extendedprice) AS rev \
     FROM orders JOIN lineitem ON (o_orderkey = l_orderkey) \
     GROUP BY o_custkey HAVING sum(l_extendedprice) > 40000",
    // Top-k over aggregation.
    "SELECT l_orderkey, sum(l_extendedprice) AS v FROM lineitem \
     GROUP BY l_orderkey ORDER BY v DESC LIMIT 5",
    // MIN/MAX aggregates.
    "SELECT l_returnflag, min(l_quantity) AS mn, max(l_quantity) AS mx \
     FROM lineitem GROUP BY l_returnflag",
    // Multi-way comma join with WHERE keys (Q10 shape).
    "SELECT c_custkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
     FROM customer, orders, lineitem \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND l_returnflag = 'R' \
     GROUP BY c_custkey ORDER BY revenue DESC LIMIT 10",
    // DISTINCT.
    "SELECT DISTINCT o_orderstatus FROM orders",
    // Plain SPJ with BETWEEN.
    "SELECT o_orderkey, o_totalprice FROM orders \
     WHERE o_orderdate BETWEEN 19940101 AND 19941231 AND o_totalprice > 4000",
    // count(*) global.
    "SELECT count(*) FROM lineitem WHERE l_discount > 0.05",
    // EXCEPT (future-work operator; engine-evaluated).
    "SELECT o_custkey FROM orders WHERE o_totalprice > 3000 \
     EXCEPT SELECT o_custkey FROM orders WHERE o_orderstatus = 'F'",
];

/// Compare two canonical bags, tolerating float round-off: different
/// evaluation paths (capture vs direct) sum lineitem prices in different
/// orders, and float addition is not associative.
fn assert_bags_approx_eq(
    got: &[(imp::storage::Row, i64)],
    expected: &[(imp::storage::Row, i64)],
    context: &str,
) {
    assert_eq!(got.len(), expected.len(), "{context}: row counts differ");
    for ((gr, gm), (er, em)) in got.iter().zip(expected) {
        assert_eq!(gm, em, "{context}: multiplicities differ for {gr}");
        assert_eq!(gr.arity(), er.arity(), "{context}");
        for (gv, ev) in gr.values().iter().zip(er.values()) {
            match (gv, ev) {
                (imp::storage::Value::Float(a), imp::storage::Value::Float(b)) => {
                    let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
                    assert!(
                        (a - b).abs() <= tol,
                        "{context}: {a} vs {b} beyond tolerance in {gr}"
                    );
                }
                _ => assert_eq!(gv, ev, "{context}: {gr} vs {er}"),
            }
        }
    }
}

fn check_all(imp: &mut Imp, truth: &Database, step: &str) {
    for sql in TPCH_QUERIES {
        let expected = truth.query(sql).unwrap().canonical();
        let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
            panic!("{step}: non-rows response for {sql}")
        };
        assert_bags_approx_eq(&result.canonical(), &expected, &format!("{step}: {sql}"));
    }
}

#[test]
fn tpch_battery_with_refresh_streams() {
    let mut truth = Database::new();
    tpch::load(&mut truth, 0.01, 3).unwrap();
    let mut db = Database::new();
    tpch::load(&mut db, 0.01, 3).unwrap();
    let max_key = db.table("orders").unwrap().row_count() as i64;
    let mut imp = Imp::new(db, ImpConfig::default());

    check_all(&mut imp, &truth, "initial");

    // RF1: inserts.
    for op in tpch::refresh_stream(2, 5, true, max_key, 11) {
        let WorkloadOp::Update { sql, .. } = op else {
            panic!()
        };
        truth.execute_sql(&sql).unwrap();
        imp.execute(&sql).unwrap();
    }
    check_all(&mut imp, &truth, "after RF1");

    // RF2: deletes.
    for op in tpch::refresh_stream(2, 5, false, max_key, 13) {
        let WorkloadOp::Update { sql, .. } = op else {
            panic!()
        };
        truth.execute_sql(&sql).unwrap();
        imp.execute(&sql).unwrap();
    }
    check_all(&mut imp, &truth, "after RF2");

    // Second pass reuses sketches (no behavioural change expected).
    check_all(&mut imp, &truth, "sketch reuse");
}

#[test]
fn repeated_queries_converge_to_sketch_reuse() {
    let mut db = Database::new();
    tpch::load(&mut db, 0.01, 3).unwrap();
    let mut imp = Imp::new(db, ImpConfig::default());
    let sql = TPCH_QUERIES[0];
    imp.execute(sql).unwrap();
    let captured = imp.sketch_count();
    for _ in 0..5 {
        imp.execute(sql).unwrap();
    }
    // No additional captures for repeats of the same query.
    assert_eq!(imp.sketch_count(), captured);
}
