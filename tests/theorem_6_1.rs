//! Property tests of Theorem 6.1 (correctness of the incremental
//! maintenance procedure) and of the PBDS safety property, over random
//! databases, random queries from the supported fragment, random
//! partitions, and random update sequences:
//!
//! 1. **Over-approximation**: after every maintenance run, the maintained
//!    sketch contains the accurate sketch of the updated database
//!    (`P[Q, Φ, D ∪• ΔD] ⊆ P ∪• I(Q, Φ, S, Δ𝒟)`). With unbounded state the
//!    counter-based semantics is exact, so we additionally check equality.
//! 2. **Safety**: for partitions on safe (group-by) attributes, evaluating
//!    the query over the sketch-covered data equals evaluating it over the
//!    full database (`Q(D_P) = Q(D)`).
//! 3. **Tuple correctness**: the backend's result always matches a
//!    reference recomputation.

use imp::core::maintain::SketchMaintainer;
use imp::core::ops::OpConfig;
use imp::engine::Database;
use imp::sketch::{apply_sketch_filter, capture, PartitionSet, RangePartition};
use imp::storage::{row, DataType, Field, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// One randomized update.
#[derive(Debug, Clone)]
enum Update {
    Insert { g: i64, v: i64 },
    DeleteValue { v: i64 },
    DeleteGroup { g: i64 },
}

fn update_strategy(groups: i64, vmax: i64) -> impl Strategy<Value = Update> {
    prop_oneof![
        4 => (0..groups, 0..vmax).prop_map(|(g, v)| Update::Insert { g, v }),
        2 => (0..vmax).prop_map(|v| Update::DeleteValue { v }),
        1 => (0..groups).prop_map(|g| Update::DeleteGroup { g }),
    ]
}

/// Queries from the supported fragment, parameterized by a threshold.
fn query_pool(threshold: i64) -> Vec<String> {
    vec![
        format!("SELECT g, sum(v) AS sv FROM t GROUP BY g HAVING sum(v) > {threshold}"),
        format!("SELECT g, count(v) AS cv FROM t GROUP BY g HAVING count(v) > 3"),
        format!(
            "SELECT g, avg(v) AS av, min(v) AS mn, max(v) AS mx FROM t \
             GROUP BY g HAVING avg(v) < {threshold}"
        ),
        "SELECT g, sum(v) AS sv FROM t GROUP BY g ORDER BY sv DESC LIMIT 3".to_string(),
        format!("SELECT g, v FROM t WHERE v < {threshold}"),
        "SELECT DISTINCT g FROM t".to_string(),
    ]
}

fn build_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load(rows.iter().map(|(g, v)| row![*g, *v]))
        .unwrap();
    db
}

fn apply_update(db: &mut Database, u: &Update) {
    match u {
        Update::Insert { g, v } => {
            db.execute_sql(&format!("INSERT INTO t VALUES ({g}, {v})"))
                .unwrap();
        }
        Update::DeleteValue { v } => {
            db.execute_sql(&format!("DELETE FROM t WHERE v = {v}"))
                .unwrap();
        }
        Update::DeleteGroup { g } => {
            db.execute_sql(&format!("DELETE FROM t WHERE g = {g}"))
                .unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Theorem 6.1 with unbounded state: incremental == accurate capture,
    /// and rewritten queries stay safe, across a random update sequence.
    #[test]
    fn incremental_maintenance_is_exact_and_safe(
        initial in prop::collection::vec((0i64..12, 0i64..60), 10..120),
        updates in prop::collection::vec(update_strategy(12, 60), 1..25),
        query_idx in 0usize..6,
        threshold in 50i64..400,
        cuts in prop::collection::btree_set(1i64..12, 0..5),
    ) {
        let mut db = build_db(&initial);
        let sql = &query_pool(threshold)[query_idx];
        let plan = db.plan_sql(sql).unwrap();
        // Partition on the group-by attribute `g` with random cuts — safe
        // for every query in the pool.
        let partition = RangePartition::new(
            "t", "g", 0,
            cuts.into_iter().map(Value::Int).collect(),
        ).unwrap();
        let pset = Arc::new(PartitionSet::new(vec![partition]).unwrap());
        let (mut m, first) = SketchMaintainer::capture(
            &plan, &db, Arc::clone(&pset), OpConfig::default(), true,
        ).unwrap();

        // Capture answers the query correctly.
        let direct = db.execute_plan(&plan).unwrap();
        prop_assert_eq!(
            imp::engine::database::canonical_bag(&first),
            direct.canonical()
        );

        for (step, u) in updates.iter().enumerate() {
            apply_update(&mut db, u);
            m.maintain(&db).unwrap();

            // (1) Exactness (⇒ over-approximation) of the sketch.
            let accurate = capture(&plan, &db, &pset).unwrap().sketch;
            prop_assert!(m.sketch().covers(&accurate), "not sound at step {}", step);
            prop_assert_eq!(m.sketch(), &accurate);

            // (2) Safety: query over sketch data == query over full data.
            let rewritten = apply_sketch_filter(&plan, m.sketch()).unwrap();
            prop_assert_eq!(
                db.execute_plan(&rewritten).unwrap().canonical(),
                db.execute_plan(&plan).unwrap().canonical(),
                "unsafe at step {}", step
            );
        }
    }

    /// Bounded MIN/MAX and top-k buffers may force recaptures but must
    /// never yield a sketch that misses provenance (Thm. 6.1 with the
    /// accuracy-for-performance trade of §7.2).
    #[test]
    fn bounded_buffers_remain_sound(
        initial in prop::collection::vec((0i64..8, 0i64..40), 20..100),
        updates in prop::collection::vec(update_strategy(8, 40), 1..20),
        buffer in 1usize..5,
        topk in prop::bool::ANY,
    ) {
        let mut db = build_db(&initial);
        let sql = if topk {
            "SELECT g, min(v) AS mv FROM t GROUP BY g ORDER BY mv LIMIT 2"
        } else {
            "SELECT g, min(v) AS mv, max(v) AS mx FROM t GROUP BY g HAVING min(v) < 30"
        };
        let plan = db.plan_sql(sql).unwrap();
        let partition = RangePartition::new(
            "t", "g", 0, vec![Value::Int(3), Value::Int(6)],
        ).unwrap();
        let pset = Arc::new(PartitionSet::new(vec![partition]).unwrap());
        let cfg = OpConfig {
            minmax_buffer: Some(buffer),
            topk_buffer: Some(buffer * 3),
            ..OpConfig::default()
        };
        let (mut m, _) = SketchMaintainer::capture(
            &plan, &db, Arc::clone(&pset), cfg, true,
        ).unwrap();
        for (step, u) in updates.iter().enumerate() {
            apply_update(&mut db, u);
            m.maintain(&db).unwrap();
            let accurate = capture(&plan, &db, &pset).unwrap().sketch;
            prop_assert!(m.sketch().covers(&accurate), "unsound at step {}", step);
            let rewritten = apply_sketch_filter(&plan, m.sketch()).unwrap();
            prop_assert_eq!(
                db.execute_plan(&rewritten).unwrap().canonical(),
                db.execute_plan(&plan).unwrap().canonical(),
                "unsafe at step {}", step
            );
        }
    }

    /// Join queries: incremental maintenance with sketches on both tables
    /// (the Fig. 5 configuration) matches batch capture under updates to
    /// either side.
    #[test]
    fn join_maintenance_matches_capture(
        r_rows in prop::collection::vec((0i64..10, 0i64..10), 5..60),
        s_rows in prop::collection::vec((0i64..10, 0i64..10), 5..60),
        updates in prop::collection::vec(
            (prop::bool::ANY, prop::bool::ANY, 0i64..10, 0i64..10), 1..15),
    ) {
        let mut db = Database::new();
        db.create_table("r", Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])).unwrap();
        db.create_table("s", Schema::new(vec![
            Field::new("c", DataType::Int),
            Field::new("d", DataType::Int),
        ])).unwrap();
        db.table_mut("r").unwrap()
            .bulk_load(r_rows.iter().map(|(a, b)| row![*a, *b])).unwrap();
        db.table_mut("s").unwrap()
            .bulk_load(s_rows.iter().map(|(c, d)| row![*c, *d])).unwrap();

        let sql = "SELECT a, sum(c) AS sc FROM r JOIN s ON (b = d) \
                   GROUP BY a HAVING sum(c) > 20";
        let plan = db.plan_sql(sql).unwrap();
        let pset = Arc::new(PartitionSet::new(vec![
            RangePartition::new("r", "a", 0, vec![Value::Int(5)]).unwrap(),
            RangePartition::new("s", "c", 0, vec![Value::Int(5)]).unwrap(),
        ]).unwrap());
        let (mut m, _) = SketchMaintainer::capture(
            &plan, &db, Arc::clone(&pset), OpConfig::default(), true,
        ).unwrap();

        for (step, (to_r, is_insert, x, y)) in updates.iter().enumerate() {
            let table = if *to_r { "r" } else { "s" };
            if *is_insert {
                db.execute_sql(&format!("INSERT INTO {table} VALUES ({x}, {y})")).unwrap();
            } else {
                let col = if *to_r { "b" } else { "d" };
                db.execute_sql(&format!("DELETE FROM {table} WHERE {col} = {y}")).unwrap();
            }
            m.maintain(&db).unwrap();
            let accurate = capture(&plan, &db, &pset).unwrap().sketch;
            prop_assert_eq!(m.sketch(), &accurate, "diverged at step {}", step);
        }
    }
}
