//! Cross-crate integration tests: the full middleware over SQL workloads
//! on every dataset generator.

use imp::data::queries;
use imp::data::synthetic::{load, SyntheticConfig};
use imp::data::workload::{mixed_workload, WorkloadOp};
use imp::engine::Database;
use imp::{Imp, ImpConfig, ImpResponse, MaintenanceStrategy, QueryMode};

fn synthetic_db(rows: usize, groups: i64) -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            rows,
            groups,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

/// Execute a workload through IMP and the raw engine in lockstep; every
/// query must return identical bags.
fn assert_imp_matches_baseline(config: ImpConfig, ops: &[WorkloadOp]) {
    let mut baseline = synthetic_db(5_000, 200);
    let mut imp = Imp::new(synthetic_db(5_000, 200), config);
    for (i, op) in ops.iter().enumerate() {
        match op {
            WorkloadOp::Query(sql) => {
                let expected = baseline.query(sql).unwrap().canonical();
                let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
                    panic!("query returned non-rows")
                };
                assert_eq!(result.canonical(), expected, "op {i}: {sql}");
            }
            WorkloadOp::Update { sql, .. } => {
                baseline.execute_sql(sql).unwrap();
                imp.execute(sql).unwrap();
            }
        }
    }
}

#[test]
fn mixed_workload_lazy_matches_baseline() {
    let wl = mixed_workload(1, 1, 60, 20, 200, 5_000, 3);
    assert_imp_matches_baseline(ImpConfig::default(), &wl.ops);
}

#[test]
fn mixed_workload_eager_matches_baseline() {
    let wl = mixed_workload(2, 1, 60, 10, 200, 5_000, 4);
    assert_imp_matches_baseline(
        ImpConfig {
            strategy: MaintenanceStrategy::Eager { batch_size: 15 },
            ..ImpConfig::default()
        },
        &wl.ops,
    );
}

#[test]
fn mixed_workload_without_optimizations_matches_baseline() {
    let wl = mixed_workload(1, 2, 45, 30, 200, 5_000, 5);
    assert_imp_matches_baseline(
        ImpConfig {
            bloom: false,
            selection_pushdown: false,
            ..ImpConfig::default()
        },
        &wl.ops,
    );
}

#[test]
fn tpch_queries_through_middleware() {
    let mut db = Database::new();
    imp::data::tpch::load(&mut db, 0.01, 5).unwrap();
    let expected_single = db.query(queries::TPCH_SINGLE).unwrap().canonical();
    let expected_topk = db.query(queries::TPCH_TOPK).unwrap().canonical();

    let mut imp = Imp::new(db, ImpConfig::default());
    for (sql, expected) in [
        (queries::TPCH_SINGLE, &expected_single),
        (queries::TPCH_TOPK, &expected_topk),
    ] {
        let ImpResponse::Rows { result, mode } = imp.execute(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(mode, QueryMode::Captured), "{sql}");
        assert_eq!(&result.canonical(), expected, "{sql}");
        // Second run uses the sketch and still agrees.
        let ImpResponse::Rows { result, mode } = imp.execute(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(mode, QueryMode::UsedFresh), "{sql}");
        assert_eq!(&result.canonical(), expected, "{sql}");
    }

    // Updates invalidate; maintenance restores correctness.
    imp.execute("INSERT INTO lineitem VALUES (1, 1, 1, 9, 200, 9999.0, 0.0, 0.0, 'R', 19950101)")
        .unwrap();
    let expected = {
        // Recompute the truth on a replica.
        let mut db2 = Database::new();
        imp::data::tpch::load(&mut db2, 0.01, 5).unwrap();
        db2.execute_sql(
            "INSERT INTO lineitem VALUES (1, 1, 1, 9, 200, 9999.0, 0.0, 0.0, 'R', 19950101)",
        )
        .unwrap();
        db2.query(queries::TPCH_SINGLE).unwrap().canonical()
    };
    let ImpResponse::Rows { result, mode } = imp.execute(queries::TPCH_SINGLE).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Maintained(_)));
    assert_eq!(result.canonical(), expected);
}

#[test]
fn crimes_queries_through_middleware() {
    let mut db = Database::new();
    imp::data::crimes::load(&mut db, 30_000, 9).unwrap();
    let cq1_expected = db.query(queries::CRIMES_CQ1).unwrap().canonical();
    let cq2_expected = db.query(queries::CRIMES_CQ2).unwrap().canonical();

    let mut imp = Imp::new(db, ImpConfig::default());
    let ImpResponse::Rows { result, .. } = imp.execute(queries::CRIMES_CQ1).unwrap() else {
        panic!()
    };
    assert_eq!(result.canonical(), cq1_expected);
    let ImpResponse::Rows { result, .. } = imp.execute(queries::CRIMES_CQ2).unwrap() else {
        panic!()
    };
    assert_eq!(result.canonical(), cq2_expected);

    // Insert a burst and re-check both queries.
    let burst: Vec<String> = (0..500)
        .map(|i| format!("({}, 2024, 7, 0, 1, 1, 'THEFT', false)", 900_000 + i))
        .collect();
    let insert = format!("INSERT INTO crimes VALUES {}", burst.join(", "));
    imp.execute(&insert).unwrap();

    let mut truth = Database::new();
    imp::data::crimes::load(&mut truth, 30_000, 9).unwrap();
    truth.execute_sql(&insert).unwrap();
    let ImpResponse::Rows { result, mode } = imp.execute(queries::CRIMES_CQ1).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Maintained(_)));
    assert_eq!(
        result.canonical(),
        truth.query(queries::CRIMES_CQ1).unwrap().canonical()
    );
}

#[test]
fn appendix_a_queries_all_execute() {
    // Every Appendix A query shape parses, resolves, and runs.
    let mut db = synthetic_db(2_000, 100);
    imp::data::synthetic::load_join_helper(&mut db, "tjoinhelp", 100, 100, 2, 5).unwrap();
    let mut sqls = vec![
        queries::q_endtoend(100, 200),
        queries::q_groups("edb1", 160),
        queries::q_join("edb1", "tjoinhelp", 1_000_000, 1_000),
        queries::q_joinsel("edb1", "tjoinhelp"),
        queries::q_sketch("edb1", "tjoinhelp"),
        queries::q_selpd("edb1", 500),
        queries::q_topk("edb1", 10),
    ];
    for n in 1..=10 {
        sqls.push(queries::q_having("edb1", n));
    }
    for sql in sqls {
        let res = db.query(&sql);
        assert!(res.is_ok(), "{sql}: {:?}", res.err());
    }
}

#[test]
fn deletes_and_updates_flow_through_middleware() {
    let mut imp = Imp::new(synthetic_db(3_000, 100), ImpConfig::default());
    let q = queries::q_groups("edb1", 160);
    imp.execute(&q).unwrap();
    imp.execute("DELETE FROM edb1 WHERE a < 10").unwrap();
    imp.execute("UPDATE edb1 SET b = b + 5 WHERE a = 50")
        .unwrap();

    let mut truth = synthetic_db(3_000, 100);
    truth.execute_sql("DELETE FROM edb1 WHERE a < 10").unwrap();
    truth
        .execute_sql("UPDATE edb1 SET b = b + 5 WHERE a = 50")
        .unwrap();
    let ImpResponse::Rows { result, .. } = imp.execute(&q).unwrap() else {
        panic!()
    };
    assert_eq!(result.canonical(), truth.query(&q).unwrap().canonical());
}

#[test]
fn background_maintainer_keeps_sketches_fresh() {
    use imp::core::strategy::BackgroundMaintainer;
    use parking_lot::Mutex;
    use std::sync::Arc;

    let imp = Arc::new(Mutex::new(Imp::new(
        synthetic_db(2_000, 100),
        ImpConfig::default(),
    )));
    let q = queries::q_groups("edb1", 160);
    imp.lock().execute(&q).unwrap();
    let bg = BackgroundMaintainer::spawn(Arc::clone(&imp), std::time::Duration::from_millis(20));
    imp.lock()
        .execute("INSERT INTO edb1 VALUES (99999, 50, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140)")
        .unwrap();
    // Give the worker a few ticks.
    std::thread::sleep(std::time::Duration::from_millis(200));
    bg.stop();
    // The sketch is fresh: the next query needs no maintenance.
    let ImpResponse::Rows { mode, .. } = imp.lock().execute(&q).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::UsedFresh), "{mode:?}");
}
