//! # imp
//!
//! Facade crate for **IMP — In-memory Incremental Maintenance of
//! Provenance Sketches** (EDBT 2026 reproduction). Re-exports the public
//! API of the workspace crates:
//!
//! * [`storage`] — columnar storage, bitvectors, snapshot-versioned deltas.
//! * [`sql`] — SQL frontend, logical plans, query templates.
//! * [`engine`] — the in-memory backend database.
//! * [`sketch`] — provenance-based data skipping (partitions, sketches,
//!   capture, use-rewrite, safety).
//! * [`core`] — the incremental maintenance engine and the [`Imp`]
//!   middleware.
//! * [`data`] — dataset and workload generators for the evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use imp::{Imp, ImpConfig, ImpResponse};
//! use imp::engine::Database;
//! use imp::storage::{row, DataType, Field, Schema};
//!
//! // A backend database with the paper's running-example table.
//! let mut db = Database::new();
//! db.create_table("sales", Schema::new(vec![
//!     Field::new("sid", DataType::Int),
//!     Field::new("brand", DataType::Str),
//!     Field::new("price", DataType::Int),
//!     Field::new("numsold", DataType::Int),
//! ])).unwrap();
//! db.table_mut("sales").unwrap().bulk_load([
//!     row![1, "Lenovo", 349, 1], row![2, "Lenovo", 449, 2],
//!     row![3, "Apple", 1199, 1], row![4, "Apple", 3875, 1],
//!     row![5, "Dell", 1345, 1], row![6, "HP", 999, 4],
//!     row![7, "HP", 899, 1],
//! ]).unwrap();
//!
//! // IMP sits between the user and the database.
//! let mut imp = Imp::new(db, ImpConfig { fragments: 4, ..Default::default() });
//! let q = "SELECT brand, SUM(price * numsold) AS rev FROM sales \
//!          GROUP BY brand HAVING SUM(price * numsold) > 5000";
//! let ImpResponse::Rows { result, .. } = imp.execute(q).unwrap() else { panic!() };
//! assert_eq!(result.canonical(), vec![(row!["Apple", 5074], 1)]);
//!
//! // Updates keep sketches maintainable incrementally.
//! imp.execute("INSERT INTO sales VALUES (8, 'HP', 1299, 1)").unwrap();
//! let ImpResponse::Rows { result, .. } = imp.execute(q).unwrap() else { panic!() };
//! assert_eq!(result.rows.len(), 2); // Apple and (now) HP
//! ```

pub use imp_core as core;
pub use imp_data as data;
pub use imp_engine as engine;
pub use imp_sketch as sketch;
pub use imp_sql as sql;
pub use imp_storage as storage;

pub use imp_core::{
    Imp, ImpConfig, ImpResponse, MaintReport, MaintenanceStrategy, QueryMode, SketchMaintainer,
};
pub use imp_engine::{Database, QueryResult};
pub use imp_sketch::{PartitionSet, RangePartition, SketchSet};
pub use imp_sql::QueryTemplate;
