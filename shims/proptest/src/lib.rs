//! Offline shim for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small, deterministic property-testing harness exposing the
//! subset of the proptest API its suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * range / tuple / `&str`-regex / [`strategy::Just`] strategies,
//!   [`arbitrary::any`], weighted [`prop_oneof!`];
//! * [`collection`] (`vec`, `btree_set`) and [`sample`]
//!   (`Index`, `select`), [`mod@bool`] (`ANY`);
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   (deterministic) seed; re-running reproduces it exactly.
//! * **Deterministic by default.** Each test's RNG is seeded from the
//!   test's module path and case index, so failures reproduce without a
//!   persistence file. Set `PROPTEST_SEED` to perturb all streams.
//! * **Case count** comes from `ProptestConfig { cases, .. }` and can be
//!   overridden globally with the `PROPTEST_CASES` environment variable
//!   (same contract as the real crate).
//! * The `&str` strategy accepts only `[class]{m,n}` regex patterns
//!   (character classes with ranges and literals), which is what the
//!   suites use.

pub mod test_runner {
    //! Harness configuration, RNG, and failure type.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs. Overridden by the
        /// `PROPTEST_CASES` environment variable when set.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fail the current case with `reason`.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: reason.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xoshiro256++ RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `name`.
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let extra = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            let mut sm = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ extra;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Resolve the effective case count for `cfg`.
        pub fn resolve_cases(cfg: &ProptestConfig) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(cfg.cases)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: at each of `depth` levels, either stay at
        /// the current distribution or wrap it once through `f`. The
        /// `_desired_size` / `_expected_branch_size` tuning knobs of the
        /// real crate are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                let deeper = f(cur.clone()).boxed();
                cur = Union::new(vec![(1, cur), (2, deeper)]).boxed();
            }
            cur
        }

        /// Type-erase into a cloneable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Cloneable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut x = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if x < w {
                    return s.new_value(rng);
                }
                x -= w;
            }
            unreachable!()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&str` as a regex-shaped string strategy. Supports exactly
    /// `[class]{m,n}` — a character class of literals and `a-z` ranges
    /// with a bounded repetition count.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!("unsupported regex strategy {self:?}: shim accepts only [class]{{m,n}}")
            });
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                if lo > hi {
                    return None;
                }
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let lo = reps.0.parse().ok()?;
        let hi = reps.1.parse().ok()?;
        if lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    //! [`any`] and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `elem`, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `elem`; the set may come out smaller than
    /// the drawn target when the element domain is too collision-prone
    /// (bounded retries, like the real crate).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling helpers: [`Index`] and [`select`].

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Project onto `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }

    /// Strategy choosing uniformly among `values`.
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// Uniform choice from a non-empty `Vec`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over empty vec");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = ::core::primitive::bool;
        fn new_value(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, ...).
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Weighted or unweighted choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = $crate::test_runner::TestRng::resolve_cases(&__cfg);
            for __case in 0..u64::from(__cases) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}\n\
                         (deterministic: re-run reproduces; set PROPTEST_CASES / PROPTEST_SEED to vary)",
                        stringify!($name),
                        __case,
                        __cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_weights_hit_all_arms() {
        let s = prop_oneof![
            2 => 0i64..10,
            1 => 100i64..110,
        ];
        let mut rng = TestRng::deterministic("union", 0);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            if v < 50 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > high, "weighted arm should dominate: {low} vs {high}");
        assert!(high > 0, "light arm must still fire");
    }

    #[test]
    fn regex_class_strategy_respects_alphabet_and_length() {
        let mut rng = TestRng::deterministic("regex", 3);
        for _ in 0..100 {
            let s = "[a-c9 ]{2,5}".new_value(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc9 ".contains(c)));
        }
        let wide = "[ -~]{0,10}".new_value(&mut rng);
        assert!(wide.chars().all(|c| (' '..='~').contains(&c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn harness_runs_and_asserts(x in 0i64..100, v in prop::collection::vec(0u32..10, 0..5)) {
            prop_assert!(x >= 0);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
        }
    }
}
