use proptest::prelude::*;
proptest! {
    #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]
    #[test]
    #[should_panic]
    fn deliberately_false_property(x in 0i64..100) {
        prop_assert!(x < 50, "x was {}", x);
    }
}
