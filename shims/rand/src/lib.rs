//! Offline shim for the `rand` crate (0.8-style API).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of `rand` it uses: [`rngs::StdRng`] (an
//! xoshiro256++ generator — *not* the real StdRng's ChaCha12, but fully
//! deterministic under [`SeedableRng::seed_from_u64`]), the [`Rng`]
//! extension trait with `gen` / `gen_range` / `gen_bool`, and uniform
//! range sampling for the primitive types the generators draw.
//!
//! Determinism is the only contract the workspace relies on: every
//! dataset generator and test seeds explicitly, and identical seeds must
//! yield identical streams across runs and platforms.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from the generator's native stream
/// (the `Standard` distribution of the real crate).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1u32..=7);
            assert!((1..=7).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
