//! Offline shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of `bytes` it actually uses: [`BytesMut`] as a
//! growable write buffer, [`Bytes`] as a cheaply cloneable read cursor,
//! and the [`Buf`] / [`BufMut`] traits with little-endian accessors.
//! Semantics follow the real crate for this subset; anything outside it
//! is intentionally absent.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read-side trait: a cursor over a contiguous byte region.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy the next `len` bytes out into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes out of bounds");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side trait: append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

/// Growable, contiguous write buffer. Freeze into [`Bytes`] to read back.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Convert into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable shared byte region with a read cursor; clones and slices are
/// O(1) views into the same allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty region.
    pub fn new() -> Bytes {
        Bytes::copy_from_slice(&[])
    }

    /// View over a static slice (copied; lifetime erased).
    pub fn from_static(src: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }

    /// Owned copy of `src`.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(src),
            start: 0,
            end: src.len(),
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view; `range` is relative to the unread region.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes out of bounds");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(2.5);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(b.copy_to_bytes(3).as_ref(), b"abc");
        assert!(b.is_empty());
    }

    #[test]
    fn slice_is_view_relative_to_cursor() {
        let full = Bytes::copy_from_slice(b"hello world");
        let hello = full.slice(..5);
        assert_eq!(hello.as_ref(), b"hello");
        let world = full.slice(6..);
        assert_eq!(world.as_ref(), b"world");
    }
}
