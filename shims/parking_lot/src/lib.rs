//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! [`Mutex`] and [`RwLock`] are provided. As in the real crate,
//! `lock()` / `read()` / `write()` return the guard directly (poisoning
//! is absorbed: a panic while holding the lock does not poison it for
//! later users). Guard types are the `std` ones; fairness and the
//! `parking_lot` upgrade/downgrade APIs are not reproduced.

use std::sync::{Mutex as StdMutex, PoisonError, RwLock as StdRwLock};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with non-poisoning `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(*l.read(), 2000);
    }

    #[test]
    fn lock_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
