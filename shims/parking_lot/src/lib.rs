//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided. As in the real crate, `lock()` returns the
//! guard directly (poisoning is absorbed: a panic while holding the lock
//! does not poison it for later users).

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// Mutual exclusion with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
