//! Offline shim for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmarking harness with the subset of
//! the criterion API its benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (including the
//! `name = ...; config = ...; targets = ...` form).
//!
//! No outlier rejection or HTML reports — each benchmark runs
//! `sample_size` samples bounded by `measurement_time` and prints mean /
//! median / stddev / min time per iteration (the median and stddev make
//! run-to-run comparisons stable against scheduler noise without the
//! real crate's full bootstrap statistics). Numbers are comparable
//! run-to-run on the same machine, which is all the figure harnesses
//! need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, for throughput reporting — the subset
/// of the real crate's `Throughput` the harnesses use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (rows, deltas, …) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark driver holding measurement settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark; sampling stops early when spent.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim's single warmup
    /// iteration is not time-bounded.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted for CLI compatibility with the real crate; no-op.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine to measure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`, running one warmup plus up to `sample_size`
    /// timed samples within the measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples: routine never ran)");
            return;
        }
        let s = sample_stats(&self.samples);
        println!(
            "{id:<40} mean {:>12?}  median {:>12?}  stddev {:>12?}  min {:>12?}  ({} samples)",
            s.mean, s.median, s.stddev, s.min, s.count
        );
    }
}

/// The raw statistics of one measured sample set, exposed so downstream
/// harnesses (the `BENCH_*.json` trajectory writer) can record the same
/// numbers the console report prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleStats {
    /// Arithmetic mean per iteration.
    pub mean: Duration,
    /// Median sample (upper median for even counts).
    pub median: Duration,
    /// Population standard deviation around the mean.
    pub stddev: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of samples.
    pub count: usize,
}

impl SampleStats {
    /// Units per second at the median sample time, given the work one
    /// iteration performs. `None` when nothing was measured (zero median
    /// would divide by zero) — callers skip the metric rather than
    /// report infinity.
    pub fn throughput_per_sec(&self, throughput: Throughput) -> Option<f64> {
        let secs = self.median.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        let units = match throughput {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        Some(units as f64 / secs)
    }
}

/// Compute [`SampleStats`] over a sample set. All fields are zero for an
/// empty set.
pub fn sample_stats(samples: &[Duration]) -> SampleStats {
    if samples.is_empty() {
        return SampleStats::default();
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    SampleStats {
        mean,
        median: median(samples),
        stddev: stddev(samples, mean),
        min: samples.iter().min().copied().unwrap_or_default(),
        max: samples.iter().max().copied().unwrap_or_default(),
        count: samples.len(),
    }
}

/// Median sample (upper median for even counts — bias is irrelevant at
/// these sample sizes and keeps the computation allocation-light).
/// [`Duration::ZERO`] for an empty set: a zero-sample run (a routine that
/// never completed within the budget) must not panic the harness.
pub fn median(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Population standard deviation around `mean` (zero for one sample).
pub fn stddev(samples: &[Duration], mean: Duration) -> Duration {
    if samples.len() < 2 {
        return Duration::ZERO;
    }
    let mean_s = mean.as_secs_f64();
    let var = samples
        .iter()
        .map(|s| {
            let d = s.as_secs_f64() - mean_s;
            d * d
        })
        .sum::<f64>()
        / samples.len() as f64;
    Duration::from_secs_f64(var.sqrt())
}

/// Group benchmark functions, optionally under a shared [`Criterion`]
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
    }

    #[test]
    fn harness_runs_a_group() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        bench_trivial(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = bench_trivial
    }

    #[test]
    fn grouped_entry_point_runs() {
        benches();
    }

    #[test]
    fn median_and_stddev_are_stable_statistics() {
        let ms = Duration::from_millis;
        // Odd count: the exact middle.
        assert_eq!(median(&[ms(3), ms(1), ms(100)]), ms(3));
        // Even count: the upper median.
        assert_eq!(median(&[ms(1), ms(2), ms(3), ms(4)]), ms(3));
        // A single outlier moves the mean but not the median.
        let samples = [ms(10), ms(10), ms(10), ms(1000)];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        assert_eq!(median(&samples), ms(10));
        assert!(mean > ms(250));
        // Identical samples: zero spread; single sample: defined as zero.
        assert_eq!(stddev(&[ms(5), ms(5), ms(5)], ms(5)), Duration::ZERO);
        assert_eq!(stddev(&[ms(5)], ms(5)), Duration::ZERO);
        // Known case: {4, 8} around mean 6 → population stddev 2.
        let s = stddev(&[ms(4), ms(8)], ms(6));
        assert!((s.as_secs_f64() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn median_of_zero_samples_is_zero_not_a_panic() {
        // A zero-sample run (routine never completed within the budget)
        // must degrade to zeros, not index out of bounds.
        assert_eq!(median(&[]), Duration::ZERO);
        assert_eq!(sample_stats(&[]), SampleStats::default());
    }

    #[test]
    fn sample_stats_match_component_statistics() {
        let ms = Duration::from_millis;
        let samples = [ms(10), ms(30), ms(20)];
        let s = sample_stats(&samples);
        assert_eq!(s.mean, ms(20));
        assert_eq!(s.median, median(&samples));
        assert_eq!(s.stddev, stddev(&samples, ms(20)));
        assert_eq!(s.min, ms(10));
        assert_eq!(s.max, ms(30));
        assert_eq!(s.count, 3);
    }

    #[test]
    fn throughput_uses_the_median_sample() {
        let ms = Duration::from_millis;
        // Median 20 ms: 1000 elements → 50_000 elements/sec, outliers
        // in the mean notwithstanding.
        let s = sample_stats(&[ms(10), ms(20), ms(500)]);
        let rate = s.throughput_per_sec(Throughput::Elements(1000)).unwrap();
        assert!((rate - 50_000.0).abs() < 1e-6, "rate {rate}");
        let bytes = s.throughput_per_sec(Throughput::Bytes(2000)).unwrap();
        assert!((bytes - 100_000.0).abs() < 1e-6, "rate {bytes}");
        // Nothing measured → no rate, not a division by zero.
        assert_eq!(
            SampleStats::default().throughput_per_sec(Throughput::Elements(1)),
            None
        );
    }
}
