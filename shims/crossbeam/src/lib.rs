//! Offline shim for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Provides [`channel::bounded`], [`channel::tick`],
//! [`channel::Receiver::recv_timeout`], and a [`select!`] macro
//! supporting the two-arm `recv(rx) -> pat => body` form this workspace
//! uses. `select!` *blocks*: every receiver carries a waker slot, the
//! macro registers a shared wake channel on both arms and parks on it
//! (`recv_timeout`) whenever both are empty, and each successful send
//! nudges the registered waker — an idle selector wakes on the next
//! message rather than on a poll tick. A short fallback timeout
//! ([`SELECT_FALLBACK`](channel::SELECT_FALLBACK)) bounds the latency of
//! events that do not nudge (sender disconnection). The scheduler's
//! shard workers (`imp_core::sched`) avoid `select!` entirely: each
//! worker drains a single queue with `recv`/`recv_timeout` plus
//! non-blocking `try_recv` batches, which `std::sync::mpsc` backs with
//! real OS blocking.
//!
//! Remaining fidelity deltas vs. the real crate: no `unbounded`
//! channels, no multi-receiver dynamic `Select`, `select!` supports
//! exactly two `recv` arms (and one waker slot per receiver — concurrent
//! selects on the same receiver fall back to the timeout), and a
//! zero-capacity `bounded` degrades to capacity 1 (no rendezvous
//! semantics).
//!
//! Anything needing **more than two arms** cannot use `select!` at all,
//! and anything latency-sensitive should remember that waker-slot
//! contention degrades a parked selector to a 10 ms
//! [`SELECT_FALLBACK`](channel::SELECT_FALLBACK) poll. The periodic
//! observability threads (`imp_core::obs::health::spawn_health_ticker`
//! and the obsd endpoint plumbing) therefore pair one dedicated shutdown
//! channel with `recv_timeout(tick)` directly — real OS blocking with an
//! exact deadline, no waker slot shared, and immune to both limits by
//! construction.

pub mod channel {
    //! Multi-producer multi-consumer channels (mpsc-backed subset).

    pub use crate::select;

    use std::sync::{mpsc, Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Upper bound on how long a parked [`select!`](crate::select) waits
    /// between re-checking its arms when no waker nudge arrives — the
    /// latency bound for non-nudging events (sender disconnection).
    pub const SELECT_FALLBACK: Duration = Duration::from_millis(10);

    /// One registered waker per channel: a parked selector's nudge
    /// channel. `try_send` keeps nudging non-blocking; a full (1-slot)
    /// nudge queue means a wake-up is already pending.
    type WakerSlot = Arc<Mutex<Option<mpsc::SyncSender<()>>>>;

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently has no message.
        Empty,
        /// Channel is closed and drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel is closed and drained.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// Channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
        waker: WakerSlot,
    }

    // Manual impl: senders clone regardless of `T: Clone` (derive would
    // wrongly bound it), matching the real crossbeam API.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                waker: Arc::clone(&self.waker),
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or the channel closes).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))?;
            wake(&self.waker);
            Ok(())
        }

        /// Enqueue without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })?;
            wake(&self.waker);
            Ok(())
        }
    }

    /// Nudge the parked selector registered on `slot`, if any.
    fn wake(slot: &WakerSlot) {
        if let Some(w) = slot.lock().expect("waker slot poisoned").as_ref() {
            let _ = w.try_send(());
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        waker: WakerSlot,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or the channel closes).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block until a message arrives, the channel closes, or `timeout`
        /// elapses. Backed by the OS primitive of
        /// [`mpsc::Receiver::recv_timeout`] — no polling.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Register a parked selector's nudge channel on this receiver
        /// (internal plumbing of [`select!`](crate::select); last
        /// registration wins).
        #[doc(hidden)]
        pub fn register_waker(&self, tx: &mpsc::SyncSender<()>) {
            *self.waker.lock().expect("waker slot poisoned") = Some(tx.clone());
        }

        /// Drop this receiver's registered selector nudge channel.
        #[doc(hidden)]
        pub fn clear_waker(&self) {
            self.waker.lock().expect("waker slot poisoned").take();
        }
    }

    /// Channel with capacity `cap` (`cap = 0` degrades to capacity 1; the
    /// rendezvous semantics of crossbeam's zero-capacity channel are not
    /// reproduced).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        let waker: WakerSlot = Arc::new(Mutex::new(None));
        (
            Sender {
                inner: tx,
                waker: Arc::clone(&waker),
            },
            Receiver { inner: rx, waker },
        )
    }

    /// A receiver that yields an [`Instant`] every `interval`, driven by a
    /// background thread that exits once the receiver is dropped.
    pub fn tick(interval: Duration) -> Receiver<Instant> {
        let (tx, rx) = mpsc::sync_channel(1);
        let waker: WakerSlot = Arc::new(Mutex::new(None));
        let thread_waker = Arc::clone(&waker);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            // try_send: if the consumer is slow, skip a tick rather than
            // queueing a burst; if it is gone, stop ticking.
            match tx.try_send(Instant::now()) {
                Ok(()) => wake(&thread_waker),
                Err(mpsc::TrySendError::Full(_)) => {}
                Err(mpsc::TrySendError::Disconnected(_)) => break,
            }
        });
        Receiver { inner: rx, waker }
    }
}

/// Two-arm `select!` over `recv(rx) -> pat => body` clauses. Registers a
/// shared nudge channel as both receivers' waker and *blocks* on it
/// while both arms are empty — a send on either arm wakes the selector
/// immediately (no poll tick). The registration order (wakers first,
/// then a `try_recv` sweep) makes a lost wake impossible: any message
/// enqueued before registration is seen by the sweep, any message after
/// finds the waker in place. Non-nudging events (sender disconnection)
/// are picked up within [`channel::SELECT_FALLBACK`]. Bodies expand
/// *outside* the internal loop, so `break`/`continue` inside a body bind
/// to the caller's loop exactly as with the real macro.
#[macro_export]
macro_rules! select {
    (
        recv($rx1:expr) -> $p1:pat => $b1:expr,
        recv($rx2:expr) -> $p2:pat => $b2:expr $(,)?
    ) => {{
        let (__sel_wake_tx, __sel_wake_rx) = ::std::sync::mpsc::sync_channel::<()>(1);
        $rx1.register_waker(&__sel_wake_tx);
        $rx2.register_waker(&__sel_wake_tx);
        let mut __sel_r1: ::std::option::Option<
            ::std::result::Result<_, $crate::channel::RecvError>,
        > = ::std::option::Option::None;
        let mut __sel_r2: ::std::option::Option<
            ::std::result::Result<_, $crate::channel::RecvError>,
        > = ::std::option::Option::None;
        loop {
            match $rx1.try_recv() {
                ::std::result::Result::Ok(m) => {
                    __sel_r1 = ::std::option::Option::Some(::std::result::Result::Ok(m));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_r1 = ::std::option::Option::Some(::std::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx2.try_recv() {
                ::std::result::Result::Ok(m) => {
                    __sel_r2 = ::std::option::Option::Some(::std::result::Result::Ok(m));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_r2 = ::std::option::Option::Some(::std::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            let _ = __sel_wake_rx.recv_timeout($crate::channel::SELECT_FALLBACK);
        }
        $rx1.clear_waker();
        $rx2.clear_waker();
        if let ::std::option::Option::Some(__sel_msg) = __sel_r1 {
            let $p1 = __sel_msg;
            $b1
        } else if let ::std::option::Option::Some(__sel_msg) = __sel_r2 {
            let $p2 = __sel_msg;
            $b2
        } else {
            ::std::unreachable!()
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, tick};
    use std::time::Duration;

    #[test]
    fn select_prefers_ready_stop_channel() {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let ticker = tick(Duration::from_millis(5));
        stop_tx.send(()).unwrap();
        let stopped = loop {
            crate::select! {
                recv(stop_rx) -> _ => break true,
                recv(ticker) -> _ => {},
            }
        };
        assert!(stopped);
    }

    #[test]
    fn ticker_ticks() {
        let ticker = tick(Duration::from_millis(1));
        assert!(ticker.recv().is_ok());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_nudges_registered_waker() {
        let (tx, rx) = bounded::<u32>(4);
        let (wake_tx, wake_rx) = std::sync::mpsc::sync_channel::<()>(1);
        rx.register_waker(&wake_tx);
        tx.send(1).unwrap();
        assert!(wake_rx.try_recv().is_ok(), "send must nudge the waker");
        rx.clear_waker();
        tx.send(2).unwrap();
        assert!(
            wake_rx.try_recv().is_err(),
            "a cleared waker must not be nudged"
        );
    }

    #[test]
    fn parked_select_wakes_promptly_on_send() {
        use std::time::Instant;
        // The selector parks on two empty channels; a send from another
        // thread must wake it via the nudge channel, not a poll sweep.
        let (tx, rx) = bounded::<u32>(1);
        let (_keep2, rx2) = bounded::<u32>(1);
        let worker = std::thread::spawn(move || {
            crate::select! {
                recv(rx) -> m => m.unwrap(),
                recv(rx2) -> m => m.unwrap(),
            }
        });
        // Give the worker time to park.
        std::thread::sleep(Duration::from_millis(30));
        let sent = Instant::now();
        tx.send(42).unwrap();
        let got = worker.join().unwrap();
        let latency = sent.elapsed();
        assert_eq!(got, 42);
        // Nudged wake-ups land in microseconds; even a missed nudge is
        // bounded by the fallback. Allow generous CI slack below that.
        assert!(
            latency < Duration::from_millis(250),
            "parked selector took {latency:?} to wake on send"
        );
    }

    #[test]
    fn break_in_body_binds_to_caller_loop() {
        let (tx, rx) = bounded::<u32>(4);
        let (_tx2, rx2) = bounded::<u32>(1);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let mut seen = Vec::new();
        loop {
            crate::select! {
                recv(rx) -> m => {
                    match m {
                        Ok(v) => seen.push(v),
                        Err(_) => break,
                    }
                    if seen.len() == 2 { break }
                },
                recv(rx2) -> _ => {},
            }
        }
        assert_eq!(seen, vec![1, 2]);
    }
}
