//! Dynamically typed scalar values.
//!
//! The IMP data model (paper §4) is bag-relational: relations map tuples of
//! domain values to multiplicities. [`Value`] is the domain `U`. It carries
//! a *total* order and hash — both are required because tuples serve as keys
//! in group-by hash maps and ordered top-k state (balanced search trees in
//! the paper, `BTreeMap` here).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a [`Value`]. Nullability is tracked at the schema level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean truth values.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE-754 floats with a total order (`total_cmp`).
    Float,
    /// UTF-8 strings (reference counted, cheap to clone).
    Str,
}

impl DataType {
    /// Short lowercase name used in error messages and `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar value.
///
/// `Null` sorts before every other value (matching `NULLS FIRST`), and
/// values of different types order by a fixed type rank so that the order is
/// total even for mistyped comparisons. Comparisons between `Int` and
/// `Float` compare numerically, mirroring SQL's implicit numeric coercion.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The dynamic type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregation (`Int` widens to
    /// `f64`). Returns `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view. Returns `None` for anything but `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view. Returns `None` for anything but `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view. Returns `None` for anything but `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different types (total order glue).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            // Int and Float share a rank: they compare numerically.
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Approximate heap footprint in bytes, used by the memory-usage
    /// experiments (paper Fig. 15/17/18).
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                // Hash ints through their float bits when the value is
                // exactly representable so Int(2) and Float(2.0), which
                // compare equal, also hash equal.
                state.write_u64((*i as f64).to_bits());
                state.write_i64(*i);
            }
            Value::Float(f) => {
                state.write_u8(2);
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let f = if *f == 0.0 { 0.0 } else { *f };
                state.write_u64(f.to_bits());
                // Mirror the Int arm when the float is an exact integer.
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    state.write_i64(f as i64);
                } else {
                    state.write_i64(0);
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Int(7),
            Value::str("a"),
            Value::str("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {} violated", w[0], w[1]);
        }
    }

    #[test]
    fn int_float_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        assert!(Value::Float(f64::NAN) > Value::Float(f64::INFINITY));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(5.0).to_string(), "5.0");
        assert_eq!(Value::str("x").to_string(), "x");
    }

    #[test]
    fn heap_size_counts_string_bytes() {
        assert_eq!(Value::Int(1).heap_size(), 0);
        assert_eq!(Value::str("abcd").heap_size(), 4);
    }
}
