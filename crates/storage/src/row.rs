//! Tuples (rows) of the bag-relational data model.

use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An immutable n-ary tuple.
///
/// Rows are reference counted: cloning a `Row` is O(1), which matters
/// because incremental maintenance shuttles the same delta tuples through
/// several operators (paper §5) and stores them in operator state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row(Arc<[Value]>);

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row(values.into())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at position `i` (panics when out of bounds — resolution makes
    /// indices trusted by construction).
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Concatenate two rows (`t ◦ s` in the paper's cross-product rule).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v.into())
    }

    /// Project onto the given positions (`t.A`).
    pub fn project(&self, positions: &[usize]) -> Row {
        Row(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Value>() * self.0.len()
            + self.0.iter().map(Value::heap_size).sum::<usize>()
    }

    /// Identity of the shared allocation backing this row. Two rows with
    /// the same `ptr_id` share storage (pool-aware memory accounting
    /// counts such payloads once).
    pub fn ptr_id(&self) -> usize {
        self.0.as_ptr() as usize
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

/// Convenience macro: `row![1, 2.5, "x"]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = row![1, "x"];
        let b = row![2.5];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c[2], Value::Float(2.5));
        let p = c.project(&[2, 0]);
        assert_eq!(p, row![2.5, 1]);
    }

    #[test]
    fn rows_are_hashable_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<Row, i64> = HashMap::new();
        *m.entry(row![1, "a"]).or_insert(0) += 2;
        *m.entry(row![1, "a"]).or_insert(0) += 3;
        assert_eq!(m[&row![1, "a"]], 5);
    }

    #[test]
    fn clone_is_shallow() {
        let a = row![1, 2, 3];
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }
}
