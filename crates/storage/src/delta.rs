//! Snapshot-versioned delta logs.
//!
//! IMP assumes "the DBMS uses snapshot isolation and we can use snapshot
//! identifiers used by the database internally to identify versions of
//! sketches and of the database" (paper §2). The backend substrate keeps a
//! per-table [`DeltaLog`]: every insert/delete is appended tagged with the
//! snapshot version of the update that produced it. Maintenance then
//! retrieves `Δ(D_v, D_now)` as the log suffix after version `v` — exactly
//! the paper's "fetch only delta tuples of updates that were executed after
//! the sketch was last maintained" (§8.1).

use crate::row::Row;

/// Insert or delete (the `Δ+` / `Δ-` tags of paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// `Δ+t` — tuple inserted.
    Insert,
    /// `Δ-t` — tuple deleted.
    Delete,
}

impl DeltaOp {
    /// Signed multiplicity contribution: +1 for inserts, -1 for deletes.
    pub fn sign(self) -> i64 {
        match self {
            DeltaOp::Insert => 1,
            DeltaOp::Delete => -1,
        }
    }
}

/// One logged change.
#[derive(Debug, Clone)]
pub struct DeltaRecord {
    /// Snapshot version of the update statement that produced this change.
    pub version: u64,
    /// Insert or delete.
    pub op: DeltaOp,
    /// The affected tuple (full row image).
    pub row: Row,
    /// Multiplicity (bag semantics: the same tuple may be touched n times).
    pub mult: u64,
}

/// Append-only per-table change log ordered by version.
#[derive(Debug, Default, Clone)]
pub struct DeltaLog {
    records: Vec<DeltaRecord>,
}

impl DeltaLog {
    /// Empty log.
    pub fn new() -> DeltaLog {
        DeltaLog::default()
    }

    /// Append a change at `version`. Versions must be non-decreasing.
    pub fn append(&mut self, version: u64, op: DeltaOp, row: Row, mult: u64) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.version <= version),
            "delta log versions must be non-decreasing"
        );
        self.records.push(DeltaRecord {
            version,
            op,
            row,
            mult,
        });
    }

    /// All records strictly after `version` (the delta an incremental
    /// maintenance run consumes).
    pub fn since(&self, version: u64) -> &[DeltaRecord] {
        // Binary search for the first record with version > `version`.
        let idx = self.records.partition_point(|r| r.version <= version);
        &self.records[idx..]
    }

    /// Entire log.
    pub fn all(&self) -> &[DeltaRecord] {
        &self.records
    }

    /// Number of logged changes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop records at or before `version` (log truncation after all
    /// sketches have been maintained past it).
    pub fn truncate_through(&mut self, version: u64) {
        let idx = self.records.partition_point(|r| r.version <= version);
        self.records.drain(..idx);
    }

    /// Approximate heap footprint.
    pub fn heap_size(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<DeltaRecord>()
            + self
                .records
                .iter()
                .map(|r| r.row.heap_size())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn since_returns_suffix() {
        let mut log = DeltaLog::new();
        log.append(1, DeltaOp::Insert, row![1], 1);
        log.append(2, DeltaOp::Insert, row![2], 1);
        log.append(2, DeltaOp::Delete, row![1], 1);
        log.append(5, DeltaOp::Insert, row![3], 2);

        assert_eq!(log.since(0).len(), 4);
        assert_eq!(log.since(1).len(), 3);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(5).len(), 0);
        assert_eq!(log.since(99).len(), 0);
    }

    #[test]
    fn truncate() {
        let mut log = DeltaLog::new();
        log.append(1, DeltaOp::Insert, row![1], 1);
        log.append(3, DeltaOp::Insert, row![2], 1);
        log.truncate_through(1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.all()[0].version, 3);
    }

    #[test]
    fn sign() {
        assert_eq!(DeltaOp::Insert.sign(), 1);
        assert_eq!(DeltaOp::Delete.sign(), -1);
    }
}
