//! Fixed-width bitvectors.
//!
//! Provenance sketches are "encoded compactly as bitvectors" with
//! "optimized (aggregate) functions and comparison operators for this
//! encoding" (paper §1): union of partial sketches is bitwise OR, sketch
//! containment is a subset test. [`BitVec`] provides exactly those
//! operations plus the population-count / iteration support the merge
//! operator μ and the use-rewrite need.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length bitvector backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// All-zero bitvector of length `len`.
    pub fn new(len: usize) -> BitVec {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Bitvector with a single bit set.
    pub fn singleton(len: usize, bit: usize) -> BitVec {
        let mut b = BitVec::new(len);
        b.set(bit, true);
        b
    }

    /// Bitvector with all bits in `bits` set.
    pub fn from_bits(len: usize, bits: impl IntoIterator<Item = usize>) -> BitVec {
        let mut b = BitVec::new(len);
        for i in bits {
            b.set(i, true);
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to `value`. Panics when out of bounds.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Read bit `i`. Panics when out of bounds.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union (`self |= other`): the sketch-union aggregate.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection (`self &= other`).
    pub fn intersect_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`).
    pub fn difference_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Union returning a new vector.
    ///
    /// Allocates a fresh bitvector per call — per-row delta paths must use
    /// [`BitVec::union_with`] (when the left operand is owned) or a
    /// memoized [`crate::pool::AnnotPool::union`] instead.
    #[must_use = "allocates a new BitVec; use union_with / AnnotPool::union on hot paths"]
    pub fn union(&self, other: &BitVec) -> BitVec {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// `self ⊆ other` — the sketch containment operator.
    pub fn is_subset(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Heap footprint in bytes — this is exactly the "memory of sketches"
    /// quantity reported in paper Fig. 18.
    pub fn heap_size(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Raw words (for the binary codec).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw parts (for the binary codec).
    pub(crate) fn from_raw(len: usize, words: Vec<u64>) -> BitVec {
        debug_assert_eq!(words.len(), len.div_ceil(WORD_BITS));
        BitVec { len, words }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.iter_ones().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitVec::new(130);
        for i in [0, 1, 63, 64, 65, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 7);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn union_intersect_difference() {
        let a = BitVec::from_bits(10, [1, 3, 5]);
        let b = BitVec::from_bits(10, [3, 4]);
        assert_eq!(a.union(&b), BitVec::from_bits(10, [1, 3, 4, 5]));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, BitVec::from_bits(10, [3]));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, BitVec::from_bits(10, [1, 5]));
    }

    #[test]
    fn subset() {
        let a = BitVec::from_bits(100, [2, 70]);
        let b = BitVec::from_bits(100, [2, 3, 70]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(BitVec::new(100).is_subset(&a));
    }

    #[test]
    fn iter_ones_ascending() {
        let bits = [0usize, 5, 63, 64, 99];
        let b = BitVec::from_bits(100, bits);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), bits.to_vec());
    }

    #[test]
    fn zero_length() {
        let b = BitVec::new(0);
        assert!(b.is_zero());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        BitVec::new(8).get(8);
    }
}
