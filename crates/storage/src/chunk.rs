//! Horizontal data chunks with zone maps.
//!
//! Tables are split into fixed-capacity horizontal chunks stored column-wise
//! (paper §7.1). Each chunk carries a [`ZoneMap`] — per-column min/max —
//! which is the physical-design hook that makes provenance-based data
//! skipping actually skip I/O: the *use rewrite* emits range predicates and
//! the scan prunes chunks whose zone maps cannot satisfy them (cf. zone
//! maps / small materialized aggregates, Moerkotte VLDB'98, cited as \[32\]).

use crate::bitvec::BitVec;
use crate::column::ColumnData;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// Per-column min/max statistics of a chunk.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    /// `Some((min, max))` per column; `None` when the column is all-NULL.
    pub ranges: Vec<Option<(Value, Value)>>,
}

impl ZoneMap {
    /// Can any row of the chunk have `column ∈ [lo, hi]` (inclusive,
    /// `None` = unbounded)? `true` means "cannot prune".
    pub fn may_overlap(&self, column: usize, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        match &self.ranges[column] {
            None => false, // all NULL: no value can match a range predicate
            Some((cmin, cmax)) => {
                if let Some(lo) = lo {
                    if cmax < lo {
                        return false;
                    }
                }
                if let Some(hi) = hi {
                    if cmin > hi {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// An immutable horizontal slice of a table, stored column-wise.
#[derive(Debug, Clone)]
pub struct DataChunk {
    columns: Vec<ColumnData>,
    len: usize,
    zone_map: ZoneMap,
    /// Tombstones: set bits mark logically deleted rows. Lazily allocated.
    deleted: Option<BitVec>,
    live: usize,
}

impl DataChunk {
    /// Build a chunk from fully populated columns.
    fn from_columns(columns: Vec<ColumnData>) -> DataChunk {
        let len = columns.first().map_or(0, ColumnData::len);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        let zone_map = ZoneMap {
            ranges: columns.iter().map(ColumnData::min_max).collect(),
        };
        DataChunk {
            columns,
            len,
            zone_map,
            deleted: None,
            live: len,
        }
    }

    /// Total rows (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the chunk stores no rows at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows not deleted.
    pub fn live_rows(&self) -> usize {
        self.live
    }

    /// The chunk's zone map.
    pub fn zone_map(&self) -> &ZoneMap {
        &self.zone_map
    }

    /// Is row `idx` visible (not tombstoned)?
    pub fn is_live(&self, idx: usize) -> bool {
        match &self.deleted {
            Some(d) => !d.get(idx),
            None => true,
        }
    }

    /// Mark row `idx` deleted. Returns false when it was already dead.
    pub fn delete(&mut self, idx: usize) -> bool {
        let d = self.deleted.get_or_insert_with(|| BitVec::new(self.len));
        if d.get(idx) {
            return false;
        }
        d.set(idx, true);
        self.live -= 1;
        true
    }

    /// Materialize row `idx` (whether live or not).
    pub fn row(&self, idx: usize) -> Row {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Value of one cell.
    pub fn value(&self, column: usize, idx: usize) -> Value {
        self.columns[column].get(idx)
    }

    /// Iterate over live rows as `(index, Row)`.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, Row)> + '_ {
        (0..self.len)
            .filter(|&i| self.is_live(i))
            .map(|i| (i, self.row(i)))
    }

    /// Approximate heap footprint.
    pub fn heap_size(&self) -> usize {
        self.columns
            .iter()
            .map(ColumnData::heap_size)
            .sum::<usize>()
            + self.deleted.as_ref().map_or(0, BitVec::heap_size)
    }
}

/// Accumulates rows and seals them into [`DataChunk`]s.
#[derive(Debug)]
pub struct ChunkBuilder {
    schema: Schema,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl ChunkBuilder {
    /// New builder for a schema.
    pub fn new(schema: &Schema) -> ChunkBuilder {
        ChunkBuilder {
            columns: schema
                .fields()
                .iter()
                .map(|f| ColumnData::new(f.dtype))
                .collect(),
            schema: schema.clone(),
            rows: 0,
        }
    }

    /// Append one row.
    pub fn push(&mut self, row: &Row) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(crate::StorageError::ArityMismatch {
                expected: self.schema.arity(),
                found: row.arity(),
            });
        }
        for (col, val) in self.columns.iter_mut().zip(row.values()) {
            col.push(val)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Rows currently buffered.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Seal the buffered rows into a chunk, resetting the builder.
    pub fn finish(&mut self) -> DataChunk {
        let columns = std::mem::replace(
            &mut self.columns,
            self.schema
                .fields()
                .iter()
                .map(|f| ColumnData::new(f.dtype))
                .collect(),
        );
        self.rows = 0;
        DataChunk::from_columns(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
    }

    fn chunk() -> DataChunk {
        let mut b = ChunkBuilder::new(&schema());
        b.push(&row![1, "x"]).unwrap();
        b.push(&row![5, "y"]).unwrap();
        b.push(&row![3, "z"]).unwrap();
        b.finish()
    }

    #[test]
    fn zone_map_built() {
        let c = chunk();
        assert_eq!(c.zone_map().ranges[0], Some((Value::Int(1), Value::Int(5))));
    }

    #[test]
    fn zone_map_pruning() {
        let c = chunk();
        let zm = c.zone_map();
        assert!(zm.may_overlap(0, Some(&Value::Int(2)), Some(&Value::Int(4))));
        assert!(!zm.may_overlap(0, Some(&Value::Int(6)), None));
        assert!(!zm.may_overlap(0, None, Some(&Value::Int(0))));
        assert!(zm.may_overlap(0, None, None));
    }

    #[test]
    fn tombstones() {
        let mut c = chunk();
        assert_eq!(c.live_rows(), 3);
        assert!(c.delete(1));
        assert!(!c.delete(1));
        assert_eq!(c.live_rows(), 2);
        let rows: Vec<_> = c.iter_live().map(|(_, r)| r).collect();
        assert_eq!(rows, vec![row![1, "x"], row![3, "z"]]);
    }

    #[test]
    fn arity_checked() {
        let mut b = ChunkBuilder::new(&schema());
        assert!(b.push(&row![1]).is_err());
    }
}
