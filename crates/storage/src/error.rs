//! Storage-level errors.

use crate::value::DataType;
use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A value of the wrong type was pushed into a column.
    TypeMismatch {
        /// Type the column stores.
        expected: DataType,
        /// What was provided (None = NULL into non-nullable).
        found: Option<DataType>,
    },
    /// NULL pushed into a non-nullable column.
    NullViolation {
        /// Column name.
        column: String,
    },
    /// A row with the wrong arity was appended to a table.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Row arity.
        found: usize,
    },
    /// Unknown column name.
    UnknownColumn(String),
    /// Unknown table name.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// The binary codec encountered malformed input.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => match found {
                Some(t) => write!(f, "type mismatch: expected {expected}, found {t}"),
                None => write!(f, "type mismatch: expected {expected}, found NULL"),
            },
            StorageError::NullViolation { column } => {
                write!(f, "NULL value in non-nullable column {column}")
            }
            StorageError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} values, found {found}"
                )
            }
            StorageError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table {t}"),
            StorageError::DuplicateTable(t) => write!(f, "table {t} already exists"),
            StorageError::Corrupt(m) => write!(f, "corrupt encoded data: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}
