//! # imp-storage
//!
//! Storage substrate for the IMP system (In-memory Incremental Maintenance
//! of Provenance Sketches, EDBT 2026).
//!
//! This crate provides the building blocks every other crate sits on:
//!
//! * [`Value`] / [`Row`] — the dynamically typed tuple model with a total
//!   order and hash (bag semantics needs tuples as map keys).
//! * [`BitVec`] — compact bitvectors; provenance sketches are encoded as
//!   bitvectors over the ranges of a partition (paper §7.1).
//! * [`ColumnData`] / [`DataChunk`] / [`Table`] — columnar storage split
//!   into horizontal chunks with zone maps (min/max per column per chunk)
//!   so range predicates produced by the *use rewrite* can skip chunks.
//! * [`DeltaLog`] — the snapshot-versioned log of inserted/deleted rows a
//!   backend keeps per table; IMP fetches "the delta between the current
//!   version of the database and the database instance at the original
//!   time of capture" (paper §1) from this log.
//! * [`pool`] — the interned delta pipeline: [`AnnotPool`] hash-conses
//!   annotation bitvectors into small [`AnnotId`]s with memoized unions,
//!   [`RowInterner`] deduplicates tuple payloads, and [`DeltaBatch`] is
//!   the arena-backed batch representation operators exchange.
//! * [`columns`] — [`DeltaColumns`], the columnar view over a
//!   [`DeltaBatch`]: chunked extraction into contiguous tuple / annotation
//!   / multiplicity arrays plus the sort-then-run-length group-by and
//!   branch-free multiplicity-merge kernels the hot operators consume.
//! * [`codec`] — a small length-prefixed binary codec used to persist
//!   sketches and incremental operator state (paper §2: "the system can
//!   persist the state that it maintains for its incremental operators").

pub mod bitvec;
pub mod chunk;
pub mod codec;
pub mod column;
pub mod columns;
pub mod delta;
pub mod error;
pub mod hash;
pub mod pool;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use bitvec::BitVec;
pub use chunk::{ChunkBuilder, DataChunk, ZoneMap};
pub use column::ColumnData;
pub use columns::{key_runs, sort_keys_stable, DeltaColumns, COLUMNAR_CHUNK};
pub use delta::{DeltaLog, DeltaOp, DeltaRecord};
pub use error::StorageError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pool::{AnnotId, AnnotPool, DeltaBatch, DeltaEntry, PoolStats, RowInterner};
pub use row::Row;
pub use schema::{Field, Schema};
pub use table::Table;
pub use value::{DataType, Value};

/// Result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
