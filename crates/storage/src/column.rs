//! Typed column vectors with null bitmaps.

use crate::bitvec::BitVec;
use crate::error::StorageError;
use crate::value::{DataType, Value};
use crate::Result;
use std::sync::Arc;

/// The typed payload of a column.
#[derive(Debug, Clone)]
enum TypedVec {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
}

/// A single column of a [`crate::DataChunk`], stored as a typed vector plus
/// an optional validity bitmap (absent ⇔ the column holds no NULLs).
///
/// The paper (§7.1) stores data "in a columnar representation for
/// horizontal chunks of a table"; this is that representation.
#[derive(Debug, Clone)]
pub struct ColumnData {
    values: TypedVec,
    /// Set bits mark NULL positions. Lazily allocated on first NULL.
    nulls: Option<BitVec>,
    dtype: DataType,
}

impl ColumnData {
    /// Empty column of the given type.
    pub fn new(dtype: DataType) -> ColumnData {
        ColumnData {
            values: match dtype {
                DataType::Bool => TypedVec::Bool(Vec::new()),
                DataType::Int => TypedVec::Int(Vec::new()),
                DataType::Float => TypedVec::Float(Vec::new()),
                DataType::Str => TypedVec::Str(Vec::new()),
            },
            nulls: None,
            dtype,
        }
    }

    /// Column type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of entries (including NULLs).
    pub fn len(&self) -> usize {
        match &self.values {
            TypedVec::Bool(v) => v.len(),
            TypedVec::Int(v) => v.len(),
            TypedVec::Float(v) => v.len(),
            TypedVec::Str(v) => v.len(),
        }
    }

    /// True iff the column holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value. `Int` values coerce into `Float` columns (SQL-style
    /// numeric widening); every other mismatch is an error.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            let len = self.len();
            // Push a placeholder and mark the slot as NULL.
            match &mut self.values {
                TypedVec::Bool(v) => v.push(false),
                TypedVec::Int(v) => v.push(0),
                TypedVec::Float(v) => v.push(0.0),
                TypedVec::Str(v) => v.push(Arc::from("")),
            }
            let nulls = self.nulls.get_or_insert_with(|| BitVec::new(0));
            // Grow the bitmap to cover the new slot.
            let mut grown = BitVec::new(len + 1);
            for i in nulls.iter_ones() {
                grown.set(i, true);
            }
            grown.set(len, true);
            *nulls = grown;
            return Ok(());
        }
        match (&mut self.values, value) {
            (TypedVec::Bool(v), Value::Bool(b)) => v.push(*b),
            (TypedVec::Int(v), Value::Int(i)) => v.push(*i),
            (TypedVec::Float(v), Value::Float(f)) => v.push(*f),
            (TypedVec::Float(v), Value::Int(i)) => v.push(*i as f64),
            (TypedVec::Str(v), Value::Str(s)) => v.push(s.clone()),
            _ => {
                return Err(StorageError::TypeMismatch {
                    expected: self.dtype,
                    found: value.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Read the value at `idx`.
    pub fn get(&self, idx: usize) -> Value {
        if let Some(nulls) = &self.nulls {
            if idx < nulls.len() && nulls.get(idx) {
                return Value::Null;
            }
        }
        match &self.values {
            TypedVec::Bool(v) => Value::Bool(v[idx]),
            TypedVec::Int(v) => Value::Int(v[idx]),
            TypedVec::Float(v) => Value::Float(v[idx]),
            TypedVec::Str(v) => Value::Str(v[idx].clone()),
        }
    }

    /// Min and max non-NULL values (zone-map input); `None` when all NULL
    /// or empty.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in 0..self.len() {
            let v = self.get(i);
            if v.is_null() {
                continue;
            }
            match &mut min {
                None => min = Some(v.clone()),
                Some(m) if v < *m => *m = v.clone(),
                _ => {}
            }
            match &mut max {
                None => max = Some(v),
                Some(m) => {
                    if v > *m {
                        *m = v;
                    }
                }
            }
        }
        min.zip(max)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        let data = match &self.values {
            TypedVec::Bool(v) => v.capacity(),
            TypedVec::Int(v) => v.capacity() * 8,
            TypedVec::Float(v) => v.capacity() * 8,
            TypedVec::Str(v) => {
                v.capacity() * std::mem::size_of::<Arc<str>>()
                    + v.iter().map(|s| s.len()).sum::<usize>()
            }
        };
        data + self.nulls.as_ref().map_or(0, BitVec::heap_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(&Value::Int(1)).unwrap();
        c.push(&Value::Int(-5)).unwrap();
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Int(-5));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn nulls_tracked() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(&Value::str("x")).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::str("y")).unwrap();
        assert_eq!(c.get(0), Value::str("x"));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::str("y"));
    }

    #[test]
    fn int_widens_to_float() {
        let mut c = ColumnData::new(DataType::Float);
        c.push(&Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = ColumnData::new(DataType::Int);
        let err = c.push(&Value::str("nope")).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn min_max_skips_nulls() {
        let mut c = ColumnData::new(DataType::Int);
        for v in [Value::Null, Value::Int(5), Value::Int(-2), Value::Null] {
            c.push(&v).unwrap();
        }
        assert_eq!(c.min_max(), Some((Value::Int(-2), Value::Int(5))));
        let empty = ColumnData::new(DataType::Int);
        assert_eq!(empty.min_max(), None);
    }
}
