//! Relation schemas.

use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// One attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name (unqualified).
    pub name: String,
    /// Optional relation qualifier (set on derived schemas by the planner
    /// so `R.a` and `S.a` stay distinguishable after a join).
    pub qualifier: Option<String>,
    /// Value type.
    pub dtype: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Field {
    /// Non-nullable field without a qualifier.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            qualifier: None,
            dtype,
            nullable: false,
        }
    }

    /// Nullable variant.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            nullable: true,
            ..Field::new(name, dtype)
        }
    }

    /// Same field with a qualifier attached.
    pub fn qualified(mut self, q: impl Into<String>) -> Field {
        self.qualifier = Some(q.into());
        self
    }

    /// Does `name` (and optional qualifier) refer to this field?
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(q) = &self.qualifier {
            write!(f, "{q}.")?;
        }
        write!(f, "{} {}", self.name, self.dtype)?;
        if self.nullable {
            write!(f, " null")?;
        }
        Ok(())
    }
}

/// An ordered list of fields. Cheap to clone (Arc-backed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema {
            fields: fields.into(),
        }
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema::new(vec![])
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Position of the (optionally qualified) column, if unambiguous.
    ///
    /// Returns `Err(true)` for ambiguous names and `Err(false)` for unknown
    /// names; the SQL resolver turns these into user-facing errors.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, bool> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    return Err(true);
                }
                found = Some(i);
            }
        }
        found.ok_or(false)
    }

    /// Position of an unqualified column name (convenience for tests).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.resolve(None, name).ok()
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.to_vec();
        fields.extend_from_slice(&other.fields);
        Schema::new(fields)
    }

    /// Re-qualify every field (e.g. for `FROM (subquery) alias`).
    pub fn with_qualifier(&self, q: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| f.clone().qualified(q.to_string()))
                .collect(),
        )
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fld}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int).qualified("r"),
            Field::new("b", DataType::Float).qualified("r"),
            Field::new("a", DataType::Int).qualified("s"),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = abc();
        assert_eq!(s.resolve(Some("r"), "a"), Ok(0));
        assert_eq!(s.resolve(Some("s"), "a"), Ok(2));
        assert_eq!(s.resolve(Some("r"), "b"), Ok(1));
    }

    #[test]
    fn resolve_unqualified_ambiguous() {
        let s = abc();
        assert_eq!(s.resolve(None, "a"), Err(true)); // ambiguous
        assert_eq!(s.resolve(None, "b"), Ok(1));
        assert_eq!(s.resolve(None, "zzz"), Err(false)); // unknown
    }

    #[test]
    fn case_insensitive() {
        let s = abc();
        assert_eq!(s.resolve(Some("R"), "A"), Ok(0));
    }

    #[test]
    fn join_concatenates() {
        let s = abc().join(&Schema::new(vec![Field::new("c", DataType::Str)]));
        assert_eq!(s.arity(), 4);
        assert_eq!(s.field(3).name, "c");
    }
}
