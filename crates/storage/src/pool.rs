//! Interning pools for the delta pipeline.
//!
//! Sketch annotations are tiny, highly repetitive fragment sets: a base
//! table's delta rows carry singleton annotations (one per fragment the
//! partition assigns), and join outputs combine a handful of such sets
//! over and over. Allocating a fresh [`BitVec`] per delta row — as a flat
//! `Vec<(Row, BitVec, i64)>` representation forces — therefore wastes both
//! memory and the paper's core advantage that deltas are small.
//!
//! This module provides the arena-backed alternative:
//!
//! * [`AnnotPool`] hash-conses annotations: structurally equal bitvectors
//!   get the same small [`AnnotId`], unions of two ids are memoized and
//!   computed at most once (via in-place [`BitVec::union_with`]), and
//!   singleton annotations are served from a per-fragment cache without
//!   ever materialising a probe bitvector twice.
//! * [`RowInterner`] deduplicates structurally equal [`Row`] payloads so
//!   repeated updates of the same tuple share one `Arc` allocation.
//! * [`DeltaBatch`] is the batch representation flowing between
//!   incremental operators: rows are `Arc`-shared, annotations are plain
//!   `u32` ids into a pool, so cloning / shipping a batch (e.g. to another
//!   thread) copies no tuple or bitvector data.
//!
//! ## Invariants
//!
//! * **Id stability**: an [`AnnotId`] stays valid for the lifetime of its
//!   pool (until [`AnnotPool::clear`]); interning never moves or mutates
//!   pooled bitvectors.
//! * **Canonical ids**: two ids issued by the same pool are equal iff
//!   their bitvectors are structurally equal, so id comparison replaces
//!   bitvector comparison on hot paths.
//! * **Memoized unions**: `union(a, b)` consults a symmetric memo table;
//!   each distinct unordered pair is computed at most once.

use crate::bitvec::BitVec;
use crate::hash::{FxHashMap, FxHashSet};
use crate::row::Row;
use std::fmt;
use std::sync::Arc;

/// Handle to an interned annotation bitvector inside an [`AnnotPool`].
///
/// Ids are canonical within their pool: equal ids ⇔ equal bitvectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AnnotId(u32);

impl AnnotId {
    /// Index of the annotation inside its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AnnotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α{}", self.0)
    }
}

/// Cumulative counters of pool activity (for the memory experiments and
/// the bench harness's memoization reporting).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Distinct bitvectors materialised in the pool.
    pub interned: u64,
    /// Intern requests answered by an existing entry (no allocation).
    pub intern_hits: u64,
    /// Unions actually computed (allocating exactly one result each).
    pub unions_computed: u64,
    /// Union requests answered from the memo table or a fast path
    /// (identical / empty / subset operands) — no allocation.
    pub union_memo_hits: u64,
    /// Distinct rows registered by the paired [`RowInterner`]. Zero in
    /// [`AnnotPool::stats`] (the pool holds no rows); populated by
    /// holders of both structures, e.g. a sketch maintainer.
    pub rows_interned: u64,
    /// Row intern requests answered by an existing allocation (same
    /// population rule as [`PoolStats::rows_interned`]).
    pub row_hits: u64,
}

/// Hash-consing arena for annotation bitvectors.
///
/// Id 0 is always the all-zero annotation of the pool's width.
#[derive(Debug)]
pub struct AnnotPool {
    width: usize,
    /// Id → bitvector. `Arc` so ordering-sensitive operator state can hold
    /// an O(1) content handle ([`AnnotPool::share`]).
    vecs: Vec<Arc<BitVec>>,
    /// Content → id (the hash-consing index).
    index: FxHashMap<Arc<BitVec>, AnnotId>,
    /// Fragment → singleton id, so per-row annotation of base-table deltas
    /// never allocates a probe bitvector after the first sighting.
    singletons: FxHashMap<u32, AnnotId>,
    /// Memoized unions, keyed by the unordered pair `(min, max)`.
    union_memo: FxHashMap<(AnnotId, AnnotId), AnnotId>,
    stats: PoolStats,
}

impl AnnotPool {
    /// Fresh pool over `width` fragments; id 0 is the empty annotation.
    pub fn new(width: usize) -> AnnotPool {
        let empty = Arc::new(BitVec::new(width));
        let mut index = FxHashMap::default();
        index.insert(Arc::clone(&empty), AnnotId(0));
        AnnotPool {
            width,
            vecs: vec![empty],
            index,
            singletons: FxHashMap::default(),
            union_memo: FxHashMap::default(),
            stats: PoolStats::default(),
        }
    }

    /// Number of bits of every pooled annotation.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct pooled annotations (≥ 1: the empty one).
    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    /// Always false — a pool holds at least the empty annotation.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Id of the all-zero annotation.
    pub fn empty_id(&self) -> AnnotId {
        AnnotId(0)
    }

    /// Intern a bitvector, returning its canonical id.
    pub fn intern(&mut self, bits: BitVec) -> AnnotId {
        assert_eq!(bits.len(), self.width, "annotation width mismatch");
        if let Some(&id) = self.index.get(&bits) {
            self.stats.intern_hits += 1;
            return id;
        }
        self.insert_new(Arc::new(bits))
    }

    /// Intern an already-shared bitvector without copying its contents.
    pub fn intern_arc(&mut self, bits: Arc<BitVec>) -> AnnotId {
        assert_eq!(bits.len(), self.width, "annotation width mismatch");
        if let Some(&id) = self.index.get(bits.as_ref()) {
            self.stats.intern_hits += 1;
            return id;
        }
        self.insert_new(bits)
    }

    fn insert_new(&mut self, bits: Arc<BitVec>) -> AnnotId {
        let id = AnnotId(u32::try_from(self.vecs.len()).expect("annotation pool overflow"));
        self.index.insert(Arc::clone(&bits), id);
        self.vecs.push(bits);
        self.stats.interned += 1;
        id
    }

    /// Singleton annotation `{bit}`, served from the per-fragment cache.
    pub fn singleton(&mut self, bit: usize) -> AnnotId {
        let key = u32::try_from(bit).expect("fragment id overflow");
        if let Some(&id) = self.singletons.get(&key) {
            self.stats.intern_hits += 1;
            return id;
        }
        let id = self.intern(BitVec::singleton(self.width, bit));
        self.singletons.insert(key, id);
        id
    }

    /// Union of two pooled annotations, memoized: each unordered pair is
    /// computed (in place, then interned) at most once. Fast paths
    /// (identical / empty / subset operands) and memo-table answers count
    /// as [`PoolStats::union_memo_hits`] — each is an allocation the flat
    /// per-row `BitVec::union` representation would have paid.
    pub fn union(&mut self, a: AnnotId, b: AnnotId) -> AnnotId {
        if a == b {
            self.stats.union_memo_hits += 1;
            return a;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if lo == self.empty_id() {
            self.stats.union_memo_hits += 1;
            return hi;
        }
        if let Some(&id) = self.union_memo.get(&(lo, hi)) {
            self.stats.union_memo_hits += 1;
            return id;
        }
        // Subset fast paths avoid allocating when one side absorbs the
        // other (common for join outputs re-joining the same fragment).
        let id = if self.vecs[lo.index()].is_subset(&self.vecs[hi.index()]) {
            self.stats.union_memo_hits += 1;
            hi
        } else if self.vecs[hi.index()].is_subset(&self.vecs[lo.index()]) {
            self.stats.union_memo_hits += 1;
            lo
        } else {
            let mut out = (*self.vecs[lo.index()]).clone();
            out.union_with(&self.vecs[hi.index()]);
            self.stats.unions_computed += 1;
            self.intern(out)
        };
        self.union_memo.insert((lo, hi), id);
        id
    }

    /// The bitvector behind an id.
    pub fn get(&self, id: AnnotId) -> &BitVec {
        &self.vecs[id.index()]
    }

    /// O(1) shared handle to the bitvector behind an id (for operator
    /// state that must order entries by annotation *content*).
    pub fn share(&self, id: AnnotId) -> Arc<BitVec> {
        Arc::clone(&self.vecs[id.index()])
    }

    /// Does the pool own this exact allocation? True only when `handle`
    /// points at a pooled bitvector (not merely an equal one), i.e. the
    /// contents are already covered by [`AnnotPool::heap_size`]. Used by
    /// shared-ownership-aware accounting: operator-state `Arc<BitVec>`
    /// handles whose allocation the pool does *not* own (e.g. after a
    /// between-runs [`AnnotPool::clear`]) must be attributed to the state.
    pub fn owns(&self, handle: &Arc<BitVec>) -> bool {
        self.index
            .get(handle.as_ref())
            .is_some_and(|id| Arc::ptr_eq(&self.vecs[id.index()], handle))
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Heap footprint of the pooled bitvectors and index structures.
    pub fn heap_size(&self) -> usize {
        let vecs: usize = self
            .vecs
            .iter()
            .map(|v| v.heap_size() + std::mem::size_of::<BitVec>())
            .sum();
        vecs + self.vecs.capacity() * std::mem::size_of::<Arc<BitVec>>()
            + self.index.capacity()
                * (std::mem::size_of::<Arc<BitVec>>() + std::mem::size_of::<AnnotId>() + 8)
            + self.union_memo.capacity()
                * (std::mem::size_of::<(AnnotId, AnnotId)>() + std::mem::size_of::<AnnotId>() + 8)
            + self.singletons.capacity()
                * (std::mem::size_of::<u32>() + std::mem::size_of::<AnnotId>() + 8)
    }

    /// Drop every pooled annotation except the empty one, invalidating all
    /// previously issued ids. Statistics survive (they are cumulative).
    pub fn clear(&mut self) {
        let stats = self.stats;
        *self = AnnotPool::new(self.width);
        self.stats = stats;
    }
}

/// Deduplicating store for [`Row`] payloads.
///
/// Rows are already `Arc`-backed (cloning is O(1)); interning makes
/// structurally equal rows *share* one allocation, so a delta stream that
/// repeatedly touches the same tuples holds each payload once. The set is
/// bounded: once `limit` distinct rows accumulate it is flushed, trading a
/// cold restart of sharing for a hard memory cap.
#[derive(Debug)]
pub struct RowInterner {
    set: FxHashSet<Row>,
    limit: usize,
    interned: u64,
    hits: u64,
}

/// Default bound on distinct rows held by a [`RowInterner`].
pub const ROW_INTERNER_LIMIT: usize = 1 << 16;

impl RowInterner {
    /// Interner with the default bound.
    pub fn new() -> RowInterner {
        RowInterner::with_limit(ROW_INTERNER_LIMIT)
    }

    /// Interner that flushes after `limit` distinct rows.
    pub fn with_limit(limit: usize) -> RowInterner {
        RowInterner {
            set: FxHashSet::default(),
            limit: limit.max(1),
            interned: 0,
            hits: 0,
        }
    }

    /// Canonical handle for `row`: an existing allocation when one equal
    /// row was seen before, otherwise `row` itself (now registered).
    pub fn intern(&mut self, row: Row) -> Row {
        if let Some(existing) = self.set.get(&row) {
            self.hits += 1;
            return existing.clone();
        }
        if self.set.len() >= self.limit {
            self.set.clear();
        }
        self.interned += 1;
        self.set.insert(row.clone());
        row
    }

    /// Distinct rows currently held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True iff no rows are held.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Requests answered by an existing allocation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct rows ever registered.
    pub fn interned(&self) -> u64 {
        self.interned
    }

    /// Drop all held rows (counters survive).
    pub fn clear(&mut self) {
        self.set.clear();
    }

    /// Heap footprint of the held row payloads.
    pub fn heap_size(&self) -> usize {
        self.set.iter().map(Row::heap_size).sum::<usize>()
            + self.set.capacity() * (std::mem::size_of::<Row>() + 8)
    }
}

impl Default for RowInterner {
    fn default() -> Self {
        RowInterner::new()
    }
}

/// One annotated delta tuple `Δ±⟨t, P⟩ⁿ` with a pooled annotation and
/// signed multiplicity (`mult > 0` ⇔ `Δ+`, `mult < 0` ⇔ `Δ-`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEntry {
    /// The tuple (`Arc`-shared; clone is O(1)).
    pub row: Row,
    /// Pooled sketch annotation over the global fragment space.
    pub annot: AnnotId,
    /// Signed multiplicity.
    pub mult: i64,
}

/// A batch of annotated delta tuples with pool-interned annotations.
///
/// The batch derefs to its entry vector, so the usual `Vec` operations
/// (`push`, `retain`, iteration, sorting) apply directly. Entries are
/// interpreted against the [`AnnotPool`] they were built with; batches
/// never own bitvector or tuple data themselves, which makes cloning and
/// cross-thread shipping cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    entries: Vec<DeltaEntry>,
}

impl DeltaBatch {
    /// Empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Empty batch with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> DeltaBatch {
        DeltaBatch {
            entries: Vec::with_capacity(n),
        }
    }

    /// Append one annotated tuple.
    pub fn push_entry(&mut self, row: Row, annot: AnnotId, mult: i64) {
        self.entries.push(DeltaEntry { row, annot, mult });
    }

    /// The entries as a slice.
    pub fn entries(&self) -> &[DeltaEntry] {
        &self.entries
    }
}

impl std::ops::Deref for DeltaBatch {
    type Target = Vec<DeltaEntry>;
    fn deref(&self) -> &Vec<DeltaEntry> {
        &self.entries
    }
}

impl std::ops::DerefMut for DeltaBatch {
    fn deref_mut(&mut self) -> &mut Vec<DeltaEntry> {
        &mut self.entries
    }
}

impl From<Vec<DeltaEntry>> for DeltaBatch {
    fn from(entries: Vec<DeltaEntry>) -> DeltaBatch {
        DeltaBatch { entries }
    }
}

impl FromIterator<DeltaEntry> for DeltaBatch {
    fn from_iter<I: IntoIterator<Item = DeltaEntry>>(iter: I) -> DeltaBatch {
        DeltaBatch {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<DeltaEntry> for DeltaBatch {
    fn extend<I: IntoIterator<Item = DeltaEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl IntoIterator for DeltaBatch {
    type Item = DeltaEntry;
    type IntoIter = std::vec::IntoIter<DeltaEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a DeltaBatch {
    type Item = &'a DeltaEntry;
    type IntoIter = std::slice::Iter<'a, DeltaEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn interning_is_canonical() {
        let mut p = AnnotPool::new(16);
        let a = p.intern(BitVec::from_bits(16, [1, 3]));
        let b = p.intern(BitVec::from_bits(16, [1, 3]));
        let c = p.intern(BitVec::from_bits(16, [2]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.stats().interned, 2);
        assert_eq!(p.stats().intern_hits, 1);
        assert_eq!(p.get(a), &BitVec::from_bits(16, [1, 3]));
    }

    #[test]
    fn singleton_cache_hits() {
        let mut p = AnnotPool::new(8);
        let a = p.singleton(3);
        let b = p.singleton(3);
        assert_eq!(a, b);
        assert_eq!(p.stats().interned, 1);
        assert!(p.stats().intern_hits >= 1);
    }

    #[test]
    fn union_is_memoized_and_correct() {
        let mut p = AnnotPool::new(8);
        let a = p.singleton(1);
        let b = p.singleton(2);
        let u1 = p.union(a, b);
        let computed = p.stats().unions_computed;
        let u2 = p.union(b, a); // symmetric: memo hit
        assert_eq!(u1, u2);
        assert_eq!(p.stats().unions_computed, computed);
        assert!(p.stats().union_memo_hits >= 1);
        assert_eq!(p.get(u1), &BitVec::from_bits(8, [1, 2]));
    }

    #[test]
    fn union_fast_paths() {
        let mut p = AnnotPool::new(8);
        let a = p.singleton(1);
        let ab = p.intern(BitVec::from_bits(8, [1, 2]));
        assert_eq!(p.union(a, a), a);
        assert_eq!(p.union(p.empty_id(), a), a);
        // a ⊆ ab: no new allocation.
        let before = p.len();
        assert_eq!(p.union(a, ab), ab);
        assert_eq!(p.len(), before);
    }

    #[test]
    fn clear_invalidates_but_keeps_stats() {
        let mut p = AnnotPool::new(8);
        let a = p.singleton(1);
        let b = p.singleton(2);
        p.union(a, b);
        let stats = p.stats();
        p.clear();
        assert_eq!(p.len(), 1);
        assert_eq!(p.stats(), stats);
    }

    #[test]
    fn row_interner_shares_allocations() {
        let mut ri = RowInterner::new();
        let a = ri.intern(row![1, "x"]);
        let b = ri.intern(row![1, "x"]);
        assert_eq!(a.ptr_id(), b.ptr_id());
        assert_eq!(ri.hits(), 1);
        let c = ri.intern(row![2]);
        assert_ne!(a.ptr_id(), c.ptr_id());
        assert_eq!(ri.len(), 2);
    }

    #[test]
    fn row_interner_respects_limit() {
        let mut ri = RowInterner::with_limit(2);
        ri.intern(row![1]);
        ri.intern(row![2]);
        ri.intern(row![3]); // flushes, then registers
        assert_eq!(ri.len(), 1);
    }

    #[test]
    fn delta_batch_vec_ergonomics() {
        let mut p = AnnotPool::new(4);
        let a = p.singleton(0);
        let mut batch = DeltaBatch::new();
        batch.push_entry(row![1], a, 1);
        batch.push_entry(row![2], a, -1);
        assert_eq!(batch.len(), 2);
        batch.retain(|e| e.mult > 0);
        assert_eq!(batch.len(), 1);
        let cloned = batch.clone();
        assert_eq!(cloned, batch);
    }
}
