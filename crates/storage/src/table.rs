//! Base tables: chunked columnar storage plus the per-table delta log.

use crate::chunk::{ChunkBuilder, DataChunk};
use crate::delta::{DeltaLog, DeltaOp};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// An inclusive value range with optional (unbounded) endpoints, as used
/// for zone-map pruning.
pub type ValueRange = (Option<Value>, Option<Value>);

/// Default number of rows per chunk. Small enough that zone-map pruning is
/// meaningful on laptop-scale tables, large enough to amortize per-chunk
/// overhead.
pub const DEFAULT_CHUNK_CAPACITY: usize = 4096;

/// A stored relation.
///
/// Rows live in sealed [`DataChunk`]s plus one open tail builder. Deletes
/// are tombstones inside chunks. Every mutation is mirrored into the
/// [`DeltaLog`] tagged with the snapshot version supplied by the engine.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    chunks: Vec<DataChunk>,
    tail: ChunkBuilder,
    tail_rows: Vec<Row>,
    tail_deleted: Vec<bool>,
    chunk_capacity: usize,
    delta_log: DeltaLog,
    live_rows: usize,
}

impl Table {
    /// Empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table::with_chunk_capacity(name, schema, DEFAULT_CHUNK_CAPACITY)
    }

    /// Empty table with an explicit chunk size (used by tests and by the
    /// partition-granularity experiments).
    pub fn with_chunk_capacity(
        name: impl Into<String>,
        schema: Schema,
        chunk_capacity: usize,
    ) -> Table {
        assert!(chunk_capacity > 0, "chunk capacity must be positive");
        Table {
            name: name.into(),
            tail: ChunkBuilder::new(&schema),
            tail_rows: Vec::new(),
            tail_deleted: Vec::new(),
            schema,
            chunks: Vec::new(),
            chunk_capacity,
            delta_log: DeltaLog::new(),
            live_rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of visible (non-deleted) rows.
    pub fn row_count(&self) -> usize {
        self.live_rows
    }

    /// Sealed chunks (excludes the open tail).
    pub fn chunks(&self) -> &[DataChunk] {
        &self.chunks
    }

    /// The change log.
    pub fn delta_log(&self) -> &DeltaLog {
        &self.delta_log
    }

    /// Mutable access to the change log (engine-internal truncation).
    pub fn delta_log_mut(&mut self) -> &mut DeltaLog {
        &mut self.delta_log
    }

    /// Insert one row at snapshot `version`.
    pub fn insert(&mut self, row: Row, version: u64) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(crate::StorageError::ArityMismatch {
                expected: self.schema.arity(),
                found: row.arity(),
            });
        }
        self.tail.push(&row)?;
        self.tail_rows.push(row.clone());
        self.tail_deleted.push(false);
        self.live_rows += 1;
        self.delta_log.append(version, DeltaOp::Insert, row, 1);
        if self.tail.len() >= self.chunk_capacity {
            self.seal_tail();
        }
        Ok(())
    }

    /// Bulk load rows without logging deltas (initial load; the sketch
    /// lifecycle starts *after* the load, so the log stays empty).
    pub fn bulk_load(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for row in rows {
            if row.arity() != self.schema.arity() {
                return Err(crate::StorageError::ArityMismatch {
                    expected: self.schema.arity(),
                    found: row.arity(),
                });
            }
            self.tail.push(&row)?;
            self.tail_rows.push(row);
            self.tail_deleted.push(false);
            self.live_rows += 1;
            if self.tail.len() >= self.chunk_capacity {
                self.seal_tail();
            }
        }
        Ok(())
    }

    fn seal_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let mut chunk = self.tail.finish();
        for (i, deleted) in self.tail_deleted.iter().enumerate() {
            if *deleted {
                chunk.delete(i);
            }
        }
        self.chunks.push(chunk);
        self.tail_rows.clear();
        self.tail_deleted.clear();
    }

    /// Force-seal the open tail (done before scans that want pure
    /// chunk-at-a-time processing, e.g. after a bulk load).
    pub fn seal(&mut self) {
        self.seal_tail();
    }

    /// Delete all live rows matching `pred`, logging them at `version`.
    /// Returns the deleted rows.
    pub fn delete_where(&mut self, version: u64, mut pred: impl FnMut(&Row) -> bool) -> Vec<Row> {
        let mut deleted = Vec::new();
        for chunk in &mut self.chunks {
            // Collect first to avoid borrowing issues with delete().
            let victims: Vec<usize> = chunk
                .iter_live()
                .filter(|(_, r)| pred(r))
                .map(|(i, _)| i)
                .collect();
            for idx in victims {
                let row = chunk.row(idx);
                chunk.delete(idx);
                deleted.push(row);
            }
        }
        for i in 0..self.tail_rows.len() {
            if !self.tail_deleted[i] && pred(&self.tail_rows[i]) {
                self.tail_deleted[i] = true;
                deleted.push(self.tail_rows[i].clone());
            }
        }
        for row in &deleted {
            self.delta_log
                .append(version, DeltaOp::Delete, row.clone(), 1);
        }
        self.live_rows -= deleted.len();
        deleted
    }

    /// Scan all live rows, optionally pruning chunks with a zone-map
    /// predicate on `column` restricted to `[lo, hi]` ranges. Each element
    /// of `ranges` is an inclusive `(Option<lo>, Option<hi>)` pair; a chunk
    /// survives when its zone map overlaps *any* range (matches the
    /// disjunctive `BETWEEN ... OR BETWEEN ...` rewrite of paper §1).
    ///
    /// `on_chunk_skipped` is invoked once per pruned chunk so callers can
    /// report skipping effectiveness.
    pub fn scan(
        &self,
        prune: Option<(usize, &[ValueRange])>,
        mut on_row: impl FnMut(Row),
        mut on_chunk_skipped: impl FnMut(usize),
    ) {
        for chunk in &self.chunks {
            if let Some((col, ranges)) = prune {
                let zm = chunk.zone_map();
                let overlaps = ranges
                    .iter()
                    .any(|(lo, hi)| zm.may_overlap(col, lo.as_ref(), hi.as_ref()));
                if !overlaps {
                    on_chunk_skipped(chunk.live_rows());
                    continue;
                }
            }
            for (_, row) in chunk.iter_live() {
                on_row(row);
            }
        }
        for (i, row) in self.tail_rows.iter().enumerate() {
            if !self.tail_deleted[i] {
                on_row(row.clone());
            }
        }
    }

    /// Collect all live rows (convenience; prefer [`Table::scan`] in hot
    /// paths).
    pub fn rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.live_rows);
        self.scan(None, |r| out.push(r), |_| {});
        out
    }

    /// Rows that are tombstoned but still occupy chunk space.
    pub fn dead_rows(&self) -> usize {
        let chunk_dead: usize = self.chunks.iter().map(|c| c.len() - c.live_rows()).sum();
        chunk_dead + self.tail_deleted.iter().filter(|d| **d).count()
    }

    /// Rewrite the storage without tombstoned rows (VACUUM). Physical
    /// reorganization only: the delta log and snapshot versions are
    /// untouched. Returns the number of reclaimed row slots.
    pub fn compact(&mut self) -> usize {
        let dead = self.dead_rows();
        if dead == 0 {
            return 0;
        }
        let live = self.rows();
        self.chunks.clear();
        self.tail = ChunkBuilder::new(&self.schema);
        self.tail_rows.clear();
        self.tail_deleted.clear();
        self.live_rows = 0;
        self.bulk_load(live)
            .expect("re-loading rows of matching schema");
        self.seal();
        dead
    }

    /// Approximate heap footprint.
    pub fn heap_size(&self) -> usize {
        self.chunks.iter().map(DataChunk::heap_size).sum::<usize>()
            + self.tail_rows.iter().map(Row::heap_size).sum::<usize>()
            + self.delta_log.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Field;
    use crate::value::DataType;

    fn sales_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("price", DataType::Int),
        ])
    }

    #[test]
    fn insert_and_scan() {
        let mut t = Table::with_chunk_capacity("s", sales_schema(), 2);
        for i in 0..5 {
            t.insert(row![i, i * 100], 1).unwrap();
        }
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.chunks().len(), 2); // 2 sealed chunks + tail of 1
        assert_eq!(t.rows().len(), 5);
        assert_eq!(t.delta_log().len(), 5);
    }

    #[test]
    fn delete_where_logs_and_tombstones() {
        let mut t = Table::with_chunk_capacity("s", sales_schema(), 2);
        for i in 0..4 {
            t.insert(row![i, i * 100], 1).unwrap();
        }
        let deleted = t.delete_where(2, |r| r[1] >= Value::Int(200));
        assert_eq!(deleted.len(), 2);
        assert_eq!(t.row_count(), 2);
        let deletes: Vec<_> = t
            .delta_log()
            .since(1)
            .iter()
            .filter(|r| r.op == DeltaOp::Delete)
            .collect();
        assert_eq!(deletes.len(), 2);
    }

    #[test]
    fn zone_map_scan_prunes_chunks() {
        let mut t = Table::with_chunk_capacity("s", sales_schema(), 2);
        // Chunk 0: prices 0,100 — chunk 1: 200,300 — chunk 2: 400,500.
        for i in 0..6 {
            t.insert(row![i, i * 100], 1).unwrap();
        }
        t.seal();
        let ranges = vec![(Some(Value::Int(350)), Some(Value::Int(600)))];
        let mut seen = Vec::new();
        let mut skipped = 0usize;
        t.scan(Some((1, &ranges)), |r| seen.push(r), |n| skipped += n);
        // Chunks 0 and 1 pruned, chunk 2 scanned.
        assert_eq!(skipped, 4);
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn delete_in_unsealed_tail() {
        let mut t = Table::new("s", sales_schema());
        t.insert(row![1, 10], 1).unwrap();
        t.insert(row![2, 20], 1).unwrap();
        let d = t.delete_where(2, |r| r[0] == Value::Int(1));
        assert_eq!(d.len(), 1);
        assert_eq!(t.rows(), vec![row![2, 20]]);
    }

    #[test]
    fn tombstones_survive_sealing() {
        let mut t = Table::with_chunk_capacity("s", sales_schema(), 4);
        t.insert(row![1, 10], 1).unwrap();
        t.insert(row![2, 20], 1).unwrap();
        t.delete_where(2, |r| r[0] == Value::Int(1));
        t.insert(row![3, 30], 3).unwrap();
        t.insert(row![4, 40], 3).unwrap(); // seals the chunk
        assert_eq!(t.rows(), vec![row![2, 20], row![3, 30], row![4, 40]]);
    }

    #[test]
    fn compact_reclaims_tombstones() {
        let mut t = Table::with_chunk_capacity("s", sales_schema(), 2);
        for i in 0..6 {
            t.insert(row![i, i * 100], 1).unwrap();
        }
        t.delete_where(2, |r| r[0] < Value::Int(3));
        assert_eq!(t.dead_rows(), 3);
        let before = t.rows();
        let reclaimed = t.compact();
        assert_eq!(reclaimed, 3);
        assert_eq!(t.dead_rows(), 0);
        let mut after = t.rows();
        let mut b = before.clone();
        after.sort();
        b.sort();
        assert_eq!(after, b);
        // Delta log unaffected by physical compaction.
        assert_eq!(t.delta_log().len(), 9);
        // Idempotent.
        assert_eq!(t.compact(), 0);
    }

    #[test]
    fn bulk_load_skips_delta_log() {
        let mut t = Table::new("s", sales_schema());
        t.bulk_load((0..10).map(|i| row![i, i])).unwrap();
        assert_eq!(t.row_count(), 10);
        assert!(t.delta_log().is_empty());
    }
}
