//! Length-prefixed binary codec.
//!
//! The paper's system "can persist the state that it maintains for its
//! incremental operators in the database. This enables the system to
//! continue incremental maintenance from a consistent state, e.g., when the
//! database is restarted, or when we are running out of memory and need to
//! evict the operator states for a query" (§2). This module is that
//! persistence format: a small, self-describing, versioned binary encoding
//! for [`Value`], [`Row`], and [`BitVec`], built on the `bytes` crate.
//! Higher layers (sketch store, operator state) compose these primitives.

use crate::bitvec::BitVec;
use crate::error::StorageError;
use crate::row::Row;
use crate::value::Value;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format version written at the head of every top-level encoding.
pub const CODEC_VERSION: u8 = 1;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Serialize one value.
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(StorageError::Corrupt(format!(
            "need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Deserialize one value.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    need(buf, 1)?;
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes)
                .map_err(|e| StorageError::Corrupt(format!("invalid utf8: {e}")))?;
            Ok(Value::str(s))
        }
        t => Err(StorageError::Corrupt(format!("unknown value tag {t}"))),
    }
}

/// Serialize a row.
pub fn encode_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32_le(row.arity() as u32);
    for v in row.values() {
        encode_value(buf, v);
    }
}

/// Deserialize a row.
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    if n > 1 << 20 {
        return Err(StorageError::Corrupt(format!("implausible arity {n}")));
    }
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(decode_value(buf)?);
    }
    Ok(Row::new(vals))
}

/// Serialize a bitvector.
pub fn encode_bitvec(buf: &mut BytesMut, bits: &BitVec) {
    buf.put_u64_le(bits.len() as u64);
    for w in bits.words() {
        buf.put_u64_le(*w);
    }
}

/// Deserialize a bitvector.
pub fn decode_bitvec(buf: &mut Bytes) -> Result<BitVec> {
    need(buf, 8)?;
    let len = buf.get_u64_le() as usize;
    if len > 1 << 32 {
        return Err(StorageError::Corrupt(format!(
            "implausible bitvec len {len}"
        )));
    }
    let words = len.div_ceil(64);
    need(buf, words * 8)?;
    let mut w = Vec::with_capacity(words);
    for _ in 0..words {
        w.push(buf.get_u64_le());
    }
    Ok(BitVec::from_raw(len, w))
}

/// Serialize a string.
pub fn encode_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Deserialize a string.
pub fn decode_str(buf: &mut Bytes) -> Result<String> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    let b = buf.copy_to_bytes(len);
    String::from_utf8(b.to_vec()).map_err(|e| StorageError::Corrupt(format!("invalid utf8: {e}")))
}

/// Serialize `u64`.
pub fn encode_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64_le(v);
}

/// Deserialize `u64`.
pub fn decode_u64(buf: &mut Bytes) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Serialize `i64`.
pub fn encode_i64(buf: &mut BytesMut, v: i64) {
    buf.put_i64_le(v);
}

/// Deserialize `i64`.
pub fn decode_i64(buf: &mut Bytes) -> Result<i64> {
    need(buf, 8)?;
    Ok(buf.get_i64_le())
}

/// Serialize `f64`.
pub fn encode_f64(buf: &mut BytesMut, v: f64) {
    buf.put_f64_le(v);
}

/// Deserialize `f64`.
pub fn decode_f64(buf: &mut Bytes) -> Result<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

/// Write the codec header (format version).
pub fn encode_header(buf: &mut BytesMut) {
    buf.put_u8(CODEC_VERSION);
}

/// Check the codec header.
pub fn decode_header(buf: &mut Bytes) -> Result<()> {
    need(buf, 1)?;
    let v = buf.get_u8();
    if v != CODEC_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported codec version {v} (expected {CODEC_VERSION})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn roundtrip_value(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &v);
        let mut b = buf.freeze();
        assert_eq!(decode_value(&mut b).unwrap(), v);
        assert!(b.is_empty());
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Float(2.5));
        roundtrip_value(Value::str("héllo"));
    }

    #[test]
    fn row_roundtrip() {
        let r = row![1, 2.5, "x", true];
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &r);
        let mut b = buf.freeze();
        assert_eq!(decode_row(&mut b).unwrap(), r);
    }

    #[test]
    fn bitvec_roundtrip() {
        let bits = BitVec::from_bits(130, [0, 64, 129]);
        let mut buf = BytesMut::new();
        encode_bitvec(&mut buf, &bits);
        let mut b = buf.freeze();
        assert_eq!(decode_bitvec(&mut b).unwrap(), bits);
    }

    #[test]
    fn truncated_input_is_error_not_panic() {
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &row![1, "abc"]);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_row(&mut b).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut b = Bytes::from_static(&[99]);
        assert!(decode_value(&mut b).is_err());
    }

    #[test]
    fn header_version_check() {
        let mut buf = BytesMut::new();
        encode_header(&mut buf);
        let mut ok = buf.freeze();
        assert!(decode_header(&mut ok).is_ok());
        let mut bad = Bytes::from_static(&[42]);
        assert!(decode_header(&mut bad).is_err());
    }
}
