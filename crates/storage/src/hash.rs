//! A fast, non-cryptographic hasher.
//!
//! Group-by maps, fragment counters, and join tables all hash small keys in
//! hot loops; SipHash (std's default) is needlessly slow for that.
//! This is the FxHash algorithm (as used by rustc), implemented in-repo so
//! the workspace stays within its approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash: multiply-and-rotate word-at-a-time hashing.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fx(v: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(fx(12345u64), fx(12345u64));
        assert_eq!(fx("hello"), fx("hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx(1u64), fx(2u64));
        assert_ne!(fx("a"), fx("b"));
    }

    #[test]
    fn usable_in_map() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("x", 1);
        m.insert("y", 2);
        assert_eq!(m["x"] + m["y"], 3);
    }
}
