//! Columnar view over [`DeltaBatch`] — the batch-granularity delta kernels.
//!
//! The row-at-a-time pipeline dispatches every [`DeltaEntry`] through key
//! extraction, annotation lookup, and multiplicity merge one tuple at a
//! time; per-row call and cache overhead dominates once deltas reach a few
//! hundred rows. [`DeltaColumns`] decomposes a batch into three contiguous
//! arrays — tuple handles, [`AnnotId`]s, and signed multiplicities — so
//! the hot operators (sketch annotation, aggregate group-state
//! maintenance, the three-term join rule, and delta normalization) can run
//! as tight passes over flat memory instead of pointer-chasing a struct
//! per row:
//!
//! * **Chunked extraction** ([`DeltaColumns::from_batch`]): the source
//!   batch is walked in [`COLUMNAR_CHUNK`]-row windows, each window split
//!   into the three column arrays while its entries are hot in cache.
//! * **Sort-then-run-length group-by** ([`sort_keys_stable`] /
//!   [`key_runs`]): instead of one hash probe per row, equal keys are made
//!   adjacent by one stable index sort and then consumed as runs — one
//!   group lookup per *distinct* key. The stable order preserves each
//!   group's input order, so order-sensitive per-group state (bounded
//!   MIN/MAX buffers) evolves exactly as under row-at-a-time processing.
//! * **Branch-free multiplicity merge** ([`DeltaColumns::merged`]): within
//!   a run the signed multiplicities are accumulated by a straight sum —
//!   no per-row zero test or hash-map entry update — and a single
//!   cancellation check per run drops annihilated tuples.
//!
//! The row path remains the fallback everywhere: callers switch to the
//! columnar kernels above a small batch-size threshold and both paths are
//! property-tested to produce identical [`DeltaBatch`] results (including
//! zero-multiplicity cancellations).

use crate::pool::{AnnotId, DeltaBatch, DeltaEntry};
use crate::row::Row;

/// Rows per extraction window: small enough that one window's entries and
/// the three destination array tails stay cache-resident, large enough to
/// amortize loop overhead.
pub const COLUMNAR_CHUNK: usize = 1024;

/// A [`DeltaBatch`] decomposed into three parallel, contiguous columns.
///
/// Index `i` of [`rows`](DeltaColumns::rows),
/// [`annots`](DeltaColumns::annots), and [`mults`](DeltaColumns::mults)
/// together describe the `i`-th delta tuple. Tuple payloads stay
/// `Arc`-shared with the source batch — building the view copies handles
/// and scalars, never tuple or bitvector data.
#[derive(Debug, Clone, Default)]
pub struct DeltaColumns {
    rows: Vec<Row>,
    annots: Vec<AnnotId>,
    mults: Vec<i64>,
}

impl DeltaColumns {
    /// Empty view with pre-allocated capacity in every column.
    pub fn with_capacity(n: usize) -> DeltaColumns {
        DeltaColumns {
            rows: Vec::with_capacity(n),
            annots: Vec::with_capacity(n),
            mults: Vec::with_capacity(n),
        }
    }

    /// Columnar view of `batch` by chunked extraction: each
    /// [`COLUMNAR_CHUNK`]-row window is transposed into the three column
    /// arrays while its entries are cache-hot.
    pub fn from_batch(batch: &DeltaBatch) -> DeltaColumns {
        let mut cols = DeltaColumns::with_capacity(batch.len());
        for chunk in batch.entries().chunks(COLUMNAR_CHUNK) {
            cols.rows.extend(chunk.iter().map(|e| e.row.clone()));
            cols.annots.extend(chunk.iter().map(|e| e.annot));
            cols.mults.extend(chunk.iter().map(|e| e.mult));
        }
        cols
    }

    /// Like [`DeltaColumns::from_batch`], but consumes the batch and moves
    /// the tuple handles instead of bumping their refcounts.
    pub fn from_owned(batch: DeltaBatch) -> DeltaColumns {
        let mut cols = DeltaColumns::with_capacity(batch.len());
        for DeltaEntry { row, annot, mult } in batch {
            cols.rows.push(row);
            cols.annots.push(annot);
            cols.mults.push(mult);
        }
        cols
    }

    /// Append one tuple to the view.
    pub fn push(&mut self, row: Row, annot: AnnotId, mult: i64) {
        self.rows.push(row);
        self.annots.push(annot);
        self.mults.push(mult);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No tuples?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tuple column.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The annotation-id column.
    pub fn annots(&self) -> &[AnnotId] {
        &self.annots
    }

    /// The signed-multiplicity column.
    pub fn mults(&self) -> &[i64] {
        &self.mults
    }

    /// Zip the columns back into a row-oriented batch.
    pub fn into_batch(self) -> DeltaBatch {
        self.rows
            .into_iter()
            .zip(self.annots)
            .zip(self.mults)
            .map(|((row, annot), mult)| DeltaEntry { row, annot, mult })
            .collect()
    }

    /// Normalize by sort-then-run-length group-by: one index sort makes
    /// equal `(tuple, annotation)` pairs adjacent, then each run's
    /// multiplicities are merged by a branch-free sum and annihilated
    /// tuples (net multiplicity 0) are dropped. The result is sorted by
    /// `(tuple, annotation)` — byte-identical to the row path's hash-merge
    /// followed by its deterministic sort.
    ///
    /// Batches of ≤ 1 entry are returned unchanged (mirroring the row
    /// path's early return, which does not zero-filter singletons).
    pub fn merged(self) -> DeltaBatch {
        let n = self.len();
        if n <= 1 {
            return self.into_batch();
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            (&self.rows[a], self.annots[a]).cmp(&(&self.rows[b], self.annots[b]))
        });
        let mut out = DeltaBatch::with_capacity(n);
        let mut i = 0;
        while i < n {
            let first = order[i] as usize;
            // Run boundary scan: equality checks only, no state updates.
            let mut j = i + 1;
            while j < n {
                let idx = order[j] as usize;
                if self.annots[idx] != self.annots[first] || self.rows[idx] != self.rows[first] {
                    break;
                }
                j += 1;
            }
            // Branch-free merge of the run: straight signed sum, one
            // cancellation test per run instead of per row.
            let acc: i64 = order[i..j].iter().map(|&k| self.mults[k as usize]).sum();
            if acc != 0 {
                out.push_entry(self.rows[first].clone(), self.annots[first], acc);
            }
            i = j;
        }
        out
    }
}

impl From<&DeltaBatch> for DeltaColumns {
    fn from(batch: &DeltaBatch) -> DeltaColumns {
        DeltaColumns::from_batch(batch)
    }
}

/// Stable index sort over a contiguous key column: returns the
/// permutation that makes equal keys adjacent while preserving input
/// order inside each equal-key run (the group-by half of
/// sort-then-run-length; consume the runs with [`key_runs`]).
pub fn sort_keys_stable<K: Ord>(keys: &[K]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    // Stable sort: ties keep index order, so per-group input order (and
    // with it order-sensitive group state) is preserved.
    order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    order
}

/// Iterator over equal-key runs of a permutation produced by
/// [`sort_keys_stable`]: each item is the slice of original indexes (in
/// input order) belonging to one distinct key.
pub fn key_runs<'a, K: Eq>(keys: &'a [K], order: &'a [u32]) -> KeyRuns<'a, K> {
    KeyRuns {
        keys,
        order,
        pos: 0,
    }
}

/// See [`key_runs`].
#[derive(Debug)]
pub struct KeyRuns<'a, K> {
    keys: &'a [K],
    order: &'a [u32],
    pos: usize,
}

impl<'a, K: Eq> Iterator for KeyRuns<'a, K> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.pos >= self.order.len() {
            return None;
        }
        let start = self.pos;
        let key = &self.keys[self.order[start] as usize];
        let mut end = start + 1;
        while end < self.order.len() && &self.keys[self.order[end] as usize] == key {
            end += 1;
        }
        self.pos = end;
        Some(&self.order[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::AnnotPool;
    use crate::row;

    fn batch(entries: &[(i64, usize, i64)], pool: &mut AnnotPool) -> DeltaBatch {
        entries
            .iter()
            .map(|&(key, frag, mult)| DeltaEntry {
                row: row![key],
                annot: pool.singleton(frag),
                mult,
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_batch() {
        let mut p = AnnotPool::new(8);
        let b = batch(&[(1, 0, 1), (2, 1, -1), (1, 0, 3)], &mut p);
        let cols = DeltaColumns::from_batch(&b);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.into_batch(), b);
        assert_eq!(DeltaColumns::from_owned(b.clone()).into_batch(), b);
    }

    #[test]
    fn chunked_extraction_crosses_window_boundaries() {
        let mut p = AnnotPool::new(8);
        let entries: Vec<(i64, usize, i64)> = (0..(COLUMNAR_CHUNK as i64 * 2 + 7))
            .map(|i| (i, (i % 4) as usize, 1 + i % 3))
            .collect();
        let b = batch(&entries, &mut p);
        let cols = DeltaColumns::from_batch(&b);
        assert_eq!(cols.rows().len(), b.len());
        assert_eq!(cols.into_batch(), b);
    }

    #[test]
    fn merged_folds_and_drops_cancellations() {
        let mut p = AnnotPool::new(8);
        // key 1 nets to +2, key 2 annihilates, key 3 survives negative.
        let b = batch(
            &[(1, 0, 1), (2, 1, 5), (1, 0, 1), (2, 1, -5), (3, 0, -2)],
            &mut p,
        );
        let merged = DeltaColumns::from_owned(b).merged();
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].mult, merged[1].mult), (2, -2));
        assert_eq!(merged[0].row, row![1]);
        assert_eq!(merged[1].row, row![3]);
    }

    #[test]
    fn merged_distinguishes_annotations_of_equal_rows() {
        let mut p = AnnotPool::new(8);
        let b = batch(&[(1, 0, 1), (1, 1, 1)], &mut p);
        let merged = DeltaColumns::from_owned(b).merged();
        assert_eq!(merged.len(), 2, "same tuple, different fragments");
    }

    #[test]
    fn singleton_zero_mult_is_kept_like_row_path() {
        let mut p = AnnotPool::new(8);
        let b = batch(&[(9, 0, 0)], &mut p);
        assert_eq!(DeltaColumns::from_owned(b.clone()).merged(), b);
    }

    #[test]
    fn stable_runs_preserve_input_order() {
        let keys = vec![row![2], row![1], row![2], row![1], row![3]];
        let order = sort_keys_stable(&keys);
        let runs: Vec<Vec<u32>> = key_runs(&keys, &order).map(|r| r.to_vec()).collect();
        assert_eq!(runs, vec![vec![1, 3], vec![0, 2], vec![4]]);
    }
}
