//! Property tests for the storage primitives: bitvector algebra, codec
//! roundtrips, delta-log windowing, and value ordering laws.

use bytes::BytesMut;
use imp_storage::codec;
use imp_storage::{BitVec, DeltaLog, DeltaOp, Row, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks Eq-based roundtrip comparison.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..6).prop_map(Row::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot check).
        if a.cmp(&b) == Ordering::Less && b.cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.cmp(&c), Ordering::Less);
        }
        // Eq ⇒ equal hashes.
        if a == b {
            use std::hash::{Hash, Hasher};
            let mut ha = imp_storage::FxHasher::default();
            let mut hb = imp_storage::FxHasher::default();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn codec_row_roundtrip(r in arb_row()) {
        let mut buf = BytesMut::new();
        codec::encode_row(&mut buf, &r);
        let mut bytes = buf.freeze();
        let back = codec::decode_row(&mut bytes).unwrap();
        prop_assert_eq!(back, r);
        prop_assert!(bytes.is_empty());
    }

    #[test]
    fn bitvec_algebra_laws(
        len in 1usize..300,
        xs in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
        ys in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
    ) {
        let a = BitVec::from_bits(len, xs.iter().map(|i| i.index(len)));
        let b = BitVec::from_bits(len, ys.iter().map(|i| i.index(len)));
        // Union is commutative and idempotent.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        // a ⊆ a ∪ b.
        prop_assert!(a.is_subset(&a.union(&b)));
        // count_ones consistent with iter_ones.
        prop_assert_eq!(a.count_ones(), a.iter_ones().count());
        // Codec roundtrip.
        let mut buf = BytesMut::new();
        codec::encode_bitvec(&mut buf, &a);
        let mut bytes = buf.freeze();
        prop_assert_eq!(codec::decode_bitvec(&mut bytes).unwrap(), a);
    }

    #[test]
    fn delta_log_since_partitions_the_log(
        entries in prop::collection::vec((1u64..20, any::<bool>(), any::<i64>()), 0..50),
        watermark in 0u64..25,
    ) {
        let mut sorted = entries.clone();
        sorted.sort_by_key(|e| e.0);
        let mut log = DeltaLog::new();
        for (v, ins, x) in &sorted {
            let op = if *ins { DeltaOp::Insert } else { DeltaOp::Delete };
            log.append(*v, op, Row::new(vec![Value::Int(*x)]), 1);
        }
        let after = log.since(watermark);
        // Everything returned is strictly after the watermark...
        prop_assert!(after.iter().all(|r| r.version > watermark));
        // ...and nothing after the watermark is missing.
        let expected = sorted.iter().filter(|e| e.0 > watermark).count();
        prop_assert_eq!(after.len(), expected);
    }

    #[test]
    fn codec_rejects_truncation(r in arb_row()) {
        let mut buf = BytesMut::new();
        codec::encode_row(&mut buf, &r);
        let full = buf.freeze();
        if full.len() > 4 {
            let mut cut = full.slice(..full.len() - 1);
            prop_assert!(codec::decode_row(&mut cut).is_err());
        }
    }
}
