//! Synthetic tables (paper §8).
//!
//! "Each synthetic table has a key attribute id. For the other attributes,
//! the values of one attribute (a) are chosen uniform at random. The
//! remaining attributes are linearly correlated with a subject to Gaussian
//! noise to create partially correlated values."

use imp_engine::Database;
use imp_storage::{DataType, Field, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one synthetic table.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Table name.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// `a` is drawn uniformly from `0..groups` — this is the number of
    /// distinct group-by values (§8.3.1 varies it).
    pub groups: i64,
    /// Number of correlated extra attributes (`b`, `c`, …; the paper uses
    /// at least 10 besides `id` and `a`).
    pub extra_attrs: usize,
    /// Standard deviation of the Gaussian noise added to correlated
    /// attributes.
    pub noise: f64,
    /// RNG seed (generators are fully deterministic).
    pub seed: u64,
    /// Physically cluster rows on `a` (sorted load). Data skipping prunes
    /// whole chunks through zone maps, so it only pays off when the
    /// partition attribute correlates with the physical layout — the paper
    /// notes the range partition "optionally may correspond to the
    /// physical storage layout of this table" (§1). Default: clustered.
    pub cluster_by_a: bool,
    /// Rows per storage chunk (pruning granularity).
    pub chunk_capacity: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            name: "edb1".into(),
            rows: 20_000,
            groups: 1_000,
            extra_attrs: 10,
            noise: 25.0,
            seed: 7,
            cluster_by_a: true,
            chunk_capacity: 1024,
        }
    }
}

/// Attribute names: `id`, `a`, then `b`, `c`, … for the extras. The
/// naming is owned by [`imp_sql::queries`] (the Appendix A query texts
/// reference these attributes); re-exported here for the generators.
pub use imp_sql::queries::attr_name;

/// Linear coefficient of extra attribute `k` (`b` has slope 1.0, `c` 1.2, …).
pub fn coef(k: usize) -> f64 {
    1.0 + k as f64 * 0.2
}

/// Standard-normal sample via Box–Muller (keeps us inside the approved
/// dependency set; `rand_distr` is not available offline).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Build the table rows (column layout: `id, a, b, c, …`).
pub fn generate_rows(cfg: &SyntheticConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Deterministic per-attribute linear coefficients (attribute k has
    // slope 1 + 0.2k) so workload constants can target known value ranges
    // and the update generators produce identically-correlated rows.
    let coefs: Vec<f64> = (0..cfg.extra_attrs).map(coef).collect();
    let mut rows = Vec::with_capacity(cfg.rows);
    for id in 0..cfg.rows {
        let a = rng.gen_range(0..cfg.groups);
        let mut vals = Vec::with_capacity(2 + cfg.extra_attrs);
        vals.push(Value::Int(id as i64));
        vals.push(Value::Int(a));
        for coef in &coefs {
            let v = a as f64 * coef + gaussian(&mut rng) * cfg.noise;
            vals.push(Value::Int(v.round() as i64));
        }
        rows.push(Row::new(vals));
    }
    if cfg.cluster_by_a {
        rows.sort_by(|x, y| x[1].cmp(&y[1]));
    }
    rows
}

/// Schema for a config.
pub fn schema(cfg: &SyntheticConfig) -> Schema {
    let mut fields = vec![
        Field::new("id", DataType::Int),
        Field::new("a", DataType::Int),
    ];
    for i in 0..cfg.extra_attrs {
        fields.push(Field::new(attr_name(i), DataType::Int));
    }
    Schema::new(fields)
}

/// Create + bulk-load the table into `db`.
pub fn load(db: &mut Database, cfg: &SyntheticConfig) -> imp_engine::Result<()> {
    let mut table = Table::with_chunk_capacity(cfg.name.clone(), schema(cfg), cfg.chunk_capacity);
    table.bulk_load(generate_rows(cfg))?;
    table.seal();
    db.register_table(table)?;
    Ok(())
}

/// Build the join-helper table of §8.3.3/§8.3.4: `ttid` joins against the
/// main table's `a`; `selectivity_pct` controls what fraction of main-table
/// `a` values have partners; `partners_per_key` is the `m` in m-n joins.
pub fn load_join_helper(
    db: &mut Database,
    name: &str,
    main_groups: i64,
    selectivity_pct: u32,
    partners_per_key: usize,
    seed: u64,
) -> imp_engine::Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Field::new("ttid", DataType::Int),
        Field::new("payload", DataType::Int),
    ]);
    let mut table = Table::new(name.to_string(), schema);
    let mut rows = Vec::new();
    for key in 0..main_groups {
        if rng.gen_range(0..100u32) < selectivity_pct {
            for _ in 0..partners_per_key {
                rows.push(Row::new(vec![
                    Value::Int(key),
                    Value::Int(rng.gen_range(0..1_000)),
                ]));
            }
        }
    }
    table.bulk_load(rows)?;
    table.seal();
    db.register_table(table)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = SyntheticConfig {
            rows: 100,
            ..Default::default()
        };
        assert_eq!(generate_rows(&cfg), generate_rows(&cfg));
    }

    #[test]
    fn a_is_within_groups_and_correlation_holds() {
        let cfg = SyntheticConfig {
            rows: 2_000,
            groups: 50,
            noise: 1.0,
            ..Default::default()
        };
        let rows = generate_rows(&cfg);
        for r in &rows {
            let a = r[1].as_i64().unwrap();
            assert!((0..50).contains(&a));
        }
        // Crude correlation check: mean of b for large a > mean for small a.
        let (mut lo, mut hi, mut nlo, mut nhi) = (0f64, 0f64, 0, 0);
        for r in &rows {
            let a = r[1].as_i64().unwrap();
            let b = r[2].as_i64().unwrap() as f64;
            if a < 10 {
                lo += b;
                nlo += 1;
            } else if a >= 40 {
                hi += b;
                nhi += 1;
            }
        }
        assert!(hi / nhi as f64 > lo / nlo as f64);
    }

    #[test]
    fn loads_into_database() {
        let mut db = Database::new();
        let cfg = SyntheticConfig {
            rows: 500,
            groups: 10,
            ..Default::default()
        };
        load(&mut db, &cfg).unwrap();
        let r = db
            .query("SELECT a, avg(b) AS ab FROM edb1 GROUP BY a")
            .unwrap();
        assert_eq!(r.rows.len(), 10);
    }

    #[test]
    fn join_helper_selectivity() {
        let mut db = Database::new();
        load_join_helper(&mut db, "h", 1000, 10, 1, 3).unwrap();
        let n = db.table("h").unwrap().row_count();
        // ~10% of 1000 keys.
        assert!((50..200).contains(&n), "{n}");
    }

    #[test]
    fn attr_names() {
        assert_eq!(attr_name(0), "b");
        assert_eq!(attr_name(8), "j");
    }
}
