//! # imp-data
//!
//! Deterministic dataset and workload generators reproducing the paper's
//! evaluation inputs (§8 "Datasets and Workloads"):
//!
//! * [`synthetic`] — the synthetic tables: "tables with 10M rows with at
//!   least 11 attributes … the values of one attribute (a) are chosen
//!   uniform at random. The remaining attributes are linearly correlated
//!   with a subject to Gaussian noise". Row counts are configurable (the
//!   benchmarks default to laptop-scale sizes; shapes are size-free).
//! * [`tpch`] — a TPC-H-style generator (customer / orders / lineitem /
//!   nation / region / supplier / part / partsupp). Substitution: dbgen is
//!   not available offline; this generator reproduces the schema, key
//!   relationships (FK chains, 1:n lineitem-per-order skew) and value
//!   distributions the evaluation queries exercise. Dates are encoded as
//!   `YYYYMMDD` integers.
//! * [`crimes`] — a synthetic Chicago-Crimes-like dataset (the real
//!   extract is not downloadable here): beats with Zipf-skewed incident
//!   counts, beat→district/ward/community-area correlation, per-year
//!   volumes. CQ1/CQ2 run verbatim.
//! * [`workload`] — mixed query/update streams (1U5Q / 1U1Q / 5U1Q of
//!   §8.1), delta generators (insert / delete / mixed), and the top-k
//!   deletion strategies of §8.4.3 (min-group, random, R-M ratios).
//! * [`queries`] — the Appendix A query texts, re-exported from
//!   [`imp_sql::queries`] (they live next to the parser that validates
//!   them).

pub mod crimes;
pub mod synthetic;
pub mod tpch;
pub mod workload;

pub use imp_sql::queries;

pub use synthetic::SyntheticConfig;
pub use workload::{MixedWorkload, WorkloadOp};
