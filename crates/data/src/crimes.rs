//! Synthetic Chicago-Crimes-like dataset.
//!
//! Substitution (documented in DESIGN.md): the paper uses the public
//! Chicago crimes extract (1.87 GB, 7.3 M rows); the live dataset is not
//! downloadable in this environment. This generator reproduces the
//! properties CQ1/CQ2 exercise: ~300 beats with Zipf-skewed incident
//! counts, beats nested in districts / wards / community areas, and
//! per-year incident volumes over 2001–2024.

use imp_engine::Database;
use imp_storage::{DataType, Field, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct beats.
pub const BEATS: i64 = 300;
/// Number of districts (beats nest into districts).
pub const DISTRICTS: i64 = 25;
/// Number of wards.
pub const WARDS: i64 = 50;
/// Number of community areas.
pub const COMMUNITY_AREAS: i64 = 77;
/// Year range of incidents.
pub const YEARS: std::ops::Range<i64> = 2001..2025;

const PRIMARY_TYPES: [&str; 12] = [
    "THEFT",
    "BATTERY",
    "CRIMINAL DAMAGE",
    "NARCOTICS",
    "ASSAULT",
    "BURGLARY",
    "MOTOR VEHICLE THEFT",
    "ROBBERY",
    "DECEPTIVE PRACTICE",
    "CRIMINAL TRESPASS",
    "WEAPONS VIOLATION",
    "HOMICIDE",
];

/// Zipf-ish sampler over `0..n` (precomputed CDF, exponent ~0.8 — beats in
/// the real data are heavily but not extremely skewed).
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build for `n` items with the given exponent.
    pub fn new(n: usize, exponent: f64) -> ZipfSampler {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw one index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u)
    }
}

/// The crimes table schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("year", DataType::Int),
        Field::new("beat", DataType::Int),
        Field::new("district", DataType::Int),
        Field::new("ward", DataType::Int),
        Field::new("community_area", DataType::Int),
        Field::new("primary_type", DataType::Str),
        Field::new("arrest", DataType::Bool),
    ])
}

/// Generate `rows` incidents.
pub fn generate_rows(rows: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let beat_sampler = ZipfSampler::new(BEATS as usize, 0.8);
    let mut out = Vec::with_capacity(rows);
    for id in 0..rows as i64 {
        let beat = beat_sampler.sample(&mut rng) as i64;
        // Beats nest into the coarser geographies deterministically, so
        // grouping on (district, community_area, ward, beat) is coherent.
        let district = beat * DISTRICTS / BEATS;
        let ward = beat * WARDS / BEATS;
        let community_area = beat * COMMUNITY_AREAS / BEATS;
        let year = YEARS.start + rng.gen_range(0..YEARS.end - YEARS.start);
        out.push(Row::new(vec![
            Value::Int(id),
            Value::Int(year),
            Value::Int(beat),
            Value::Int(district),
            Value::Int(ward),
            Value::Int(community_area),
            Value::str(PRIMARY_TYPES[rng.gen_range(0..PRIMARY_TYPES.len())]),
            Value::Bool(rng.gen_bool(0.25)),
        ]));
    }
    // Physically cluster on beat: the real dataset is served
    // beat-partitioned, and data skipping requires the partition attribute
    // to correlate with the storage layout (zone maps prune whole chunks).
    out.sort_by(|x, y| x[2].cmp(&y[2]));
    out
}

/// Create + load the `crimes` table.
pub fn load(db: &mut Database, rows: usize, seed: u64) -> imp_engine::Result<()> {
    let mut table = Table::with_chunk_capacity("crimes", schema(), 1024);
    table.bulk_load(generate_rows(rows, seed))?;
    table.seal();
    db.register_table(table)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skews_head() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = ZipfSampler::new(100, 1.0);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn cq1_and_cq2_run() {
        let mut db = Database::new();
        load(&mut db, 20_000, 11).unwrap();
        let cq1 = db.query(crate::queries::CRIMES_CQ1).unwrap();
        assert!(!cq1.rows.is_empty());
        let cq2 = db.query(crate::queries::CRIMES_CQ2).unwrap();
        // Zipf head beats cross the count>1000 threshold even at 20k rows
        // ... or not; just check it executes and respects HAVING.
        for (row, _) in &cq2.rows {
            assert!(row[4].as_i64().unwrap() > 1000);
        }
    }

    #[test]
    fn geography_nesting_consistent() {
        for r in generate_rows(1000, 5) {
            let beat = r[2].as_i64().unwrap();
            assert_eq!(r[3].as_i64().unwrap(), beat * DISTRICTS / BEATS);
            assert_eq!(r[4].as_i64().unwrap(), beat * WARDS / BEATS);
        }
    }
}
