//! Workload generators.
//!
//! * Mixed query/update streams of §8.1 — "each workload consists of 1000
//!   operations … we refer to the ratio between queries and updates":
//!   1U5Q, 1U1Q, 5U1Q, parameterized by delta size (rows per update).
//! * Update streams (insert-only, delete-only, mixed) for the incremental
//!   vs. full maintenance comparisons of §8.2/§8.3.
//! * The top-k deletion strategies of §8.4.3: delete-minimal-groups,
//!   delete-random, and R-M ratios (R random updates per M min-group
//!   updates).

use crate::queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a mixed workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// A SELECT.
    Query(String),
    /// An update statement touching `rows` rows.
    Update {
        /// The SQL text (multi-row INSERT or a DELETE).
        sql: String,
        /// Rows the statement touches.
        rows: usize,
    },
}

/// A generated operation stream.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// The operations in execution order.
    pub ops: Vec<WorkloadOp>,
    /// Updates per cycle (the "U" of 5U1Q).
    pub updates_per_cycle: usize,
    /// Queries per cycle (the "Q" of 1U5Q).
    pub queries_per_cycle: usize,
    /// Rows per update statement.
    pub delta_size: usize,
}

impl MixedWorkload {
    /// Total operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Label like "1U5Q".
    pub fn label(&self) -> String {
        format!("{}U{}Q", self.updates_per_cycle, self.queries_per_cycle)
    }
}

/// Build a §8.1 mixed workload over the synthetic `edb1` table.
///
/// Queries are `Q_endtoend` instances whose HAVING window is drawn from a
/// small set of windows so sketches get reused across queries (the paper's
/// workload reuses sketches via templates). Updates are multi-row INSERTs
/// of `delta_size` rows (ids beyond the loaded range; `a` uniform over the
/// group domain, `c` correlated).
pub fn mixed_workload(
    updates_per_cycle: usize,
    queries_per_cycle: usize,
    total_ops: usize,
    delta_size: usize,
    groups: i64,
    start_id: usize,
    seed: u64,
) -> MixedWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(total_ops);
    let mut next_id = start_id;
    // A handful of HAVING windows over avg(c); identical windows reuse
    // sketches. avg(c) ≈ a * coef(1), so windows centred inside the group
    // domain select a thin, non-empty band of groups.
    let c_slope = crate::synthetic::coef(1);
    let windows: Vec<(i64, i64)> = (0..4)
        .map(|i| {
            let a_center = groups * (5 + i) / 10; // 50%..80% of the domain
            let center = (a_center as f64 * c_slope) as i64;
            (center - 40, center + 40)
        })
        .collect();
    let cycle = updates_per_cycle + queries_per_cycle;
    while ops.len() < total_ops {
        let pos = ops.len() % cycle;
        if pos < updates_per_cycle {
            ops.push(insert_update(&mut rng, &mut next_id, delta_size, groups));
        } else {
            let (lo, hi) = windows[rng.gen_range(0..windows.len())];
            ops.push(WorkloadOp::Query(queries::q_endtoend(lo, hi)));
        }
    }
    MixedWorkload {
        ops,
        updates_per_cycle,
        queries_per_cycle,
        delta_size,
    }
}

/// One multi-row INSERT into `edb1` following the synthetic correlation.
fn insert_update(
    rng: &mut StdRng,
    next_id: &mut usize,
    delta_size: usize,
    groups: i64,
) -> WorkloadOp {
    let mut values = Vec::with_capacity(delta_size);
    for _ in 0..delta_size {
        let id = *next_id;
        *next_id += 1;
        let a = rng.gen_range(0..groups);
        // Ten correlated attributes, same shape as synthetic::generate_rows.
        let mut row = format!("({id}, {a}");
        for k in 0..10 {
            let v = (a as f64 * crate::synthetic::coef(k) + crate::synthetic::gaussian(rng) * 25.0)
                .round() as i64;
            row.push_str(&format!(", {v}"));
        }
        row.push(')');
        values.push(row);
    }
    WorkloadOp::Update {
        sql: format!("INSERT INTO edb1 VALUES {}", values.join(", ")),
        rows: delta_size,
    }
}

/// Insert-only update stream for a synthetic table (§8.2/§8.3).
pub fn insert_stream(
    table: &str,
    updates: usize,
    delta_size: usize,
    groups: i64,
    start_id: usize,
    seed: u64,
) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = start_id;
    let mut out = Vec::with_capacity(updates);
    for _ in 0..updates {
        let WorkloadOp::Update { sql, rows } =
            insert_update(&mut rng, &mut next_id, delta_size, groups)
        else {
            unreachable!()
        };
        out.push(WorkloadOp::Update {
            sql: sql.replace("INSERT INTO edb1", &format!("INSERT INTO {table}")),
            rows,
        });
    }
    out
}

/// Delete-only stream: each update deletes a random id window of about
/// `delta_size` rows.
pub fn delete_stream(
    table: &str,
    updates: usize,
    delta_size: usize,
    max_id: usize,
    seed: u64,
) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..updates)
        .map(|_| {
            let start = rng.gen_range(0..max_id.saturating_sub(delta_size).max(1));
            WorkloadOp::Update {
                sql: format!(
                    "DELETE FROM {table} WHERE id >= {start} AND id < {}",
                    start + delta_size
                ),
                rows: delta_size,
            }
        })
        .collect()
}

/// Top-k deletion strategies of §8.4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKDeleteStrategy {
    /// "always delete the first 2 minimal groups".
    MinGroups,
    /// "always delete randomly tuples".
    Random,
    /// R random updates per M min-group updates (the paper's 2:1 / 4:1).
    Ratio {
        /// Random updates per block.
        random: usize,
        /// Min-group updates per block.
        min_group: usize,
    },
}

/// Generate the §8.4.3 deletion workload for a table grouped on `a`:
/// updates of `rows_per_update` deletions following the strategy.
pub fn topk_delete_stream(
    table: &str,
    strategy: TopKDeleteStrategy,
    updates: usize,
    rows_per_update: usize,
    groups: i64,
    max_id: usize,
    seed: u64,
) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_min_group = 0i64;
    let mut out = Vec::with_capacity(updates);
    for i in 0..updates {
        let use_min = match strategy {
            TopKDeleteStrategy::MinGroups => true,
            TopKDeleteStrategy::Random => false,
            TopKDeleteStrategy::Ratio { random, min_group } => i % (random + min_group) >= random,
        };
        if use_min && next_min_group < groups {
            // Delete the two smallest not-yet-deleted groups.
            let g0 = next_min_group;
            let g1 = next_min_group + 1;
            next_min_group += 2;
            out.push(WorkloadOp::Update {
                sql: format!("DELETE FROM {table} WHERE a = {g0} OR a = {g1}"),
                rows: rows_per_update,
            });
        } else {
            let start = rng.gen_range(0..max_id.saturating_sub(rows_per_update).max(1));
            out.push(WorkloadOp::Update {
                sql: format!(
                    "DELETE FROM {table} WHERE id >= {start} AND id < {}",
                    start + rows_per_update
                ),
                rows: rows_per_update,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_respected() {
        let w = mixed_workload(1, 5, 60, 20, 100, 10_000, 1);
        assert_eq!(w.len(), 60);
        let updates = w
            .ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Update { .. }))
            .count();
        assert_eq!(updates, 10); // 1 update per 6-op cycle
        assert_eq!(w.label(), "1U5Q");
    }

    #[test]
    fn five_u_one_q() {
        let w = mixed_workload(5, 1, 60, 1, 100, 0, 2);
        let updates = w
            .ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Update { .. }))
            .count();
        assert_eq!(updates, 50);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = mixed_workload(1, 1, 20, 5, 50, 0, 9);
        let b = mixed_workload(1, 1, 20, 5, 50, 0, 9);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn insert_statements_parse() {
        let w = insert_stream("edb1", 3, 4, 100, 500, 3);
        for op in w {
            let WorkloadOp::Update { sql, .. } = op else {
                panic!()
            };
            imp_sql::parse_one(&sql).unwrap();
        }
    }

    #[test]
    fn topk_ratio_alternates() {
        let ops = topk_delete_stream(
            "t",
            TopKDeleteStrategy::Ratio {
                random: 2,
                min_group: 1,
            },
            6,
            10,
            100,
            1000,
            4,
        );
        let min_deletes = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Update { sql, .. } if sql.contains("a =")))
            .count();
        assert_eq!(min_deletes, 2);
    }
}
