//! TPC-H-style data generator.
//!
//! Substitution (documented in DESIGN.md): the official `dbgen` tool and
//! multi-GB scale factors are not available in this environment. This
//! generator reproduces the TPC-H schema (8 tables), the key
//! relationships (dense primary keys, FK chains customer→orders→lineitem,
//! 1–7 lineitems per order), and the value distributions the evaluation
//! queries exercise (prices, discounts, return flags, dates). Dates are
//! `YYYYMMDD` integers (the engine has no date type; comparisons behave
//! identically). `scale = 1.0` corresponds to a deliberately laptop-sized
//! instance (~10k customers); the paper's SF1/SF10 relative shapes are
//! scale-free.

use imp_engine::Database;
use imp_storage::{DataType, Field, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows per table at `scale = 1.0` (laptop-sized "SF1").
pub const CUSTOMERS_AT_SCALE_1: usize = 10_000;
const ORDERS_PER_CUSTOMER: usize = 10;

const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Generate all eight TPC-H tables into `db` at the given scale.
pub fn load(db: &mut Database, scale: f64, seed: u64) -> imp_engine::Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    load_region(db)?;
    load_nation(db)?;
    let customers = ((CUSTOMERS_AT_SCALE_1 as f64) * scale).max(10.0) as usize;
    load_customer(db, customers, &mut rng)?;
    let orders = load_orders(db, customers, &mut rng)?;
    load_lineitem(db, &orders, &mut rng)?;
    let parts = (customers / 5).max(10);
    load_part(db, parts, &mut rng)?;
    let suppliers = (customers / 10).max(5);
    load_supplier(db, suppliers, &mut rng)?;
    load_partsupp(db, parts, suppliers, &mut rng)?;
    Ok(())
}

fn load_region(db: &mut Database) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("r_regionkey", DataType::Int),
        Field::new("r_name", DataType::Str),
    ]);
    let mut t = Table::new("region", schema);
    t.bulk_load(
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, n)| Row::new(vec![Value::Int(i as i64), Value::str(*n)])),
    )?;
    t.seal();
    db.register_table(t)
}

fn load_nation(db: &mut Database) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("n_nationkey", DataType::Int),
        Field::new("n_name", DataType::Str),
        Field::new("n_regionkey", DataType::Int),
    ]);
    let mut t = Table::new("nation", schema);
    t.bulk_load(NATIONS.iter().enumerate().map(|(i, (name, region))| {
        Row::new(vec![
            Value::Int(i as i64),
            Value::str(*name),
            Value::Int(*region),
        ])
    }))?;
    t.seal();
    db.register_table(t)
}

fn load_customer(db: &mut Database, n: usize, rng: &mut StdRng) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("c_custkey", DataType::Int),
        Field::new("c_name", DataType::Str),
        Field::new("c_address", DataType::Str),
        Field::new("c_nationkey", DataType::Int),
        Field::new("c_phone", DataType::Str),
        Field::new("c_acctbal", DataType::Float),
        Field::new("c_mktsegment", DataType::Str),
        Field::new("c_comment", DataType::Str),
    ]);
    let mut t = Table::new("customer", schema);
    let mut rows = Vec::with_capacity(n);
    for k in 0..n as i64 {
        let nation = rng.gen_range(0..25);
        rows.push(Row::new(vec![
            Value::Int(k),
            Value::str(format!("Customer#{k:09}")),
            Value::str(format!("addr-{}", rng.gen_range(0..100_000))),
            Value::Int(nation),
            Value::str(format!(
                "{}-{:03}-{:03}-{:04}",
                10 + nation,
                rng.gen_range(100..999),
                rng.gen_range(100..999),
                rng.gen_range(1000..9999)
            )),
            Value::Float((rng.gen_range(-99_999..999_999) as f64) / 100.0),
            Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            Value::str(format!("comment {}", rng.gen_range(0..1_000))),
        ]));
    }
    t.bulk_load(rows)?;
    t.seal();
    db.register_table(t)
}

/// Random order date as YYYYMMDD in 1992-01-01 .. 1998-08-02.
fn order_date(rng: &mut StdRng) -> i64 {
    let year = rng.gen_range(1992..=1998);
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=28);
    (year * 10_000 + month * 100 + day) as i64
}

fn load_orders(
    db: &mut Database,
    customers: usize,
    rng: &mut StdRng,
) -> imp_engine::Result<Vec<(i64, i64)>> {
    let schema = Schema::new(vec![
        Field::new("o_orderkey", DataType::Int),
        Field::new("o_custkey", DataType::Int),
        Field::new("o_orderstatus", DataType::Str),
        Field::new("o_totalprice", DataType::Float),
        Field::new("o_orderdate", DataType::Int),
        Field::new("o_orderpriority", DataType::Str),
    ]);
    let mut t = Table::new("orders", schema);
    let n = customers * ORDERS_PER_CUSTOMER;
    let mut keys = Vec::with_capacity(n);
    let mut rows = Vec::with_capacity(n);
    for k in 0..n as i64 {
        // Two thirds of customers have orders (TPC-H leaves 1/3 without).
        let cust = rng.gen_range(0..customers as i64);
        let date = order_date(rng);
        keys.push((k, date));
        rows.push(Row::new(vec![
            Value::Int(k),
            Value::Int(cust),
            Value::str(["F", "O", "P"][rng.gen_range(0..3usize)]),
            Value::Float((rng.gen_range(1_000..500_000) as f64) / 100.0),
            Value::Int(date),
            Value::str(format!("{}-PRIORITY", rng.gen_range(1..=5))),
        ]));
    }
    t.bulk_load(rows)?;
    t.seal();
    db.register_table(t)?;
    Ok(keys)
}

fn load_lineitem(
    db: &mut Database,
    orders: &[(i64, i64)],
    rng: &mut StdRng,
) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("l_orderkey", DataType::Int),
        Field::new("l_partkey", DataType::Int),
        Field::new("l_suppkey", DataType::Int),
        Field::new("l_linenumber", DataType::Int),
        Field::new("l_quantity", DataType::Int),
        Field::new("l_extendedprice", DataType::Float),
        Field::new("l_discount", DataType::Float),
        Field::new("l_tax", DataType::Float),
        Field::new("l_returnflag", DataType::Str),
        Field::new("l_shipdate", DataType::Int),
    ]);
    let mut t = Table::new("lineitem", schema);
    let mut rows = Vec::new();
    for (okey, odate) in orders {
        let lines = rng.gen_range(1..=7);
        for line in 0..lines {
            let qty = rng.gen_range(1..=50) as i64;
            let price = (rng.gen_range(90_000..1_100_000) as f64) / 100.0;
            rows.push(Row::new(vec![
                Value::Int(*okey),
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(rng.gen_range(0..1_000)),
                Value::Int(line as i64),
                Value::Int(qty),
                Value::Float(price),
                Value::Float(rng.gen_range(0..=10) as f64 / 100.0),
                Value::Float(rng.gen_range(0..=8) as f64 / 100.0),
                Value::str(RETURN_FLAGS[rng.gen_range(0..3usize)]),
                Value::Int(odate + rng.gen_range(1i64..=90)),
            ]));
        }
    }
    t.bulk_load(rows)?;
    t.seal();
    db.register_table(t)
}

fn load_part(db: &mut Database, n: usize, rng: &mut StdRng) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("p_partkey", DataType::Int),
        Field::new("p_name", DataType::Str),
        Field::new("p_brand", DataType::Str),
        Field::new("p_size", DataType::Int),
        Field::new("p_retailprice", DataType::Float),
    ]);
    let mut t = Table::new("part", schema);
    t.bulk_load((0..n as i64).map(|k| {
        Row::new(vec![
            Value::Int(k),
            Value::str(format!("part-{k}")),
            Value::str(format!(
                "Brand#{}{}",
                rng.gen_range(1..=5),
                rng.gen_range(1..=5)
            )),
            Value::Int(rng.gen_range(1..=50)),
            Value::Float((90_000 + (k % 200) * 100) as f64 / 100.0),
        ])
    }))?;
    t.seal();
    db.register_table(t)
}

fn load_supplier(db: &mut Database, n: usize, rng: &mut StdRng) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("s_suppkey", DataType::Int),
        Field::new("s_name", DataType::Str),
        Field::new("s_nationkey", DataType::Int),
        Field::new("s_acctbal", DataType::Float),
    ]);
    let mut t = Table::new("supplier", schema);
    t.bulk_load((0..n as i64).map(|k| {
        Row::new(vec![
            Value::Int(k),
            Value::str(format!("Supplier#{k:09}")),
            Value::Int(rng.gen_range(0..25)),
            Value::Float((rng.gen_range(-99_999..999_999) as f64) / 100.0),
        ])
    }))?;
    t.seal();
    db.register_table(t)
}

fn load_partsupp(
    db: &mut Database,
    parts: usize,
    suppliers: usize,
    rng: &mut StdRng,
) -> imp_engine::Result<()> {
    let schema = Schema::new(vec![
        Field::new("ps_partkey", DataType::Int),
        Field::new("ps_suppkey", DataType::Int),
        Field::new("ps_availqty", DataType::Int),
        Field::new("ps_supplycost", DataType::Float),
    ]);
    let mut t = Table::new("partsupp", schema);
    let mut rows = Vec::new();
    for p in 0..parts as i64 {
        for _ in 0..4 {
            rows.push(Row::new(vec![
                Value::Int(p),
                Value::Int(rng.gen_range(0..suppliers as i64)),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Float((rng.gen_range(100..100_000) as f64) / 100.0),
            ]));
        }
    }
    t.bulk_load(rows)?;
    t.seal();
    db.register_table(t)
}

/// TPC-H-style refresh streams: the benchmark's RF1 inserts new orders
/// with their lineitems, RF2 deletes existing orders with their lineitems.
/// Each returned operation touches roughly `orders_per_update` orders
/// (≈ 4× that many lineitem rows).
pub fn refresh_stream(
    updates: usize,
    orders_per_update: usize,
    insert: bool,
    max_orderkey: i64,
    seed: u64,
) -> Vec<crate::workload::WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_key = max_orderkey + 1;
    let mut out = Vec::with_capacity(updates);
    for _ in 0..updates {
        if insert {
            // RF1: new orders plus 1..=7 lineitems each.
            let mut order_rows = Vec::new();
            let mut line_rows = Vec::new();
            let mut touched = 0usize;
            for _ in 0..orders_per_update {
                let key = next_key;
                next_key += 1;
                let date = order_date(&mut rng);
                order_rows.push(format!(
                    "({key}, {}, 'O', {:.2}, {date}, '{}-PRIORITY')",
                    rng.gen_range(0..1_000),
                    (rng.gen_range(1_000..500_000) as f64) / 100.0,
                    rng.gen_range(1..=5),
                ));
                for line in 0..rng.gen_range(1..=7) {
                    line_rows.push(format!(
                        "({key}, {}, {}, {line}, {}, {:.2}, 0.0{}, 0.02, '{}', {})",
                        rng.gen_range(0..10_000),
                        rng.gen_range(0..1_000),
                        rng.gen_range(1..=50),
                        (rng.gen_range(90_000..1_100_000) as f64) / 100.0,
                        rng.gen_range(0..=9),
                        RETURN_FLAGS[rng.gen_range(0..3usize)],
                        date + rng.gen_range(1i64..=90),
                    ));
                    touched += 1;
                }
            }
            out.push(crate::workload::WorkloadOp::Update {
                sql: format!("INSERT INTO orders VALUES {}", order_rows.join(", ")),
                rows: orders_per_update,
            });
            out.push(crate::workload::WorkloadOp::Update {
                sql: format!("INSERT INTO lineitem VALUES {}", line_rows.join(", ")),
                rows: touched,
            });
        } else {
            // RF2: delete a window of order keys from both tables.
            let start = rng.gen_range(0..max_orderkey.max(1));
            let end = start + orders_per_update as i64;
            out.push(crate::workload::WorkloadOp::Update {
                sql: format!(
                    "DELETE FROM lineitem WHERE l_orderkey >= {start} AND l_orderkey < {end}"
                ),
                rows: orders_per_update * 4,
            });
            out.push(crate::workload::WorkloadOp::Update {
                sql: format!(
                    "DELETE FROM orders WHERE o_orderkey >= {start} AND o_orderkey < {end}"
                ),
                rows: orders_per_update,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_all_tables() {
        let mut db = Database::new();
        load(&mut db, 0.01, 1).unwrap();
        for t in [
            "region", "nation", "customer", "orders", "lineitem", "part", "supplier", "partsupp",
        ] {
            assert!(db.table(t).unwrap().row_count() > 0, "{t}");
        }
        assert_eq!(db.table("nation").unwrap().row_count(), 25);
    }

    #[test]
    fn q10_style_query_runs() {
        let mut db = Database::new();
        load(&mut db, 0.01, 1).unwrap();
        let r = db.query(crate::queries::Q_SPACE).unwrap();
        assert!(r.rows.len() <= 20);
    }

    #[test]
    fn refresh_streams_parse_and_apply() {
        let mut db = Database::new();
        load(&mut db, 0.005, 2).unwrap();
        let orders_before = db.table("orders").unwrap().row_count();
        let max_key = orders_before as i64;
        for op in refresh_stream(2, 3, true, max_key, 5) {
            let crate::workload::WorkloadOp::Update { sql, .. } = op else {
                panic!()
            };
            db.execute_sql(&sql).unwrap();
        }
        assert_eq!(db.table("orders").unwrap().row_count(), orders_before + 6);
        for op in refresh_stream(2, 3, false, max_key, 7) {
            let crate::workload::WorkloadOp::Update { sql, .. } = op else {
                panic!()
            };
            db.execute_sql(&sql).unwrap();
        }
        assert!(db.table("orders").unwrap().row_count() < orders_before + 6);
    }

    #[test]
    fn lineitems_reference_orders() {
        let mut db = Database::new();
        load(&mut db, 0.005, 2).unwrap();
        let orders = db.table("orders").unwrap().row_count();
        let lineitems = db.table("lineitem").unwrap().row_count();
        assert!(lineitems > orders, "1..7 lineitems per order");
        let r = db
            .query("SELECT count(*) FROM lineitem JOIN orders ON (l_orderkey = o_orderkey)")
            .unwrap();
        assert_eq!(r.rows[0].0[0], Value::Int(lineitems as i64));
    }
}
