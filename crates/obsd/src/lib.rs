//! # imp-obsd — minimal observability exposition server
//!
//! A deliberately tiny HTTP/1.1 server built on nothing but `std::net`,
//! just capable enough to serve Prometheus scrapes, JSON introspection,
//! and flight-recorder dumps from an in-process observability hub. It is
//! **not** a general web server:
//!
//! - `GET` only (anything else is `405`), no keep-alive
//!   (`Connection: close` on every response), no TLS, no chunked bodies.
//! - Exact-path routing via [`Router`]; query strings are split off and
//!   exposed through [`Request::query_param`].
//! - A blocking accept loop plus a small fixed worker pool. Handlers run
//!   on pool threads and must never block on the process under
//!   observation — by construction the IMP glue layer reads only
//!   snapshots (`MetricsRegistry::sample`, `SnapshotBoard::read`,
//!   flight-ring scans), so a slow scraper can never stall maintenance.
//!
//! Shutdown is cooperative: [`Server`] sets a flag and self-connects to
//! unblock `accept`, then joins the accept thread and every worker.
//! Dropping the server shuts it down.
//!
//! ```no_run
//! use imp_obsd::{Response, Router, Server};
//!
//! let mut router = Router::new();
//! router.get("/ping", |_req| Response::text(200, "pong"));
//! let server = Server::bind("127.0.0.1:0", router, 2).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! drop(server); // joins all threads
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on request head size (request line + headers); larger heads are
/// rejected with `431` to bound per-connection memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Per-connection socket timeout: a stalled scraper is cut loose rather
/// than pinning a worker thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed (GET) request: method, decoded path, and the raw query
/// string, if any.
#[derive(Debug, Clone)]
pub struct Request {
    method: String,
    path: String,
    query: Option<String>,
}

impl Request {
    /// Request method (`GET` for anything a handler will ever see).
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Path without the query string, e.g. `/metrics`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Raw query string (text after `?`), if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Value of the first `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// A response: status code, content type, and body bytes.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    /// Plain-text response (`text/plain; charset=utf-8`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// JSON response (`application/json`).
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// Prometheus text-exposition response.
    pub fn prometheus(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Exact-path GET router. Unknown paths get `404`; non-GET methods get
/// `405` before routing.
#[derive(Default, Clone)]
pub struct Router {
    routes: Vec<(String, Handler)>,
}

impl Router {
    /// Empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register `handler` for `GET path` (exact match, no patterns).
    pub fn get(
        &mut self,
        path: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.routes.push((path.into(), Arc::new(handler)));
        self
    }

    /// Registered paths, in registration order (index pages, tests).
    pub fn paths(&self) -> Vec<&str> {
        self.routes.iter().map(|(p, _)| p.as_str()).collect()
    }

    fn dispatch(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::text(405, "method not allowed\n");
        }
        match self.routes.iter().find(|(p, _)| *p == req.path) {
            Some((_, handler)) => handler(req),
            None => Response::text(404, "not found\n"),
        }
    }
}

/// Running exposition server; dropping it shuts it down and joins every
/// thread.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `router` on `threads` worker threads (clamped to ≥ 1).
    pub fn bind(addr: &str, router: Router, threads: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);

        // Accepted connections flow through a small bounded channel to the
        // worker pool; the bound sheds load to the OS backlog instead of
        // queueing unboundedly in-process.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(64);
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let router = Arc::clone(&router);
                std::thread::Builder::new()
                    .name(format!("imp-obsd-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().expect("obsd worker queue").recv() {
                            Ok(s) => s,
                            Err(_) => return, // accept loop gone
                        };
                        let _ = serve_connection(stream, &router);
                    })
                    .expect("spawn obsd worker")
            })
            .collect();

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("imp-obsd-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            return; // drops tx → workers drain and exit
                        }
                        if let Ok(stream) = stream {
                            // If the pool is saturated the send blocks,
                            // back-pressuring into the OS accept backlog.
                            if tx.send(stream).is_err() {
                                return;
                            }
                        }
                    }
                })
                .expect("spawn obsd accept loop")
        };

        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests, and join all threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Read one request head, dispatch it, write the response, close.
fn serve_connection(mut stream: TcpStream, router: &Router) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let response = match read_request(&mut stream) {
        Ok(Some(req)) => router.dispatch(&req),
        Ok(None) => Response::text(431, "request head too large\n"),
        Err(ParseError::Malformed) => Response::text(400, "bad request\n"),
        Err(ParseError::Io(e)) => return Err(e),
    };
    response.write_to(&mut stream)
}

enum ParseError {
    Malformed,
    Io(io::Error),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> ParseError {
        ParseError::Io(e)
    }
}

/// Parse the request line and discard headers up to the blank line.
/// `Ok(None)` means the head exceeded [`MAX_HEAD_BYTES`].
fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, ParseError> {
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES as u64 + 1));
    let mut line = String::new();
    let mut total = reader.read_line(&mut line)?;
    if total == 0 || total > MAX_HEAD_BYTES {
        return if total == 0 {
            Err(ParseError::Malformed)
        } else {
            Ok(None)
        };
    }

    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed)?.to_string();
    let target = parts.next().ok_or(ParseError::Malformed)?;
    let version = parts.next().ok_or(ParseError::Malformed)?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    // Consume headers until the blank line; contents are irrelevant for
    // GET-only exposition, but the head-size cap still applies.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        total += n;
        if total > MAX_HEAD_BYTES {
            return Ok(None);
        }
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }

    Ok(Some(Request {
        method,
        path,
        query,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_req| Response::text(200, "pong"));
        router.get("/echo", |req: &Request| {
            Response::json(
                200,
                format!("{{\"q\":\"{}\"}}", req.query_param("q").unwrap_or("")),
            )
        });
        router
    }

    fn raw_request(addr: SocketAddr, head: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(head.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn get(addr: SocketAddr, target: &str) -> String {
        raw_request(
            addr,
            &format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
        )
    }

    #[test]
    fn serves_registered_route() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let reply = get(server.local_addr(), "/ping");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
        assert!(reply.ends_with("pong"), "{reply}");
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let missing = get(server.local_addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = raw_request(
            server.local_addr(),
            "POST /ping HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    }

    #[test]
    fn query_params_reach_the_handler() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let reply = get(server.local_addr(), "/echo?q=flight&x=1");
        assert!(reply.ends_with("{\"q\":\"flight\"}"), "{reply}");
    }

    #[test]
    fn malformed_request_line_is_400() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let reply = raw_request(server.local_addr(), "garbage\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }

    #[test]
    fn oversized_head_is_431() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        // Exactly MAX_HEAD_BYTES + 1 bytes total: one over the limit, yet
        // fully consumed by the server's capped reader, so the close is
        // clean (no unread bytes → no TCP RST racing the response).
        let request_line = "GET /ping HTTP/1.1\r\n";
        let pad = MAX_HEAD_BYTES + 1 - request_line.len() - "X-Pad: ".len();
        let head = format!("{request_line}X-Pad: {}", "a".repeat(pad));
        assert_eq!(head.len(), MAX_HEAD_BYTES + 1);
        let reply = raw_request(server.local_addr(), &head);
        assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let server = Server::bind("127.0.0.1:0", test_router(), 4).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..16)
            .map(|_| std::thread::spawn(move || get(addr, "/ping")))
            .collect();
        for h in handles {
            let reply = h.join().unwrap();
            assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        }
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let mut server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        assert!(get(addr, "/ping").starts_with("HTTP/1.1 200"));
        server.shutdown();
        server.shutdown(); // idempotent
                           // The listener is gone: either refused outright or accepted by the
                           // OS backlog and then closed without a response.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                let _ = s.write_all(b"GET /ping HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                let n = s.read_to_string(&mut buf).unwrap_or(0);
                assert_eq!(n, 0, "got response after shutdown: {buf}");
            }
        }
    }
}
