//! Machine-readable bench trajectory: `BENCH_<harness>.json`.
//!
//! Every figure harness feeds a [`BenchReport`] alongside its printed
//! tables and writes it out on exit, so CI leaves one JSON file per
//! harness behind (uploaded as an artifact) instead of only proving the
//! harness runs. The `bench_check` binary diffs a run against the
//! committed `bench/baseline/` snapshot and fails on large regressions —
//! a perf regression becomes a red CI job, not something discovered by
//! rerunning a figure by hand.
//!
//! Design constraints:
//!
//! * **Serde-free, network-free.** The build environment has no crates.io
//!   access, so the JSON writer and the (schema-limited) parser are
//!   hand-rolled below. The schema is flat and versioned
//!   ([`SCHEMA_VERSION`]).
//! * **Keyed by scale and SHA.** Numbers are only comparable at the same
//!   `IMP_BENCH_SCALE`; [`compare`] skips baseline files recorded at a
//!   different scale instead of producing nonsense diffs. The git SHA is
//!   informational (which commit produced the trajectory point).
//! * **Deterministic output.** Records and metrics are emitted sorted by
//!   key, so the byte output is independent of harness-internal insertion
//!   order and two runs of the same code diff cleanly.
//! * **Gated vs. trajectory metrics.** A [`Metric`] with `gated: true`
//!   is lower-is-better and regression-checked (wall-clock, heap bytes,
//!   backend round trips, recaptures). Higher-is-better numbers (memo
//!   rates, round trips *saved*, speedups) are recorded for the
//!   trajectory but never gated — their regressions show up indirectly
//!   through the costs they fail to save.
//!
//! The regression rule (see [`compare`]): a gated metric regresses when
//! `current > factor · baseline + floor(unit)`, with `factor` 2.0 by
//! default (`IMP_BENCH_GATE_FACTOR` overrides) and a small per-unit
//! absolute floor so sub-millisecond timing noise at smoke scale and
//! ±a-few-counts jitter cannot flake CI, while genuine 2× regressions on
//! anything that matters still fail.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Version tag written into every file; bump on schema changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression factor: fail when current > 2× baseline (+floor).
pub const DEFAULT_GATE_FACTOR: f64 = 2.0;

/// Measurement unit of a [`Metric`] — selects the absolute gate floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Nanoseconds of wall-clock time.
    Ns,
    /// Heap bytes.
    Bytes,
    /// Dimensionless counter (rows, round trips, recaptures, …).
    Count,
    /// Dimensionless ratio (rates, speedups).
    Ratio,
}

impl Unit {
    /// Serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Bytes => "bytes",
            Unit::Count => "count",
            Unit::Ratio => "ratio",
        }
    }

    /// Parse a serialized name.
    pub fn parse(s: &str) -> Option<Unit> {
        Some(match s {
            "ns" => Unit::Ns,
            "bytes" => Unit::Bytes,
            "count" => Unit::Count,
            "ratio" => Unit::Ratio,
            _ => return None,
        })
    }

    /// Absolute slack added on top of `factor · baseline` before a gated
    /// metric counts as regressed. Keeps smoke-scale noise (sub-ms
    /// timings, ±a few counter ticks, allocator page rounding) from
    /// flaking CI without masking real regressions at measurable sizes.
    pub fn gate_floor(self) -> f64 {
        match self {
            Unit::Ns => 5e6,       // 5 ms
            Unit::Bytes => 4096.0, // one page
            Unit::Count => 8.0,
            Unit::Ratio => 0.25,
        }
    }
}

/// One named measurement inside a [`Record`].
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, unique within its record (e.g. `imp_ns_median`).
    pub name: String,
    /// The value. Non-finite inputs are recorded as `0` (JSON has no
    /// NaN/∞ and a poisoned trajectory point is worse than a zero).
    pub value: f64,
    /// Unit, for display and the gate floor.
    pub unit: Unit,
    /// Lower-is-better and regression-checked by [`compare`].
    pub gated: bool,
}

/// One experiment data point: an (experiment, config) key plus metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Experiment family within the harness (e.g. `mixed`, `bloom`).
    pub experiment: String,
    /// Configuration label within the experiment (e.g. `1U5Q/d200`).
    pub config: String,
    /// The measurements.
    pub metrics: Vec<Metric>,
}

impl Record {
    /// New empty record for `(experiment, config)`.
    pub fn new(experiment: impl Into<String>, config: impl Into<String>) -> Record {
        Record {
            experiment: experiment.into(),
            config: config.into(),
            metrics: Vec::new(),
        }
    }

    /// Add one metric (builder-style).
    pub fn metric(
        mut self,
        name: impl Into<String>,
        value: f64,
        unit: Unit,
        gated: bool,
    ) -> Record {
        self.metrics.push(Metric {
            name: name.into(),
            value: if value.is_finite() { value } else { 0.0 },
            unit,
            gated,
        });
        self
    }

    /// Gated wall-clock metric from a [`Duration`].
    pub fn time(self, name: impl Into<String>, d: Duration) -> Record {
        self.metric(name, d.as_nanos() as f64, Unit::Ns, true)
    }

    /// Gated wall-clock metric from milliseconds.
    pub fn time_ms(self, name: impl Into<String>, ms: f64) -> Record {
        self.metric(name, ms * 1e6, Unit::Ns, true)
    }

    /// Gated heap metric.
    pub fn heap(self, name: impl Into<String>, bytes: u64) -> Record {
        self.metric(name, bytes as f64, Unit::Bytes, true)
    }

    /// Counter metric; pass `gated: true` for lower-is-better counters
    /// (round trips, recaptures), `false` for trajectory-only ones.
    pub fn count(self, name: impl Into<String>, n: u64, gated: bool) -> Record {
        self.metric(name, n as f64, Unit::Count, gated)
    }

    /// Ungated ratio metric (rates, speedups — higher is better).
    pub fn ratio(self, name: impl Into<String>, r: f64) -> Record {
        self.metric(name, r, Unit::Ratio, false)
    }

    /// Mean/median/stddev wall-clock metrics (`<prefix>_ns_{mean,median,
    /// stddev}`) from the criterion-shim statistics of a sample set; the
    /// median is gated, mean and stddev ride along ungated (they are too
    /// noisy to gate but chart the distribution).
    pub fn time_stats(self, prefix: &str, stats: &criterion::SampleStats) -> Record {
        self.metric(
            format!("{prefix}_ns_median"),
            stats.median.as_nanos() as f64,
            Unit::Ns,
            true,
        )
        .metric(
            format!("{prefix}_ns_mean"),
            stats.mean.as_nanos() as f64,
            Unit::Ns,
            false,
        )
        .metric(
            format!("{prefix}_ns_stddev"),
            stats.stddev.as_nanos() as f64,
            Unit::Ns,
            false,
        )
    }
}

/// The per-harness trajectory file: metadata + records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Harness name (`fig08_mixed`, …); names the output file.
    pub harness: String,
    /// `IMP_BENCH_SCALE` the run was recorded at.
    pub scale: f64,
    /// `IMP_BENCH_REPS` the run was recorded at.
    pub reps: usize,
    /// Git SHA of the producing tree (informational).
    pub git_sha: String,
    /// The data points.
    pub records: Vec<Record>,
}

impl BenchReport {
    /// New report for `harness`, keyed by the ambient `IMP_BENCH_SCALE` /
    /// `IMP_BENCH_REPS` and the current git SHA.
    pub fn new(harness: impl Into<String>) -> BenchReport {
        BenchReport {
            harness: harness.into(),
            scale: crate::scale(),
            reps: crate::reps(),
            git_sha: git_sha(),
            records: Vec::new(),
        }
    }

    /// Add one record.
    pub fn add(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Serialize, records sorted by `(experiment, config)` and metrics by
    /// name — output bytes are independent of insertion order.
    pub fn to_json(&self) -> String {
        let mut records = self.records.clone();
        records.sort_by(|a, b| {
            (a.experiment.as_str(), a.config.as_str())
                .cmp(&(b.experiment.as_str(), b.config.as_str()))
        });
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"harness\": {},", json_str(&self.harness));
        let _ = writeln!(out, "  \"scale\": {},", json_num(self.scale));
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"git_sha\": {},", json_str(&self.git_sha));
        out.push_str("  \"records\": [");
        for (i, rec) in records.iter().enumerate() {
            let mut metrics = rec.metrics.clone();
            metrics.sort_by(|a, b| a.name.cmp(&b.name));
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"experiment\": {},", json_str(&rec.experiment));
            let _ = writeln!(out, "      \"config\": {},", json_str(&rec.config));
            out.push_str("      \"metrics\": [");
            for (j, m) in metrics.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                let _ = write!(
                    out,
                    "        {{\"name\": {}, \"value\": {}, \"unit\": {}, \"gated\": {}}}",
                    json_str(&m.name),
                    json_num(m.value),
                    json_str(m.unit.as_str()),
                    m.gated
                );
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a report previously produced by [`BenchReport::to_json`].
    pub fn from_json(s: &str) -> Result<BenchReport, String> {
        let value = json::parse(s)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let version = json::get_num(obj, "schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let mut report = BenchReport {
            harness: json::get_str(obj, "harness")?,
            scale: json::get_num(obj, "scale")?,
            reps: json::get_num(obj, "reps")? as usize,
            git_sha: json::get_str(obj, "git_sha")?,
            records: Vec::new(),
        };
        for rec in json::get_array(obj, "records")? {
            let rec = rec.as_object().ok_or("record must be an object")?;
            let mut record = Record::new(
                json::get_str(rec, "experiment")?,
                json::get_str(rec, "config")?,
            );
            for m in json::get_array(rec, "metrics")? {
                let m = m.as_object().ok_or("metric must be an object")?;
                let unit_name = json::get_str(m, "unit")?;
                record.metrics.push(Metric {
                    name: json::get_str(m, "name")?,
                    value: json::get_num(m, "value")?,
                    unit: Unit::parse(&unit_name)
                        .ok_or_else(|| format!("unknown unit {unit_name:?}"))?,
                    gated: json::get_bool(m, "gated")?,
                });
            }
            report.records.push(record);
        }
        Ok(report)
    }

    /// File name this report writes to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.harness)
    }

    /// Write into `dir` as `BENCH_<harness>.json`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write into the directory named by `IMP_BENCH_OUT` (default `.`),
    /// creating it if needed; prints the destination. Panics on IO errors
    /// — a harness that silently loses its trajectory point defeats the
    /// purpose.
    pub fn finish(&self) {
        let dir = PathBuf::from(std::env::var("IMP_BENCH_OUT").unwrap_or_else(|_| ".".into()));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create IMP_BENCH_OUT dir {dir:?}: {e}"));
        let path = self
            .write_to(&dir)
            .unwrap_or_else(|e| panic!("cannot write {:?}: {e}", self.file_name()));
        println!(
            "\nwrote {} ({} records, scale {}, sha {})",
            path.display(),
            self.records.len(),
            self.scale,
            self.git_sha
        );
    }
}

/// One gated metric that exceeded the regression threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Harness the metric came from.
    pub harness: String,
    /// Record key.
    pub experiment: String,
    /// Record key.
    pub config: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (∞ when the baseline was 0).
    pub factor: f64,
}

/// Outcome of diffing one current report against its baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareOutcome {
    /// Gated metrics compared.
    pub compared: usize,
    /// Metrics that regressed past the threshold.
    pub regressions: Vec<Regression>,
    /// Baseline records with no counterpart in the current run.
    pub missing_records: usize,
    /// Human-readable notes (scale skips, missing metrics, …).
    pub notes: Vec<String>,
}

/// Diff `current` against `baseline`: every gated metric present in both
/// (matched by record `(experiment, config)` + metric name) regresses
/// when `current > factor · baseline + unit_floor`. Reports recorded at
/// different scales are skipped wholesale — cross-scale numbers are not
/// comparable.
pub fn compare(baseline: &BenchReport, current: &BenchReport, factor: f64) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    if (baseline.scale - current.scale).abs() > f64::EPSILON * baseline.scale.abs().max(1.0) {
        out.notes.push(format!(
            "{}: scale mismatch (baseline {}, current {}) — skipped",
            baseline.harness, baseline.scale, current.scale
        ));
        return out;
    }
    for brec in &baseline.records {
        let Some(crec) = current
            .records
            .iter()
            .find(|r| r.experiment == brec.experiment && r.config == brec.config)
        else {
            out.missing_records += 1;
            out.notes.push(format!(
                "{}: record {}/{} missing from current run",
                baseline.harness, brec.experiment, brec.config
            ));
            continue;
        };
        for bm in brec.metrics.iter().filter(|m| m.gated) {
            let Some(cm) = crec.metrics.iter().find(|m| m.name == bm.name) else {
                out.notes.push(format!(
                    "{}: metric {}/{}/{} missing from current run",
                    baseline.harness, brec.experiment, brec.config, bm.name
                ));
                continue;
            };
            out.compared += 1;
            if cm.value > factor * bm.value + bm.unit.gate_floor() {
                out.regressions.push(Regression {
                    harness: baseline.harness.clone(),
                    experiment: brec.experiment.clone(),
                    config: brec.config.clone(),
                    metric: bm.name.clone(),
                    baseline: bm.value,
                    current: cm.value,
                    factor: if bm.value > 0.0 {
                        cm.value / bm.value
                    } else {
                        f64::INFINITY
                    },
                });
            }
        }
    }
    out
}

/// One compact JSONL trajectory line for `report`: the run key (git SHA,
/// harness, scale, reps) plus every **gated** metric flattened to
/// `"experiment/config/name": value`. Appended to `bench/history.jsonl`
/// by `bench_check --history`, one line per harness per run, so the
/// gated trajectory accumulates across commits in a grep- and
/// jq-friendly shape without re-parsing full `BENCH_*.json` files.
pub fn history_line(report: &BenchReport) -> String {
    let mut entries: Vec<(String, f64)> = report
        .records
        .iter()
        .flat_map(|rec| {
            rec.metrics.iter().filter(|m| m.gated).map(|m| {
                (
                    format!("{}/{}/{}", rec.experiment, rec.config, m.name),
                    m.value,
                )
            })
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"sha\": {}, \"harness\": {}, \"scale\": {}, \"reps\": {}, \"gated\": {{",
        json_str(&report.git_sha),
        json_str(&report.harness),
        json_num(report.scale),
        report.reps
    );
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(key), json_num(*value));
    }
    out.push_str("}}");
    out
}

/// The gate factor: `IMP_BENCH_GATE_FACTOR` (default 2.0). Panics on an
/// unparseable value, same contract as [`crate::scale`].
pub fn gate_factor() -> f64 {
    match std::env::var("IMP_BENCH_GATE_FACTOR") {
        Ok(s) => {
            let f: f64 = crate::parse_env("IMP_BENCH_GATE_FACTOR", &s);
            assert!(
                f.is_finite() && f >= 1.0,
                "IMP_BENCH_GATE_FACTOR must be a finite number ≥ 1, got {s:?}"
            );
            f
        }
        Err(_) => DEFAULT_GATE_FACTOR,
    }
}

/// Current git SHA: `GITHUB_SHA` / `GIT_SHA` env when set (CI), else
/// `git rev-parse HEAD`, else `"unknown"`.
pub fn git_sha() -> String {
    for var in ["GITHUB_SHA", "GIT_SHA"] {
        if let Ok(sha) = std::env::var(var) {
            if !sha.trim().is_empty() {
                return sha.trim().to_string();
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// JSON string literal with escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: shortest round-trip decimal; non-finite clamps to 0.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    // `{}` on f64 prints the shortest representation that parses back to
    // the same bits — exactly what a round-tripping format needs.
    format!("{v}")
}

/// Minimal recursive-descent JSON parser — just enough for the schema
/// this module writes (objects, arrays, strings, numbers, booleans,
/// null). Not a general-purpose parser: surrogate-pair `\u` escapes are
/// rejected rather than combined, and numbers use Rust's f64 grammar.
///
/// Public so `bench_check` can validate the other JSON artifacts of a
/// bench run against the same grammar: `history.jsonl` trend lines
/// (`--trend`) and the `IMP_OBS=1` trace/metrics exports
/// (`--check-obs`).
pub mod json {
    use std::collections::BTreeMap;

    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (always f64).
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Array(Vec<Value>),
        /// Object (sorted map; duplicate keys: last wins).
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// Borrow as object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }
    }

    /// Fetch a string field.
    pub fn get_str(obj: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
        match obj.get(key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }

    /// Fetch a numeric field.
    pub fn get_num(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
        match obj.get(key) {
            Some(Value::Num(n)) => Ok(*n),
            other => Err(format!("field {key:?}: expected number, got {other:?}")),
        }
    }

    /// Fetch a boolean field.
    pub fn get_bool(obj: &BTreeMap<String, Value>, key: &str) -> Result<bool, String> {
        match obj.get(key) {
            Some(Value::Bool(b)) => Ok(*b),
            other => Err(format!("field {key:?}: expected bool, got {other:?}")),
        }
    }

    /// Fetch an array field.
    pub fn get_array<'a>(
        obj: &'a BTreeMap<String, Value>,
        key: &str,
    ) -> Result<&'a [Value], String> {
        match obj.get(key) {
            Some(Value::Array(a)) => Ok(a),
            other => Err(format!("field {key:?}: expected array, got {other:?}")),
        }
    }

    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(s: &str) -> Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                c as char,
                *pos,
                b.get(*pos).map(|&x| x as char)
            ))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            other => Err(format!("unexpected {other:?} at byte {pos}", pos = *pos)),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}", pos = *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid \\u{code:04x} escape"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(format!("expected , or ] in array, got {other:?}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            out.insert(key, value);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(out));
                }
                other => return Err(format!("expected , or }} in object, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_round_trip() {
        let r = BenchReport {
            harness: "t".into(),
            scale: 1.0,
            reps: 1,
            git_sha: "quote\" back\\slash\nnewline\ttab\u{1}ctl".into(),
            records: vec![Record::new("e", "c").metric("m", 1.5, Unit::Ns, true)],
        };
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn unit_floors_are_positive() {
        for u in [Unit::Ns, Unit::Bytes, Unit::Count, Unit::Ratio] {
            assert!(u.gate_floor() > 0.0);
            assert_eq!(Unit::parse(u.as_str()), Some(u));
        }
    }

    #[test]
    fn history_line_is_one_json_object_of_gated_metrics() {
        let r = BenchReport {
            harness: "fig_x".into(),
            scale: 0.01,
            reps: 1,
            git_sha: "abc123".into(),
            records: vec![Record::new("exp", "cfg")
                .metric("slow_ns", 5e6, Unit::Ns, true)
                .ratio("rate", 0.5)],
        };
        let line = history_line(&r);
        assert!(!line.contains('\n'), "must be a single JSONL line");
        // The line is well-formed JSON and holds only the gated metric.
        json::parse(&line).expect("history line must parse as JSON");
        assert!(line.contains("\"sha\": \"abc123\""));
        assert!(line.contains("\"exp/cfg/slow_ns\": 5000000"));
        assert!(!line.contains("rate"), "ungated metrics excluded");
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let rec = Record::new("e", "c").metric("m", f64::INFINITY, Unit::Ratio, false);
        assert_eq!(rec.metrics[0].value, 0.0);
        assert_eq!(json_num(f64::NAN), "0");
    }
}
