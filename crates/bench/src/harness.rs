//! Shared measurement utilities for the figure harnesses.

use imp_core::maintain::SketchMaintainer;
use imp_core::obs::{HistSnapshot, LatencyHistogram, Obs, ObsConfig};
use imp_core::ops::OpConfig;
use imp_core::MaintMetrics;
use imp_data::workload::WorkloadOp;
use imp_engine::Database;
use imp_sketch::{capture, PartitionSet, RangePartition};
use imp_sql::LogicalPlan;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Parse one benchmark env value, panicking with a clear message on
/// malformed input. A typo'd `IMP_BENCH_SCALE` in CI must fail the job
/// loudly, not silently fall back to a full-scale (or smoke-scale) run.
pub fn parse_env<T: std::str::FromStr>(name: &str, raw: &str) -> T {
    raw.trim().parse().unwrap_or_else(|_| {
        panic!(
            "{name} must parse as {}, got {raw:?} — unset it for the default",
            std::any::type_name::<T>()
        )
    })
}

/// Global size multiplier from `IMP_BENCH_SCALE` (default 1.0). Panics on
/// unparseable or non-positive values.
pub fn scale() -> f64 {
    match std::env::var("IMP_BENCH_SCALE") {
        Ok(s) => {
            let v: f64 = parse_env("IMP_BENCH_SCALE", &s);
            assert!(
                v.is_finite() && v > 0.0,
                "IMP_BENCH_SCALE must be a positive finite number, got {s:?}"
            );
            v
        }
        Err(_) => 1.0,
    }
}

/// `n` scaled by [`scale`], at least `min`.
pub fn scaled(n: usize, min: usize) -> usize {
    ((n as f64 * scale()) as usize).max(min)
}

/// Repetitions for timed measurements (`IMP_BENCH_REPS`, default 3;
/// the paper uses ≥10 — raise for tighter medians). Panics on
/// unparseable or zero values.
pub fn reps() -> usize {
    match std::env::var("IMP_BENCH_REPS") {
        Ok(s) => {
            let v: usize = parse_env("IMP_BENCH_REPS", &s);
            assert!(v >= 1, "IMP_BENCH_REPS must be at least 1, got {s:?}");
            v
        }
        Err(_) => 3,
    }
}

/// Columnar-kernel crossover from `IMP_COLUMNAR_MIN` (default
/// [`imp_core::ops::DEFAULT_COLUMNAR_MIN`]): the batch size at which
/// delta normalization, annotation, and aggregation switch to their
/// columnar kernels. Harnesses thread it through [`OpConfig`] /
/// [`imp_core::ImpConfig`], so a CI run can probe both paths. Panics on
/// unparseable values.
pub fn columnar_min() -> usize {
    match std::env::var("IMP_COLUMNAR_MIN") {
        Ok(s) => parse_env("IMP_COLUMNAR_MIN", &s),
        Err(_) => imp_core::ops::DEFAULT_COLUMNAR_MIN,
    }
}

/// The harnesses' default operator configuration: [`OpConfig::default`]
/// with the [`columnar_min`] env override applied.
pub fn bench_op_config() -> OpConfig {
    OpConfig {
        columnar_min: columnar_min(),
        ..OpConfig::default()
    }
}

/// Observability switch for the harnesses (`IMP_OBS`, default off): when
/// on, harnesses run with full `imp_core::obs` instrumentation — latency
/// histograms, pipeline tracing, scheduler counters — and write the
/// trace/metrics artifacts next to their `BENCH_*.json` (see
/// [`write_obs_artifacts`]; `bench_check --check-obs` validates them in
/// CI). Panics on anything but `0`/`1`/`true`/`false`.
pub fn obs_enabled() -> bool {
    match std::env::var("IMP_OBS") {
        Ok(s) => match s.trim() {
            "" | "0" | "false" => false,
            "1" | "true" => true,
            other => panic!("IMP_OBS must be one of 0/1/true/false, got {other:?}"),
        },
        Err(_) => false,
    }
}

/// The process-wide bench observability hub: `Some` (fully enabled,
/// histograms + tracing) when [`obs_enabled`], `None` otherwise. The
/// maintainer-level harness paths ([`measure_inc_vs_full`]) record here;
/// middleware-level harnesses use their own per-`Imp` hub instead.
pub fn bench_obs() -> Option<&'static Arc<Obs>> {
    static OBS: OnceLock<Option<Arc<Obs>>> = OnceLock::new();
    OBS.get_or_init(|| obs_enabled().then(|| Obs::new(&ObsConfig::on())))
        .as_ref()
}

/// Write one hub's observability artifacts into `IMP_BENCH_OUT` (default
/// `.`, the same convention as `BenchReport::finish`):
/// `TRACE_<harness>.json` (Chrome trace-event JSON, loadable in
/// `chrome://tracing`), `METRICS_<harness>.json` (deterministic registry
/// snapshot), and `METRICS_<harness>.prom` (Prometheus text exposition).
pub fn write_obs_artifacts_from(harness: &str, obs: &Obs) {
    let dir =
        std::path::PathBuf::from(std::env::var("IMP_BENCH_OUT").unwrap_or_else(|_| ".".into()));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create IMP_BENCH_OUT dir {dir:?}: {e}"));
    for (name, contents) in [
        (format!("TRACE_{harness}.json"), obs.trace_chrome_json()),
        (format!("METRICS_{harness}.json"), obs.metrics_json()),
        (format!("METRICS_{harness}.prom"), obs.metrics_text()),
    ] {
        let path = dir.join(&name);
        std::fs::write(&path, contents)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}

/// Write the [`bench_obs`] hub's artifacts (no-op with `IMP_OBS` off).
/// Harnesses that measure through [`measure_inc_vs_full`] call this once
/// after `BenchReport::finish`.
pub fn write_obs_artifacts(harness: &str) {
    if let Some(obs) = bench_obs() {
        write_obs_artifacts_from(harness, obs);
    }
}

/// Median of a set of durations, in milliseconds.
pub fn median_ms(mut xs: Vec<Duration>) -> f64 {
    xs.sort();
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2].as_secs_f64() * 1e3
}

/// Time one closure invocation.
pub fn time_once<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Print an aligned table: header row + data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}ms")
    } else if v >= 1.0 {
        format!("{v:.2}ms")
    } else {
        format!("{:.1}us", v * 1e3)
    }
}

/// Format a byte count compactly.
pub fn bytes_h(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.1}MB", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}KB", v as f64 / 1e3)
    } else {
        format!("{v}B")
    }
}

/// Format the union-memoization rate of a run's pool activity: the share
/// of annotation unions answered without computing (memo/fast-path hits).
pub fn memo_rate(m: &MaintMetrics) -> String {
    let total = m.pool_unions_computed + m.pool_union_memo_hits;
    if total == 0 {
        "-".into()
    } else {
        format!(
            "{:.0}% of {}",
            100.0 * m.pool_union_memo_hits as f64 / total as f64,
            total
        )
    }
}

/// Build a partition set with one equi-depth partition.
pub fn pset_for(
    db: &Database,
    table: &str,
    attribute: &str,
    fragments: usize,
) -> Arc<PartitionSet> {
    Arc::new(
        PartitionSet::new(vec![RangePartition::equi_depth(
            db, table, attribute, fragments,
        )
        .unwrap()])
        .unwrap(),
    )
}

/// The standard §8.2/§8.3 experiment: capture a sketch, then for each
/// update batch measure incremental maintenance; also measure one full
/// maintenance (re-capture) per repetition. Returns `(imp_ms, fm_ms)`
/// medians per maintenance run.
pub struct IncVsFull {
    /// Median incremental maintenance time per batch (ms).
    pub imp_ms: f64,
    /// Median full maintenance (capture query) time (ms).
    pub fm_ms: f64,
    /// Number of recaptures forced by bounded state.
    pub recaptures: usize,
    /// Accumulated maintenance metrics across all batches (delta heap
    /// accounting, pool union/intern counters, …).
    pub metrics: MaintMetrics,
    /// Full per-batch statistics of the incremental runs (criterion-shim
    /// mean/median/stddev/min/max) for the `BENCH_*.json` trajectory.
    pub imp_stats: criterion::SampleStats,
    /// Full statistics of the full-maintenance (capture) runs.
    pub fm_stats: criterion::SampleStats,
    /// Per-batch incremental maintain latencies through the obs
    /// log-bucketed histogram: tail quantiles (`p50/p95/p99`) for the
    /// trajectory, where the criterion-shim stats only carry the median.
    pub imp_hist: HistSnapshot,
}

/// Run the IMP-vs-FM measurement for a prepared database and plan.
pub fn measure_inc_vs_full(
    db: &mut Database,
    plan: &LogicalPlan,
    pset: &Arc<PartitionSet>,
    updates: &[WorkloadOp],
    op_config: OpConfig,
) -> IncVsFull {
    let (mut maintainer, _) =
        SketchMaintainer::capture(plan, db, Arc::clone(pset), op_config, true).unwrap();
    // Under IMP_OBS the measured maintains record into the bench hub:
    // attaching the tracer here makes the operator-level spans
    // (`join_delta`, `nary_probe`, `aggregate_delta`, …) land in its
    // per-thread ring for the TRACE artifact.
    let obs = bench_obs();
    let _attach = obs.map(|o| o.attach());
    let hist = LatencyHistogram::new();
    let mut imp_times = Vec::new();
    let mut recaptures = 0usize;
    let mut metrics = MaintMetrics::default();
    for op in updates {
        let WorkloadOp::Update { sql, rows } = op else {
            continue;
        };
        db.execute_sql(sql).unwrap();
        let (t, report) = time_once(|| maintainer.maintain(db).unwrap());
        if report.recaptured {
            recaptures += 1;
        }
        let nanos = t.as_nanos() as u64;
        hist.record(nanos);
        if let Some(o) = obs {
            o.maintain_observed("inc_vs_full", nanos, *rows as u64, report.recaptured);
        }
        metrics.absorb(&report.metrics);
        imp_times.push(t);
    }
    // FM: rerun the capture query on the final state.
    let mut fm_times = Vec::new();
    for _ in 0..reps() {
        let (t, _) = time_once(|| capture(plan, db, pset).unwrap());
        fm_times.push(t);
    }
    IncVsFull {
        imp_ms: median_ms(imp_times.clone()),
        fm_ms: median_ms(fm_times.clone()),
        recaptures,
        metrics,
        imp_stats: criterion::sample_stats(&imp_times),
        fm_stats: criterion::sample_stats(&fm_times),
        imp_hist: hist.snapshot(),
    }
}

/// Apply a stream of operations to a raw database (the NS baseline),
/// returning the total wall-clock time.
pub fn run_ns(db: &mut Database, ops: &[WorkloadOp]) -> Duration {
    let t = Instant::now();
    for op in ops {
        match op {
            WorkloadOp::Query(sql) => {
                db.query(sql).unwrap();
            }
            WorkloadOp::Update { sql, .. } => {
                db.execute_sql(sql).unwrap();
            }
        }
    }
    t.elapsed()
}

/// Run a stream through the IMP middleware, returning total time.
pub fn run_imp(imp: &mut imp_core::Imp, ops: &[WorkloadOp]) -> Duration {
    let t = Instant::now();
    for op in ops {
        match op {
            WorkloadOp::Query(sql) => {
                imp.execute(sql).unwrap();
            }
            WorkloadOp::Update { sql, .. } => {
                imp.execute(sql).unwrap();
            }
        }
    }
    t.elapsed()
}

/// Outcome of one [`run_fm`] stream: wall-clock plus the execution
/// counters the regression tests compare against the NS path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmRun {
    /// Total wall-clock time for the stream.
    pub total: Duration,
    /// SELECTs actually answered (must equal the stream's query count —
    /// the FM baseline serves every query, it just pays capture for it).
    pub queries_executed: usize,
    /// First-occurrence sketch captures.
    pub captures: usize,
    /// Stale re-captures (the "full maintenance" the baseline is named
    /// for).
    pub recaptures: usize,
}

/// The FM baseline of §8.1: sketches are used for queries but *fully*
/// re-captured whenever stale.
pub fn run_fm(db: &mut Database, ops: &[WorkloadOp], pset_table: (&str, &str, usize)) -> FmRun {
    use imp_sql::{QueryTemplate, Statement};
    let mut store: std::collections::HashMap<
        QueryTemplate,
        (LogicalPlan, Arc<PartitionSet>, imp_sketch::SketchSet, u64),
    > = Default::default();
    let mut queries_executed = 0usize;
    let mut captures = 0usize;
    let mut recaptures = 0usize;
    let t = Instant::now();
    for op in ops {
        match op {
            WorkloadOp::Update { sql, .. } => {
                db.execute_sql(sql).unwrap();
            }
            WorkloadOp::Query(sql) => {
                let Statement::Select(sel) = imp_sql::parse_one(sql).unwrap() else {
                    panic!()
                };
                let template = QueryTemplate::of(&sel);
                let plan = db.plan_sql(sql).unwrap();
                match store.get_mut(&template) {
                    Some((splan, pset, sketch, version)) if *splan == plan => {
                        if *version != db.version() {
                            // Stale: full maintenance = rerun capture.
                            let cap = capture(splan, db, pset).unwrap();
                            *sketch = cap.sketch;
                            *version = db.version();
                            recaptures += 1;
                        }
                        let rewritten = imp_sketch::apply_sketch_filter(&plan, sketch).unwrap();
                        db.execute_plan(&rewritten).unwrap();
                        queries_executed += 1;
                    }
                    _ => {
                        let (table, attr, frags) = pset_table;
                        let pset = pset_for(db, table, attr, frags);
                        let cap = capture(&plan, db, &pset).unwrap();
                        // The first occurrence must still *answer* the
                        // query — capture only builds the sketch. Skipping
                        // this execution undercounted FM by one query per
                        // template (and let FM "win" unfairly vs NS/IMP,
                        // which both answer every query).
                        let rewritten =
                            imp_sketch::apply_sketch_filter(&plan, &cap.sketch).unwrap();
                        db.execute_plan(&rewritten).unwrap();
                        queries_executed += 1;
                        captures += 1;
                        store.insert(template, (plan, pset, cap.sketch, db.version()));
                    }
                }
            }
        }
    }
    FmRun {
        total: t.elapsed(),
        queries_executed,
        captures,
        recaptures,
    }
}
