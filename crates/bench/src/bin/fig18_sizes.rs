//! Figure 18 (table): in-memory sizes of sketches and ranges.
//!
//! "We encode each sketch as a bitvector … for n ranges, we record n+1
//! values in the list" (§8.6.2). This harness prints the same two rows as
//! the paper's table for n ∈ {100 … 100000}.

use imp_bench::{print_table, BenchReport, Record};
use imp_sketch::RangePartition;
use imp_storage::{BitVec, Value};

fn main() {
    println!("Fig. 18 — memory of sketches and ranges");
    let ns = [100usize, 200, 500, 1000, 2000, 5000, 10000, 20000, 100000];
    let mut report = BenchReport::new("fig18_sizes");
    let mut sketch_row = vec!["sketch (MB)".to_string()];
    let mut range_row = vec!["ranges (MB)".to_string()];
    for &n in &ns {
        let bits = BitVec::new(n);
        sketch_row.push(format!("{:.6}", bits.heap_size() as f64 / 1e6));
        let cuts: Vec<Value> = (1..n as i64).map(Value::Int).collect();
        let part = RangePartition::new("t", "a", 0, cuts).unwrap();
        range_row.push(format!("{:.6}", part.heap_size() as f64 / 1e6));
        report.add(
            Record::new("sizes", format!("n{n}"))
                .heap("sketch_bytes", bits.heap_size() as u64)
                .heap("range_bytes", part.heap_size() as u64),
        );
    }
    let mut header = vec!["n"];
    let labels: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    header.extend(labels.iter().map(String::as_str));
    print_table(
        "Fig. 18: sizes of sketches and ranges in memory",
        &header,
        &[sketch_row, range_row],
    );
    report.finish();
}
