//! Advisor experiment (`imp_core::advisor`): budgeted sketch selection
//! vs. keeping (and maintaining) everything.
//!
//! Six synthetic tables each capture one selective sketch template; only
//! two of them stay *hot* (re-queried every round) while every table
//! keeps receiving inserts. Three stores run the identical stream:
//!
//! * **all** — keep-everything baseline (no budget, every sketch
//!   maintained forever);
//! * **adv** — in-line store with `sketch_memory_budget` set to a
//!   fraction of the keep-everything heap;
//! * **advP** — the same budget on a 2-worker sharded store (the
//!   autopilot's gather/apply steps travel as sched control barriers).
//!
//! Reported per round: store heap (all vs. budgeted), the advised keep-set
//! size, cumulative lifecycle transitions, and the budgeted stores' USE
//! hit modes. A cold template is re-heated near the end to show the
//! promotion path. The harness **panics** when the budgeted advisor never
//! demotes anything, when a budgeted store's heap exceeds the budget
//! after a pass, or when any advised store's query answers diverge from
//! the keep-everything store (advisor decisions may change cost, never
//! answers).

use imp_bench::*;
use imp_core::advisor::Lifecycle;
use imp_core::middleware::{Imp, ImpConfig, ImpResponse, QueryMode};
use imp_data::queries;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;

const TABLES: usize = 6;
const HOT: usize = 2;
const ROUNDS: usize = 6;
const GROUPS: i64 = 200;

fn table_names() -> Vec<String> {
    (0..TABLES).map(|i| format!("s{i}")).collect()
}

/// One selective template per table: `HAVING avg(c) < 60` keeps roughly a
/// quarter of the group domain (c ≈ 1.2·a), so the sketch skips ~3/4 of
/// the table — a real benefit signal for the cost model.
fn query_for(table: &str) -> String {
    queries::q_groups(table, 60)
}

fn build_imp(budget: Option<usize>, workers: usize, rows: usize) -> Imp {
    let mut db = Database::new();
    for name in table_names() {
        load(
            &mut db,
            &SyntheticConfig {
                name,
                rows,
                groups: GROUPS,
                ..Default::default()
            },
        )
        .unwrap();
    }
    Imp::new(
        db,
        ImpConfig {
            fragments: 50,
            columnar_min: columnar_min(),
            sketch_memory_budget: budget,
            sched_workers: workers,
            ..Default::default()
        },
    )
}

/// USE hit-mode counters of one store's query stream.
#[derive(Default)]
struct Hits {
    captured: usize,
    fresh: usize,
    maintained: usize,
}

impl Hits {
    fn run(&mut self, imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
        let ImpResponse::Rows { result, mode } = imp.execute(sql).unwrap() else {
            panic!("expected rows for {sql}")
        };
        match mode {
            QueryMode::Captured => self.captured += 1,
            QueryMode::UsedFresh => self.fresh += 1,
            QueryMode::Maintained(_) => self.maintained += 1,
            QueryMode::NoSketch => panic!("workload queries must be sketchable"),
        }
        result.canonical()
    }

    fn label(&self) -> String {
        format!(
            "{} captured / {} fresh / {} maintained",
            self.captured, self.fresh, self.maintained
        )
    }
}

fn lifecycle_counts(imp: &Imp) -> (usize, usize, usize) {
    let mut counts = (0usize, 0usize, 0usize);
    for s in imp.describe_sketches() {
        match s.lifecycle {
            Lifecycle::Maintained => counts.0 += 1,
            Lifecycle::Lazy => counts.1 += 1,
            Lifecycle::Evicted => counts.2 += 1,
        }
    }
    counts
}

fn main() {
    let rows = scaled(20_000, 400);
    let delta = scaled(1_000, 20);

    // Keep-everything heap for this workload → the budget baseline.
    let keep_heap = {
        let mut probe = build_imp(None, 0, rows);
        for name in table_names() {
            probe.execute(&query_for(&name)).unwrap();
        }
        probe.store_heap_size()
    };
    let budget = keep_heap * 35 / 100;

    let mut all = build_imp(None, 0, rows);
    let mut adv = build_imp(Some(budget), 0, rows);
    let mut advp = build_imp(Some(budget), 2, rows);
    let (mut h_all, mut h_adv, mut h_advp) = (Hits::default(), Hits::default(), Hits::default());
    for name in table_names() {
        let q = query_for(&name);
        let a = h_all.run(&mut all, &q);
        let b = h_adv.run(&mut adv, &q);
        let c = h_advp.run(&mut advp, &q);
        assert_eq!(a, b, "capture diverged (inline) for {q}");
        assert_eq!(a, c, "capture diverged (sharded) for {q}");
    }

    // The identical per-round insert stream for every store.
    let updates: Vec<Vec<String>> = (0..ROUNDS)
        .map(|round| {
            table_names()
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let ops = insert_stream(name, ROUNDS, delta, GROUPS, rows * 4, 11 + i as u64);
                    let WorkloadOp::Update { sql, .. } = ops[round].clone() else {
                        unreachable!()
                    };
                    sql
                })
                .collect()
        })
        .collect();

    let mut report = BenchReport::new("fig_advisor");
    let mut table_rows = Vec::new();
    let mut demotions = 0usize;
    let mut promotions = 0usize;
    for (round, batch) in updates.iter().enumerate() {
        for sql in batch {
            all.execute(sql).unwrap();
            adv.execute(sql).unwrap();
            advp.execute(sql).unwrap();
        }
        // Hot templates every round; in the final rounds the workload
        // shifts entirely onto a previously cold template — the
        // promotion path (the old hot set cools off and is displaced).
        let queried: Vec<String> = if round >= ROUNDS - 2 {
            vec![query_for(&format!("s{}", TABLES - 1)); 2]
        } else {
            (0..HOT).map(|i| query_for(&format!("s{i}"))).collect()
        };
        for q in &queried {
            for _ in 0..2 {
                let a = h_all.run(&mut all, q);
                let b = h_adv.run(&mut adv, q);
                let c = h_advp.run(&mut advp, q);
                assert_eq!(
                    a, b,
                    "inline advised store diverged at round {round} for {q}"
                );
                assert_eq!(
                    a, c,
                    "sharded advised store diverged at round {round} for {q}"
                );
            }
        }

        all.maintain_all_stale().unwrap();
        adv.maintain_all_stale().unwrap();
        advp.maintain_all_stale().unwrap();
        let ra = adv.advise().unwrap();
        let rp = advp.advise().unwrap();
        demotions += ra.outcome.demoted_lazy + ra.outcome.evicted + ra.outcome.dropped;
        demotions += rp.outcome.demoted_lazy + rp.outcome.evicted + rp.outcome.dropped;
        promotions += ra.outcome.promoted + rp.outcome.promoted;
        let (heap_all, heap_adv, heap_advp) = (
            all.store_heap_size(),
            adv.store_heap_size(),
            advp.store_heap_size(),
        );
        assert!(
            heap_adv <= budget,
            "inline advised heap {heap_adv} > budget {budget} after round {round} ({ra:?})"
        );
        assert!(
            heap_advp <= budget,
            "sharded advised heap {heap_advp} > budget {budget} after round {round} ({rp:?})"
        );
        let (m, l, e) = lifecycle_counts(&adv);
        report.add(
            Record::new("advisor", format!("round{round}"))
                .heap("heap_all", heap_all as u64)
                .heap("heap_adv", heap_adv as u64)
                .heap("heap_advp", heap_advp as u64)
                .count("kept", ra.kept as u64, false)
                .count("maintained", m as u64, false)
                .count("lazy", l as u64, false)
                .count("evicted", e as u64, false),
        );
        table_rows.push(vec![
            round.to_string(),
            bytes_h(heap_all as u64),
            bytes_h(heap_adv as u64),
            bytes_h(heap_advp as u64),
            ra.kept.to_string(),
            format!("{m}/{l}/{e}"),
            adv.sketch_count().to_string(),
            ra.outcome.dropped.to_string(),
            ra.outcome.promoted.to_string(),
        ]);
    }

    print_table(
        &format!(
            "advisor: {TABLES} tables ({HOT} hot), {ROUNDS} rounds x {delta} rows/table, \
             budget {} = 35% of keep-everything {}",
            bytes_h(budget as u64),
            bytes_h(keep_heap as u64)
        ),
        &[
            "round",
            "heap all",
            "heap adv",
            "heap advP",
            "kept",
            "m/l/e",
            "stored",
            "dropped",
            "promoted",
        ],
        &table_rows,
    );

    // Sketch selectivity behind the skip estimates: the marked fraction
    // of each template's fragment space on the keep-everything store.
    let selectivities: Vec<f64> = table_names()
        .iter()
        .filter_map(|name| {
            let imp_sql::Statement::Select(sel) = imp_sql::parse_one(&query_for(name)).ok()? else {
                return None;
            };
            let entry = all.sketch_entry(&imp_sql::QueryTemplate::of(&sel))?;
            Some(entry.maintainer.sketch().selectivity())
        })
        .collect();
    let mean_sel = selectivities.iter().sum::<f64>() / selectivities.len().max(1) as f64;
    println!(
        "\nmean sketch selectivity {:.0}% (marked fragment fraction; skip estimate ≈ 1 − this)",
        mean_sel * 100.0
    );
    assert!(
        mean_sel < 0.9,
        "workload templates must be selective for the benefit signal to mean anything"
    );

    println!("\nhit modes  all:  {}", h_all.label());
    println!("hit modes  adv:  {}", h_adv.label());
    println!("hit modes  advP: {}", h_advp.label());

    assert!(
        demotions > 0,
        "budgeted advisor never demoted anything (budget {budget}, keep-everything {keep_heap})"
    );
    println!(
        "\n{demotions} demotions, {promotions} promotions; all advised answers identical to the \
         keep-everything store ✓"
    );
    report.add(
        Record::new("advisor", "totals".to_string())
            .count("demotions", demotions as u64, false)
            .count("promotions", promotions as u64, false)
            .ratio("mean_selectivity", mean_sel),
    );
    report.finish();
}
