//! Scheduler scale-out experiment (`imp_core::sched`).
//!
//! A multi-query workload — two sketch templates per table over K
//! synthetic tables — takes the same routed update stream through shard
//! pools of 1, 2, and 4 workers (plus the sequential in-line store as
//! ground truth). Shards are paused while the updates are routed, so
//! every queue fills deterministically; the timed section is
//! resume → drain, i.e. pure maintenance.
//!
//! Reported per pool size: drain wall-clock, per-maintain latency
//! percentiles (p50/p95/p99 from the `imp_core::obs` histograms, which
//! run in metrics-only mode here and fully — spans included — under
//! `IMP_OBS=1`), maintenance runs, routed / fanned-out / coalesced
//! batches, backpressure stalls, and the maximum per-shard queue depth. The harness **panics** when coalescing never
//! fires, when the parallel speedup line cannot be computed, or when any
//! pool's final sketch states differ from the sequential store's
//! (byte-identical results are the scheduler's contract).

use criterion::Throughput;
use imp_bench::*;
use imp_core::middleware::{Imp, ImpConfig};
use imp_core::ObsConfig;
use imp_data::queries;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use std::time::Instant;

const TABLES: usize = 6;
const ROUNDS: usize = 4;

fn table_names() -> Vec<String> {
    (0..TABLES).map(|i| format!("s{i}")).collect()
}

fn build_imp(workers: usize, rows: usize, groups: i64) -> Imp {
    let mut db = Database::new();
    for name in table_names() {
        load(
            &mut db,
            &SyntheticConfig {
                name,
                rows,
                groups,
                ..Default::default()
            },
        )
        .unwrap();
    }
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 50,
            columnar_min: columnar_min(),
            sched_workers: workers,
            // A tiny staging queue: paused-phase routing overflows onto
            // the inline-ingest fallback every few updates, so inboxes
            // fill (and coalesce) deterministically while the workers
            // are parked — the queue-depth and coalescing observations
            // below need batches in inboxes, not names in staging.
            ingest_queue_cap: 4,
            // Maintain-latency histograms are always on here (they feed
            // the ungated p50/p95/p99 trajectory metrics below); full
            // tracing only under IMP_OBS=1.
            obs: if obs_enabled() {
                ObsConfig::on()
            } else {
                ObsConfig::metrics_only()
            },
            ..Default::default()
        },
    );
    // Two templates per table (structurally different — same structure
    // with different constants would template-match and reuse instead of
    // capturing): 2·K sketches spread over the shards by template hash;
    // tables whose two templates land on different shards exercise
    // fan-out > 1.
    for name in table_names() {
        imp.execute(&queries::q_groups(&name, 1_600)).unwrap();
        imp.execute(&queries::q_having(&name, 3)).unwrap();
    }
    assert_eq!(imp.sketch_count(), 2 * TABLES, "every query must capture");
    imp
}

fn main() {
    let rows = scaled(30_000, 500);
    let groups = 200i64;
    let delta = scaled(2_000, 25);

    // The identical update stream for every configuration: ROUNDS
    // interleaved insert batches per table.
    let updates: Vec<Vec<String>> = (0..ROUNDS)
        .map(|round| {
            table_names()
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let ops = insert_stream(name, ROUNDS, delta, groups, rows * 4, 7 + i as u64);
                    let WorkloadOp::Update { sql, .. } = ops[round].clone() else {
                        unreachable!()
                    };
                    sql
                })
                .collect()
        })
        .collect();

    // Sequential ground truth.
    let mut seq = build_imp(0, rows, groups);
    for round in &updates {
        for sql in round {
            seq.execute(sql).unwrap();
        }
    }
    let (seq_time, _) = time_once(|| seq.maintain_all_stale().unwrap());
    let truth = seq.sketch_states();

    let mut report = BenchReport::new("fig_sched");
    let seq_maint = seq
        .obs()
        .maintain_latency()
        .expect("seq store maintained with metrics on");
    report.add(
        Record::new("sched", "seq".to_string())
            .time("drain", seq_time)
            .metric("maintain_ns_p50", seq_maint.p50() as f64, Unit::Ns, false)
            .metric("maintain_ns_p95", seq_maint.p95() as f64, Unit::Ns, false)
            .metric("maintain_ns_p99", seq_maint.p99() as f64, Unit::Ns, false),
    );
    let mut rows_out = Vec::new();
    let mut drain_ms = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut imp = build_imp(workers, rows, groups);
        let paused = imp.scheduler().unwrap().pause();
        for round in &updates {
            for sql in round {
                imp.execute(sql).unwrap();
            }
        }
        let queued = imp.scheduler().unwrap().stats();
        let max_depth = queued
            .per_shard
            .iter()
            .map(|s| s.max_depth)
            .max()
            .unwrap_or(0);
        let t0 = Instant::now();
        paused.resume();
        imp.scheduler().unwrap().drain();
        let drained = t0.elapsed();
        let stats = imp.scheduler().unwrap().stats();

        assert!(
            stats.coalesced_batches > 0,
            "coalescing never fired with {workers} workers: {stats:?}"
        );
        assert_eq!(
            imp.sketch_states(),
            truth,
            "{workers}-worker pool diverged from the sequential store"
        );

        // Ingested rows per wall-clock second of drain, through the
        // criterion-shim throughput helper (never gated — higher is
        // better; the gated `drain` time catches regressions).
        let total_rows = (ROUNDS * TABLES * delta) as u64;
        let rows_per_sec = criterion::sample_stats(&[drained])
            .throughput_per_sec(Throughput::Elements(total_rows))
            .unwrap_or(0.0);

        // Per-maintain latency tail across every shard of this pool,
        // from the unified obs registry (trajectory-only — the gated
        // `drain` wall clock catches regressions).
        let maint = imp
            .obs()
            .maintain_latency()
            .expect("drained pool recorded maintain latencies");
        if obs_enabled() && workers == 4 {
            // Full-instrumentation run: export the largest pool's
            // trace/metrics artifacts while its hub is still live.
            write_obs_artifacts_from("fig_sched", imp.obs());
        }

        report.add(
            Record::new("sched", format!("w{workers}"))
                .time("drain", drained)
                .ratio("rows_per_sec", rows_per_sec)
                .metric("maintain_ns_p50", maint.p50() as f64, Unit::Ns, false)
                .metric("maintain_ns_p95", maint.p95() as f64, Unit::Ns, false)
                .metric("maintain_ns_p99", maint.p99() as f64, Unit::Ns, false)
                .count("maintain_runs", stats.maintain_runs, true)
                .count("routed_batches", stats.routed_batches, true)
                .count("fanout_messages", stats.fanout_messages, true)
                .count("coalesced_batches", stats.coalesced_batches, false)
                .count("backpressure_stalls", stats.backpressure_stalls, false)
                .count("staged_updates", stats.staged_updates, false)
                .count("steals", stats.steals, false)
                .count("max_queue_depth", max_depth, false),
        );
        drain_ms.push(drained.as_secs_f64() * 1e3);
        rows_out.push(vec![
            workers.to_string(),
            ms(drained.as_secs_f64() * 1e3),
            stats.maintain_runs.to_string(),
            stats.routed_batches.to_string(),
            stats.fanout_messages.to_string(),
            stats.coalesced_batches.to_string(),
            stats.backpressure_stalls.to_string(),
            stats.steals.to_string(),
            max_depth.to_string(),
        ]);
    }

    print_table(
        &format!(
            "sched: {TABLES} tables x 2 sketches, {ROUNDS} rounds x {delta} rows/table \
             (seq maintain_all_stale {})",
            ms(seq_time.as_secs_f64() * 1e3)
        ),
        &[
            "workers",
            "drain",
            "runs",
            "routed",
            "fanout",
            "coalesced",
            "stalls",
            "steals",
            "max q",
        ],
        &rows_out,
    );

    let speedup2 = drain_ms[0] / drain_ms[1].max(1e-9);
    let speedup4 = drain_ms[0] / drain_ms[2].max(1e-9);
    assert!(speedup2.is_finite() && speedup4.is_finite());
    report.add(
        Record::new("sched", "speedup".to_string())
            .ratio("w2_over_w1", speedup2)
            .ratio("w4_over_w1", speedup4),
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nparallel speedup over 1 worker: x{speedup2:.2} (2 workers), x{speedup4:.2} (4 workers) \
         on {cores} core(s){}",
        if cores < 2 {
            " — single-core host, workers time-slice (speedup needs ≥2 cores)"
        } else {
            ""
        }
    );
    println!("all pools byte-identical to the sequential store ✓");
    report.finish();
}
