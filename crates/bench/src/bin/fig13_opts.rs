//! Figure 13: the §7.2 optimizations.
//!
//! * `selpd` — selection push-down for deltas (13a/13c): delta fixed at
//!   2.5% of the table, fraction of delta rows passing the WHERE clause
//!   varied 2%→100%; with vs without push-down.
//! * `bloom` — bloom filters for joins (13b/13d): join selectivity ×
//!   delta size, with vs without bloom filters.
//! * `index` — delta-maintained join-side indexes: round trips, rows
//!   scanned, and maintenance time with vs without the `Q ⋈ Δ` index.
//!   Self-verifying: with the index on, steady-state batches must report
//!   zero backend round trips and a positive avoided count, otherwise the
//!   harness panics (the CI bench-smoke job turns that into a failure).
//! * `space` — top-l state buffers (13e/13f): Q_space (TPC-H Q10) state
//!   memory as a function of the buffer bound l.

use imp_bench::*;
use imp_core::maintain::SketchMaintainer;
use imp_core::ops::OpConfig;
use imp_core::MaintMetrics;
use imp_data::queries;
use imp_data::synthetic::{load, load_join_helper, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use std::sync::Arc;

fn exp_selpd(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let groups = 1_000i64;
    let delta = (rows as f64 * 0.025) as usize; // 2.5% of the table
    let b_threshold = 1_000i64;
    let mut out = Vec::new();
    for pass_pct in [2usize, 10, 25, 50, 75, 100] {
        for pushdown in [true, false] {
            let mut db = Database::new();
            load(
                &mut db,
                &SyntheticConfig {
                    name: "t1gb1000g".into(),
                    rows,
                    groups,
                    ..Default::default()
                },
            )
            .unwrap();
            let sql = queries::q_selpd("t1gb1000g", b_threshold);
            let plan = db.plan_sql(&sql).unwrap();
            let pset = pset_for(&db, "t1gb1000g", "a", 100);
            let (mut m, _) = SketchMaintainer::capture(
                &plan,
                &db,
                Arc::clone(&pset),
                bench_op_config(),
                pushdown,
            )
            .unwrap();
            // Delta where `pass_pct`% of rows satisfy b < threshold.
            let passing = delta * pass_pct / 100;
            let mut values = Vec::with_capacity(delta);
            for i in 0..delta {
                let id = rows * 4 + i;
                let b = if i < passing {
                    b_threshold - 1 - (i as i64 % 500)
                } else {
                    b_threshold + 1 + (i as i64 % 500)
                };
                let mut row = format!("({id}, {}, {b}", i as i64 % groups);
                for _ in 0..9 {
                    row.push_str(", 100");
                }
                row.push(')');
                values.push(row);
            }
            db.execute_sql(&format!(
                "INSERT INTO t1gb1000g VALUES {}",
                values.join(", ")
            ))
            .unwrap();
            let (t, rep) = time_once(|| m.maintain(&db).unwrap());
            report.add(
                Record::new(
                    "selpd",
                    format!("sel{pass_pct}/pd_{}", if pushdown { "on" } else { "off" }),
                )
                .time("maintain", t)
                .count("rows_pruned", rep.metrics.delta_rows_pruned, false),
            );
            out.push(vec![
                format!("{pass_pct}%"),
                if pushdown { "on" } else { "off" }.to_string(),
                ms(t.as_secs_f64() * 1e3),
                rep.metrics.delta_rows_pruned.to_string(),
            ]);
        }
    }
    print_table(
        "Fig. 13a/c: selection push-down (delta = 2.5% of table)",
        &["delta-sel", "pushdown", "maintain", "pruned"],
        &out,
    );
}

fn exp_bloom(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let groups = 2_000i64;
    let mut out = Vec::new();
    for sel in [1u32, 5, 10] {
        for delta in [10usize, 100, 1000] {
            for bloom in [true, false] {
                let name = format!("tb{sel}");
                let helper = format!("hb{sel}");
                let mut db = Database::new();
                load(
                    &mut db,
                    &SyntheticConfig {
                        name: name.clone(),
                        rows,
                        groups,
                        ..Default::default()
                    },
                )
                .unwrap();
                load_join_helper(&mut db, &helper, groups, sel, 1, 5).unwrap();
                let sql = queries::q_joinsel(&name, &helper);
                let plan = db.plan_sql(&sql).unwrap();
                let pset = pset_for(&db, &name, "a", 100);
                let cfg = OpConfig {
                    bloom,
                    ..bench_op_config()
                };
                let ups = insert_stream(&name, reps(), delta, groups, rows * 8, 3);
                let (mut m, _) =
                    SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
                let mut times = Vec::new();
                let mut pruned = 0u64;
                for op in &ups {
                    let WorkloadOp::Update { sql, .. } = op else {
                        continue;
                    };
                    db.execute_sql(sql).unwrap();
                    let (t, rep) = time_once(|| m.maintain(&db).unwrap());
                    times.push(t);
                    pruned += rep.metrics.bloom_pruned;
                }
                report.add(
                    Record::new(
                        "bloom",
                        format!(
                            "sel{sel}/d{delta}/bloom_{}",
                            if bloom { "on" } else { "off" }
                        ),
                    )
                    .time_stats("maintain", &criterion::sample_stats(&times))
                    .count("bloom_pruned", pruned, false),
                );
                out.push(vec![
                    format!("{sel}%"),
                    delta.to_string(),
                    if bloom { "on" } else { "off" }.to_string(),
                    ms(median_ms(times)),
                    pruned.to_string(),
                ]);
            }
        }
    }
    print_table(
        "Fig. 13b/d: bloom-filter join optimization",
        &["join-sel", "delta", "bloom", "maintain", "pruned"],
        &out,
    );
}

fn exp_index(report: &mut BenchReport) {
    // Q_joinsel at 100% join selectivity so every delta row has partners
    // and the `Q ⋈ Δ` terms run each batch. With the side index on, the
    // only round trips are the initial builds (during capture); steady
    // state answers from memory.
    let rows = scaled(20_000, 2_000);
    let groups = 2_000i64;
    let batches = reps().max(2); // ≥2 so a steady-state batch exists
    let mut out = Vec::new();
    for delta in [10usize, 100, 1000] {
        for index in [true, false] {
            let name = format!("ti{delta}");
            let helper = format!("hi{delta}");
            let mut db = Database::new();
            load(
                &mut db,
                &SyntheticConfig {
                    name: name.clone(),
                    rows,
                    groups,
                    ..Default::default()
                },
            )
            .unwrap();
            load_join_helper(&mut db, &helper, groups, 100, 1, 5).unwrap();
            let sql = queries::q_joinsel(&name, &helper);
            let plan = db.plan_sql(&sql).unwrap();
            let pset = pset_for(&db, &name, "a", 100);
            let cfg = OpConfig {
                join_index_budget: index.then_some(imp_core::ops::DEFAULT_JOIN_INDEX_BUDGET),
                ..bench_op_config()
            };
            let ups = insert_stream(&name, batches, delta, groups, rows * 8, 3);
            let (mut m, _) =
                SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
            let mut times = Vec::new();
            let mut total = MaintMetrics::default();
            let mut last = MaintMetrics::default();
            for op in &ups {
                let WorkloadOp::Update { sql, .. } = op else {
                    continue;
                };
                db.execute_sql(sql).unwrap();
                let (t, report) = time_once(|| m.maintain(&db).unwrap());
                times.push(t);
                total.absorb(&report.metrics);
                last = report.metrics;
            }
            let (_, idx_bytes) = m.join_index_state();
            report.add(
                Record::new(
                    "index",
                    format!("d{delta}/idx_{}", if index { "on" } else { "off" }),
                )
                .time_stats("maintain", &criterion::sample_stats(&times))
                .count("db_roundtrips", total.db_roundtrips, true)
                .count("db_rows_scanned", total.db_rows_scanned, true)
                .count("rt_saved", total.db_roundtrips_avoided, false)
                .heap("index_bytes", idx_bytes as u64),
            );
            out.push(vec![
                delta.to_string(),
                if index { "on" } else { "off" }.to_string(),
                ms(median_ms(times)),
                total.db_roundtrips.to_string(),
                total.db_rows_scanned.to_string(),
                total.db_roundtrips_avoided.to_string(),
                format!("{:.1}KB", idx_bytes as f64 / 1e3),
            ]);
            if index {
                // CI guard: the index must actually save round trips.
                assert!(
                    total.db_roundtrips_avoided > 0,
                    "join-side index enabled but zero db_roundtrips saved \
                     (delta {delta}, {batches} batches)"
                );
                assert_eq!(
                    last.db_roundtrips, 0,
                    "steady-state join maintenance must not round-trip \
                     with the side index enabled (delta {delta})"
                );
            }
        }
    }
    print_table(
        "Fig. 13g: delta-maintained join-side index (Q_joinsel, 100% join sel)",
        &[
            "delta",
            "index",
            "maintain",
            "db rt",
            "rows scanned",
            "rt saved",
            "index heap",
        ],
        &out,
    );
}

fn exp_space(report: &mut BenchReport) {
    let mut db = Database::new();
    imp_data::tpch::load(&mut db, 0.3 * scale(), 17).unwrap();
    // Q_space with a one-year window so the top-k input is large enough
    // for the buffer bound to matter (the paper's SF1 run sees 37k tuples).
    let sql = queries::Q_SPACE
        .replace("19941201", "19940101")
        .replace("19950301", "19950101");
    let plan = db.plan_sql(&sql).unwrap();
    let pset = pset_for(&db, "customer", "c_custkey", 100);
    let mut out = Vec::new();
    for buffer in [Some(50usize), Some(100), Some(500), Some(1_000), None] {
        let cfg = OpConfig {
            topk_buffer: buffer,
            minmax_buffer: buffer,
            ..bench_op_config()
        };
        let (m, _) = SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
        let (entries, bytes) = m.topk_state().unwrap_or((0, 0));
        report.add(
            Record::new(
                "space",
                format!("l_{}", buffer.map_or("all".to_string(), |b| b.to_string())),
            )
            .count("topk_entries", entries as u64, true)
            .heap("topk_state_bytes", bytes as u64)
            .heap("total_state_bytes", m.state_heap_size() as u64),
        );
        out.push(vec![
            buffer.map_or("all".to_string(), |b| b.to_string()),
            entries.to_string(),
            format!("{:.1} KB", bytes as f64 / 1e3),
            format!("{:.3} MB", m.state_heap_size() as f64 / 1e6),
        ]);
    }
    print_table(
        "Fig. 13e/f: Q_space (TPC-H Q10) state memory vs top-l buffer",
        &["l", "topk entries", "topk state", "total state"],
        &out,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    println!("Fig. 13 — optimizations ({which})");
    let mut report = BenchReport::new("fig13_opts");
    match which {
        "selpd" => exp_selpd(&mut report),
        "bloom" => exp_bloom(&mut report),
        "index" => exp_index(&mut report),
        "space" => exp_space(&mut report),
        _ => {
            exp_selpd(&mut report);
            exp_bloom(&mut report);
            exp_index(&mut report);
            exp_space(&mut report);
        }
    }
    report.finish();
}
