//! Deep-plan stress: the n-ary join circuit on a 4-table chain under a
//! high-churn retraction workload.
//!
//! A 4-table chain join (`d0 ⋈ d1 ⋈ d2 ⋈ d3`) compiles to a single
//! [`imp_core::ops::NaryJoinOp`] maintaining `Δ(R₁ ⋈ … ⋈ R₄)` against
//! four per-input indexes — no intermediate pair state. The workload is
//! pure churn: every batch inserts a slab of rows into all four tables
//! and retracts the previous batch's slab, so negative-multiplicity
//! deltas flow through every term of the telescoping rule and the
//! steady-state content keeps returning to the seed.
//!
//! The harness **panics** when the contract breaks:
//!
//! * the chain must compile n-ary (`nary_arity() == Some(4)`) while the
//!   `nary_join: false` oracle stays on the binary tree;
//! * zero intermediate pair state: after the final batch the n-ary
//!   index entries equal the live base-table rows exactly (each row in
//!   exactly one per-input index), while the binary tree holds strictly
//!   more (its upper joins index intermediate join outputs);
//! * steady state is round-trip-free and O(|Δ|): after the first batch
//!   builds the four indexes, every maintenance run reports
//!   `db_roundtrips == 0` and total per-input probes bounded by a small
//!   constant times the batch's delta rows;
//! * both configurations end byte-identical to a fresh recapture.

use imp_bench::*;
use imp_core::maintain::SketchMaintainer;
use imp_core::ops::OpConfig;
use imp_engine::Database;
use imp_sketch::capture;
use imp_storage::{row, DataType, Field, Schema};
use std::sync::Arc;
use std::time::Duration;

const SQL: &str = "SELECT v0, v3 FROM d0 JOIN d1 ON (k0 = k1a) \
     JOIN d2 ON (k1b = k2a) JOIN d3 ON (k2b = k3)";

/// Churn-row value marker: batch `i`'s slab carries `MARKER + i` in the
/// value column, so retracting the slab is one DELETE per table and can
/// never touch a seed row.
const MARKER: i64 = 9_000_000;

fn seed_db(keys: i64) -> Database {
    let mut db = Database::new();
    for (table, c1, c2) in [
        ("d0", "k0", "v0"),
        ("d1", "k1a", "k1b"),
        ("d2", "k2a", "k2b"),
        ("d3", "k3", "v3"),
    ] {
        db.create_table(
            table,
            Schema::new(vec![
                Field::new(c1, DataType::Int),
                Field::new(c2, DataType::Int),
            ]),
        )
        .unwrap();
    }
    for k in 0..keys {
        db.table_mut("d0").unwrap().bulk_load([row![k, k]]).unwrap();
        db.table_mut("d1").unwrap().bulk_load([row![k, k]]).unwrap();
        db.table_mut("d2").unwrap().bulk_load([row![k, k]]).unwrap();
        db.table_mut("d3").unwrap().bulk_load([row![k, k]]).unwrap();
    }
    db
}

/// One churn batch: `delta` inserts spread over the four tables, keys
/// cycling the join domain. Returns (insert SQL, matching delete SQL).
fn churn_batch(batch: usize, delta: usize, keys: i64) -> (Vec<String>, Vec<String>) {
    let mark = MARKER + batch as i64;
    let mut inserts = Vec::with_capacity(delta);
    let mut deletes = Vec::with_capacity(4);
    for j in 0..delta {
        let key = (batch * delta + j) as i64 % keys;
        let sql = match j % 4 {
            0 => format!("INSERT INTO d0 VALUES ({key}, {mark})"),
            // Join-side churn: (k, k + offset) never collides with the
            // seed diagonal (k, k) as long as offset ∤ keys.
            1 => format!("INSERT INTO d1 VALUES ({key}, {})", (key + 1) % keys),
            2 => format!("INSERT INTO d2 VALUES ({key}, {})", (key + 2) % keys),
            _ => format!("INSERT INTO d3 VALUES ({key}, {mark})"),
        };
        inserts.push(sql);
    }
    deletes.push(format!("DELETE FROM d0 WHERE v0 = {mark}"));
    for (t, off) in [("d1", 1i64), ("d2", 2)] {
        for j in 0..delta {
            if j % 4 == if t == "d1" { 1 } else { 2 } {
                let key = (batch * delta + j) as i64 % keys;
                deletes.push(format!(
                    "DELETE FROM {t} WHERE k{}a = {key} AND k{}b = {}",
                    &t[1..],
                    &t[1..],
                    (key + off) % keys
                ));
            }
        }
    }
    deletes.push(format!("DELETE FROM d3 WHERE v3 = {mark}"));
    (inserts, deletes)
}

struct Run {
    times: Vec<Duration>,
    steady_roundtrips: u64,
    probes_total: Vec<u64>,
    probes_last: Vec<u64>,
    index_entries: usize,
    index_bytes: usize,
}

fn run_config(
    label: &str,
    cfg: OpConfig,
    keys: i64,
    batches: usize,
    delta: usize,
    expect_nary: bool,
) -> Run {
    let mut db = seed_db(keys);
    let plan = db.plan_sql(SQL).unwrap();
    let pset = pset_for(&db, "d0", "k0", 40);
    let mut m = SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true)
        .unwrap()
        .0;
    assert_eq!(
        m.nary_arity(),
        expect_nary.then_some(4),
        "{label}: wrong join-circuit compilation for the 4-table chain"
    );

    let mut times = Vec::new();
    let mut steady_roundtrips = 0u64;
    let mut probes_total = vec![0u64; 4];
    let mut probes_last = Vec::new();
    let mut pending_deletes: Vec<String> = Vec::new();
    for batch in 0..batches {
        let (inserts, deletes) = churn_batch(batch, delta, keys);
        let mut delta_rows = 0usize;
        for sql in pending_deletes.drain(..).chain(inserts) {
            db.execute_sql(&sql).unwrap();
            delta_rows += 1;
        }
        pending_deletes = deletes;
        let (t, report) = time_once(|| m.maintain(&db).unwrap());
        times.push(t);
        assert!(
            !report.recaptured,
            "{label}: churn must not force recapture"
        );
        if batch >= 1 {
            // Steady state: the per-input indexes were built during the
            // first batch; from then on maintenance is round-trip-free.
            steady_roundtrips += report.metrics.db_roundtrips;
            if expect_nary {
                let probes: u64 = report.nary_input_probes.iter().sum();
                assert!(
                    probes as usize <= delta_rows * 16 * 4,
                    "{label}: batch {batch} probed {probes} times for {delta_rows} \
                     delta rows — steady-state maintenance must stay O(|Δ|)"
                );
            }
        }
        if expect_nary {
            assert_eq!(report.nary_input_probes.len(), 4);
            for (acc, p) in probes_total.iter_mut().zip(&report.nary_input_probes) {
                *acc += p;
            }
            probes_last = report.nary_input_probes;
        }
    }
    if expect_nary {
        assert_eq!(
            steady_roundtrips, 0,
            "{label}: steady-state n-ary maintenance must avoid backend round trips"
        );
    }

    // Retract the last slab too, so the final content is exactly the
    // seed plus the cycled join-side rows — then compare to recapture.
    for sql in pending_deletes.drain(..) {
        db.execute_sql(&sql).unwrap();
    }
    m.maintain(&db).unwrap();
    let truth = capture(&plan, &db, &pset).unwrap();
    assert_eq!(
        m.sketch(),
        &truth.sketch,
        "{label}: maintained sketch diverged from fresh recapture after churn"
    );

    let (index_entries, index_bytes) = m.join_index_state();
    if expect_nary {
        let live: usize = ["d0", "d1", "d2", "d3"]
            .iter()
            .map(|t| db.table(t).unwrap().row_count())
            .sum();
        assert_eq!(
            index_entries, live,
            "{label}: n-ary state must hold exactly the n per-input indexes \
             (one entry per live base row — zero intermediate pair state)"
        );
    }
    Run {
        times,
        steady_roundtrips,
        probes_total,
        probes_last,
        index_entries,
        index_bytes,
    }
}

fn main() {
    let keys = scaled(2_000, 60) as i64;
    let batches = scaled(30, 8);
    let delta = scaled(600, 24);
    println!("deep: 4-table chain, {batches} churn batches x {delta} rows, {keys} keys");

    let nary = run_config("nary", bench_op_config(), keys, batches, delta, true);
    let binary = run_config(
        "binary",
        OpConfig {
            nary_join: false,
            ..bench_op_config()
        },
        keys,
        batches,
        delta,
        false,
    );
    assert!(
        binary.index_entries > nary.index_entries,
        "binary tree must hold more index entries than the n per-input \
         indexes (pair state: {} vs {})",
        binary.index_entries,
        nary.index_entries
    );

    let mut report = BenchReport::new("fig_deep");
    let mut out = Vec::new();
    for (label, run) in [("nary", &nary), ("binary", &binary)] {
        let mut rec = Record::new("deep", label.to_string())
            .time_ms("maintain_med", median_ms(run.times.clone()))
            .count("steady_roundtrips", run.steady_roundtrips, false)
            .count("index_entries", run.index_entries as u64, true)
            .heap("index_bytes", run.index_bytes as u64);
        if label == "nary" {
            for (i, p) in run.probes_total.iter().enumerate() {
                rec = rec.count(format!("probes_in{i}"), *p, false);
            }
        }
        report.add(rec);
        out.push(vec![
            label.to_string(),
            ms(median_ms(run.times.clone())),
            run.steady_roundtrips.to_string(),
            run.index_entries.to_string(),
            bytes_h(run.index_bytes as u64),
            format!("{:?}", run.probes_total),
            format!("{:?}", run.probes_last),
        ]);
    }
    print_table(
        "deep: n-ary circuit vs binary tree on a 4-table chain",
        &[
            "config",
            "maintain",
            "steady rt",
            "idx entries",
            "idx bytes",
            "probes (total)",
            "probes (last)",
        ],
        &out,
    );
    println!(
        "\nn-ary circuit: zero pair state, round-trip-free steady maintenance, \
         byte-identical to recapture under full-churn retraction ✓"
    );
    report.finish();
}
