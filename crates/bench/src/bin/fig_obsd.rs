//! Live telemetry plane experiment (`imp_core::obsd`).
//!
//! One sharded `Imp` serves its obsd endpoint while a fleet of **64+
//! concurrent scrape clients** hammers every route (`/metrics`,
//! `/metrics.json`, `/trace`, `/health`, `/sketches`, `/flight`) and the
//! main thread churns updates + maintenance through the scheduler. Three
//! claims, each **enforced by panic**:
//!
//! 1. **Overhead ≤ 10% (+ noise floor)** — windowed maintain-latency p99
//!    under full scrape load vs. an identical obsd-off system running
//!    the same churn, best of [`imp_bench::reps`] attempts, bounded by
//!    `1.10 × off + OVERHEAD_FLOOR_NS` (tail quantiles at smoke scale
//!    sit near the scheduler-jitter floor; a pure ratio would gate on
//!    noise).
//! 2. **Watchdog latency** — a deliberately wedged shard (workers
//!    parked, inboxes non-empty) flips `/health` to degraded within
//!    **2 watchdog ticks**, naming `shard_liveness`, with a flight dump
//!    captured at the transition (`/flight?trip=1`).
//! 3. **No lost scrapes** — every request the fleet issues gets a
//!    well-formed response.
//!
//! Artifacts for `bench_check --check-obsd`: `OBSD_METRICS.prom`,
//! `OBSD_HEALTH.json`, `OBSD_FLIGHT.json` in `IMP_BENCH_OUT`. The
//! endpoint address honors `IMP_OBSD_ADDR` (default ephemeral); CI sets
//! a fixed port and `IMP_OBSD_LINGER_MS` to curl the live endpoint after
//! the run.

use imp_bench::*;
use imp_core::middleware::{Imp, ImpConfig};
use imp_core::{HealthConfig, HistSnapshot, ObsConfig};
use imp_data::queries;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TABLES: usize = 4;
const ROUNDS: usize = 4;
const SCRAPERS: usize = 64;
const ENDPOINTS: [&str; 6] = [
    "/metrics",
    "/metrics.json",
    "/trace",
    "/health",
    "/sketches",
    "/flight",
];
/// Watchdog cadence: fast enough that the wedge phase converges in
/// milliseconds, slow enough that a tick always sees fresh heartbeats.
const HEALTH_TICK: Duration = Duration::from_millis(25);
/// Per-client poll interval. 64 clients at this cadence keep a steady
/// ~640 req/s against the endpoint — an aggressive monitoring fleet,
/// not a CPU-saturating busy-loop (which would measure host-core
/// starvation, not obsd overhead; the harness must also pass on
/// single-core CI runners).
const SCRAPE_INTERVAL: Duration = Duration::from_millis(100);
/// Noise floor under the 10% overhead bound (same shape as the
/// `obs_overhead` guard and the bench_check gate: `factor × baseline +
/// floor`). At smoke scale a maintain p99 is ~100µs, where a few tens of
/// µs of scheduler jitter would dominate a pure ratio; at real scale the
/// floor is small against millisecond tails and the 10% bound governs.
const OVERHEAD_FLOOR_NS: u64 = 250_000;

fn table_names() -> Vec<String> {
    (0..TABLES).map(|i| format!("o{i}")).collect()
}

fn build_imp(obsd: bool, rows: usize, groups: i64) -> Imp {
    let mut db = Database::new();
    for name in table_names() {
        load(
            &mut db,
            &SyntheticConfig {
                name,
                rows,
                groups,
                ..Default::default()
            },
        )
        .unwrap();
    }
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 50,
            columnar_min: columnar_min(),
            sched_workers: 2,
            // Tiny staging queue so paused-phase routing falls back
            // inline and fills inboxes deterministically (fig_sched's
            // trick) — the wedge phase needs visible queue depths.
            ingest_queue_cap: 4,
            obs: if obs_enabled() {
                ObsConfig::on()
            } else {
                ObsConfig::metrics_only()
            },
            // Only the measured system gets the endpoint; the baseline
            // must not consult IMP_OBSD_ADDR, or CI's fixed port would
            // start a server on the obsd-"off" side too.
            obsd_addr: if obsd {
                std::env::var("IMP_OBSD_ADDR")
                    .ok()
                    .or_else(|| Some("127.0.0.1:0".to_string()))
            } else {
                Some(String::new()) // unbindable → explicit no endpoint
            },
            health: HealthConfig {
                tick: HEALTH_TICK,
                ..HealthConfig::default()
            },
            ..Default::default()
        },
    );
    for name in table_names() {
        imp.execute(&queries::q_groups(&name, 1_600)).unwrap();
        imp.execute(&queries::q_having(&name, 3)).unwrap();
    }
    assert_eq!(imp.sketch_count(), 2 * TABLES, "every query must capture");
    imp
}

fn http_get(addr: SocketAddr, target: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    write!(stream, "GET {target} HTTP/1.1\r\nHost: imp\r\n\r\n").ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let status = raw
        .strip_prefix("HTTP/1.1 ")?
        .split(' ')
        .next()?
        .parse()
        .ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

/// The update stream of one churn round-trip (identical per system).
fn update_stream(delta: usize, groups: i64, rows: usize) -> Vec<Vec<String>> {
    (0..ROUNDS)
        .map(|round| {
            table_names()
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let ops = insert_stream(name, ROUNDS, delta, groups, rows * 4, 7 + i as u64);
                    let WorkloadOp::Update { sql, .. } = ops[round].clone() else {
                        unreachable!()
                    };
                    sql
                })
                .collect()
        })
        .collect()
}

fn churn(imp: &mut Imp, updates: &[Vec<String>]) {
    for round in updates {
        for sql in round {
            imp.execute(sql).unwrap();
        }
        imp.maintain_all_stale().unwrap();
    }
    imp.scheduler().unwrap().drain();
}

/// Maintain-latency histogram accumulated so far (empty before first run).
fn maint_hist(imp: &Imp) -> HistSnapshot {
    imp.obs()
        .maintain_latency()
        .unwrap_or_else(HistSnapshot::empty)
}

/// Bucket-wise window `cur − prev` (same math as the health burn-rate
/// windows): the p99 of only the samples recorded between two snapshots.
fn hist_window(prev: &HistSnapshot, cur: &HistSnapshot) -> HistSnapshot {
    let mut buckets = cur.buckets.clone();
    for (b, p) in buckets.iter_mut().zip(prev.buckets.iter()) {
        *b = b.saturating_sub(*p);
    }
    HistSnapshot {
        buckets,
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.wrapping_sub(prev.sum),
        max: cur.max,
    }
}

/// `"tick":N` from a `/health` body.
fn health_tick(body: &str) -> u64 {
    body.split("\"tick\":")
        .nth(1)
        .and_then(|rest| {
            rest.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("no tick in /health body: {body}"))
}

struct FleetResult {
    requests: u64,
    failures: u64,
    latencies_ns: Vec<u64>,
}

/// Run `SCRAPERS` concurrent clients against every endpoint until `stop`
/// flips, then return aggregate counts and per-request latencies.
fn scrape_fleet(addr: SocketAddr, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<FleetResult> {
    std::thread::spawn(move || {
        let failures = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..SCRAPERS)
            .map(|i| {
                let stop = Arc::clone(&stop);
                let failures = Arc::clone(&failures);
                std::thread::spawn(move || {
                    let mut lat = Vec::new();
                    let mut n = 0usize;
                    while !stop.load(Ordering::Acquire) {
                        let target = ENDPOINTS[(i + n) % ENDPOINTS.len()];
                        let t0 = Instant::now();
                        match http_get(addr, target) {
                            Some((status, body))
                                if (status == 200 || status == 503) && !body.is_empty() =>
                            {
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                            _ => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        n += 1;
                        std::thread::sleep(SCRAPE_INTERVAL);
                    }
                    lat
                })
            })
            .collect();
        let mut latencies_ns = Vec::new();
        for h in handles {
            latencies_ns.extend(h.join().unwrap());
        }
        FleetResult {
            requests: latencies_ns.len() as u64 + failures.load(Ordering::Relaxed),
            failures: failures.load(Ordering::Relaxed),
            latencies_ns,
        }
    })
}

/// The gate: obsd-on maintain p99 within `10% + floor` of obsd-off.
fn within_overhead_bound(p99_on: u64, p99_off: u64) -> bool {
    (p99_on as f64) <= (p99_off as f64) * 1.10 + OVERHEAD_FLOOR_NS as f64
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let rows = scaled(20_000, 500);
    let groups = 200i64;
    let delta = scaled(1_500, 25);
    let updates = update_stream(delta, groups, rows);

    // ---- Phase 1: overhead under full scrape load, best of N attempts.
    // One system per side for the whole phase (a fixed IMP_OBSD_ADDR port
    // cannot be rebound immediately); attempts are windowed bucket-diffs
    // of the cumulative maintain histogram.
    let mut off = build_imp(false, rows, groups);
    assert!(off.obsd_addr().is_none(), "baseline must have no endpoint");
    let mut on = build_imp(true, rows, groups);
    let addr = on.obsd_addr().expect("obsd endpoint must bind");
    println!("obsd endpoint live on http://{addr} ({SCRAPERS} scrape clients)");

    let attempts = reps().max(3);
    let mut best_ratio = f64::INFINITY;
    let mut best = (0u64, 0u64); // (p99_on, p99_off) of the best attempt
    let mut fleet_total = FleetResult {
        requests: 0,
        failures: 0,
        latencies_ns: Vec::new(),
    };
    for attempt in 0..attempts {
        let off_before = maint_hist(&off);
        churn(&mut off, &updates);
        let p99_off = hist_window(&off_before, &maint_hist(&off)).p99().max(1);

        let stop = Arc::new(AtomicBool::new(false));
        let fleet = scrape_fleet(addr, Arc::clone(&stop));
        let on_before = maint_hist(&on);
        churn(&mut on, &updates);
        stop.store(true, Ordering::Release);
        let result = fleet.join().unwrap();
        let p99_on = hist_window(&on_before, &maint_hist(&on)).p99().max(1);

        assert_eq!(
            result.failures, 0,
            "attempt {attempt}: {} of {} scrapes failed",
            result.failures, result.requests
        );
        assert!(result.requests > 0, "fleet never got a scrape through");
        let ratio = p99_on as f64 / p99_off as f64;
        println!(
            "attempt {attempt}: maintain p99 on={p99_on}ns off={p99_off}ns \
             ratio={ratio:.3} ({} scrapes)",
            result.requests
        );
        if ratio < best_ratio {
            best_ratio = ratio;
            best = (p99_on, p99_off);
        }
        fleet_total.requests += result.requests;
        fleet_total.latencies_ns.extend(result.latencies_ns);
        if within_overhead_bound(best.0, best.1) {
            break;
        }
    }
    assert!(
        within_overhead_bound(best.0, best.1),
        "obsd overhead on maintain p99 exceeded 10% + {OVERHEAD_FLOOR_NS}ns floor \
         in every attempt (best: on={}ns off={}ns ratio {best_ratio:.3})",
        best.0,
        best.1
    );

    fleet_total.latencies_ns.sort_unstable();
    let scrape_p50 = percentile(&fleet_total.latencies_ns, 0.50);
    let scrape_p99 = percentile(&fleet_total.latencies_ns, 0.99);

    // ---- Phase 2: wedged shard → degraded within 2 watchdog ticks.
    let paused = on.scheduler().unwrap().pause();
    // Push enough batches per table to overflow the tiny staging queue
    // (cap 4): overflow routes inline, so the paused shards' inboxes fill
    // and the liveness rule sees frozen heartbeats *with queued work* —
    // a single staged batch would just look idle.
    for name in table_names() {
        for op in insert_stream(&name, 6, delta, groups, rows * 8, 99) {
            let WorkloadOp::Update { sql, .. } = op else {
                unreachable!()
            };
            on.execute(&sql).unwrap();
        }
    }
    let (_, body) = http_get(addr, "/health").expect("health scrape");
    let t0 = health_tick(&body);
    let deadline = Instant::now() + Duration::from_secs(10);
    let (degraded_body, t1) = loop {
        let (status, body) = http_get(addr, "/health").expect("health scrape");
        if status == 503 {
            let t1 = health_tick(&body);
            break (body, t1);
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never fired; last /health: {body}"
        );
        std::thread::sleep(HEALTH_TICK / 4);
    };
    let ticks_to_degraded = t1.saturating_sub(t0);
    assert!(
        ticks_to_degraded <= 2,
        "degraded at tick {t1}, wedged at tick {t0}: {ticks_to_degraded} ticks \
         (budget 2); body: {degraded_body}"
    );
    assert!(
        degraded_body.contains("shard_liveness"),
        "wrong firing rule: {degraded_body}"
    );
    let (trip_status, trip) = http_get(addr, "/flight?trip=1").expect("trip scrape");
    assert_eq!(trip_status, 200, "no flight dump at the trip: {trip}");
    assert!(trip.contains("\"events\""), "malformed trip dump: {trip}");
    println!(
        "wedged shard: degraded in {ticks_to_degraded} tick(s), \
         shard_liveness fired, trip dump {} bytes",
        trip.len()
    );

    // Artifacts while degraded state and flight history are interesting.
    let out_dir =
        std::path::PathBuf::from(std::env::var("IMP_BENCH_OUT").unwrap_or_else(|_| ".".into()));
    std::fs::create_dir_all(&out_dir).expect("create IMP_BENCH_OUT");
    let (_, metrics_prom) = http_get(addr, "/metrics").expect("metrics scrape");
    let (_, flight_json) = http_get(addr, "/flight").expect("flight scrape");
    for (name, contents) in [
        ("OBSD_METRICS.prom", &metrics_prom),
        ("OBSD_HEALTH.json", &degraded_body),
        ("OBSD_FLIGHT.json", &flight_json),
    ] {
        let path = out_dir.join(name);
        std::fs::write(&path, contents)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }

    // Un-wedge and verify recovery before reporting.
    drop(paused);
    on.maintain_all_stale().unwrap();
    on.scheduler().unwrap().drain();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = http_get(addr, "/health").expect("health scrape");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "health never recovered");
        std::thread::sleep(HEALTH_TICK / 4);
    }

    if obs_enabled() {
        write_obs_artifacts_from("fig_obsd", on.obs());
    }

    let mut report = BenchReport::new("fig_obsd");
    report.add(
        Record::new("obsd", "overhead".to_string())
            .ratio("maintain_p99_on_over_off", best_ratio)
            .metric("maintain_ns_p99_on", best.0 as f64, Unit::Ns, false)
            .metric("maintain_ns_p99_off", best.1 as f64, Unit::Ns, false)
            .metric("scrape_ns_p50", scrape_p50 as f64, Unit::Ns, false)
            .metric("scrape_ns_p99", scrape_p99 as f64, Unit::Ns, false)
            .count("scrape_requests", fleet_total.requests, false)
            .count("scrape_failures", fleet_total.failures, false),
    );
    report.add(
        Record::new("obsd", "wedge".to_string())
            .count("ticks_to_degraded", ticks_to_degraded, false)
            .count("trip_dump_bytes", trip.len() as u64, false),
    );

    print_table(
        &format!(
            "obsd: {SCRAPERS} scrape clients over {} endpoints during churn",
            ENDPOINTS.len()
        ),
        &[
            "p99 on",
            "p99 off",
            "ratio",
            "scrape p50",
            "scrape p99",
            "scrapes",
            "wedge ticks",
        ],
        &[vec![
            format!("{}ns", best.0),
            format!("{}ns", best.1),
            format!("{best_ratio:.3}"),
            ms(scrape_p50 as f64 / 1e6),
            ms(scrape_p99 as f64 / 1e6),
            fleet_total.requests.to_string(),
            ticks_to_degraded.to_string(),
        ]],
    );
    println!("overhead ≤ 10%+floor ✓  watchdog ≤ 2 ticks ✓  zero lost scrapes ✓");
    report.finish();

    let linger_ms: u64 = std::env::var("IMP_OBSD_LINGER_MS")
        .map(|s| parse_env("IMP_OBSD_LINGER_MS", &s))
        .unwrap_or(0);
    if linger_ms > 0 {
        println!("lingering {linger_ms}ms for external scrapes on http://{addr}");
        std::thread::sleep(Duration::from_millis(linger_ms));
    }
    drop(on);
}
