//! CI regression gate over the `BENCH_*.json` trajectory.
//!
//! Diffs the current run's reports against the committed
//! `bench/baseline/` snapshot and exits non-zero when any gated metric
//! exceeds `factor × baseline + unit floor` (factor 2.0 by default,
//! `IMP_BENCH_GATE_FACTOR` or `--factor` overrides; see
//! `imp_bench::report` for the gating rules and floors).
//!
//! ```text
//! bench_check [--baseline DIR] [--current DIR] [--factor F]
//!             [--history FILE] [--trend FILE] [--check-obs DIR]
//!             [--self-test]
//! ```
//!
//! * `--baseline` — committed snapshot directory (default `bench/baseline`).
//! * `--current`  — directory holding this run's `BENCH_*.json` (default `.`).
//! * `--factor`   — regression factor override.
//! * `--history`  — append one JSONL line per current harness (git SHA +
//!   every gated metric, see `imp_bench::report::history_line`) to FILE
//!   before gating, so CI accumulates the gated trajectory across
//!   commits even on runs the gate fails.
//! * `--trend` — standalone mode: read an accumulated `history.jsonl`
//!   and print one markdown table per harness — gated metrics down the
//!   rows, one column per recorded run (short SHA) — so the cross-commit
//!   trajectory is readable without any plotting tooling.
//! * `--check-obs` — standalone mode: validate the `IMP_OBS=1`
//!   observability artifacts in DIR — every `TRACE_*.json` parses as
//!   Chrome trace-event JSON with at least one complete-event span,
//!   every `METRICS_*.json` parses as a registry snapshot whose metric
//!   names all appear in the paired `METRICS_*.prom` text exposition,
//!   and every exposition line carries a numeric value.
//! * `--check-obsd` — standalone mode: validate the obsd endpoint
//!   artifacts in DIR (written by `fig_obsd` or curled from a live
//!   endpoint) — at least one `*.prom` scrape where every exposition
//!   line parses as `name{labels} value`, `OBSD_HEALTH.json` carrying a
//!   watchdog verdict, and `OBSD_FLIGHT.json` whose flight events each
//!   carry `ticket`/`t_ns`/`kind` with tickets strictly increasing.
//! * `--self-test` — no files: build an in-memory baseline, inject a
//!   synthetic 2× regression, and verify the gate catches it (and that a
//!   clean run passes). Run in CI before the real gate so a silently
//!   broken comparator can't wave regressions through.
//!
//! Baseline files recorded at a different `IMP_BENCH_SCALE` than the
//! current run are skipped (numbers across scales are incomparable), so
//! a local full-scale run next to the scale-0.01 baseline is a no-op
//! rather than a wall of false regressions.

use imp_bench::report::{compare, gate_factor, history_line, BenchReport, Regression};
use imp_bench::{print_table, Record, Unit};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_dir = PathBuf::from("bench/baseline");
    let mut current_dir = PathBuf::from(".");
    let mut factor = gate_factor();
    let mut history: Option<PathBuf> = None;
    let mut trend: Option<PathBuf> = None;
    let mut check_obs: Option<PathBuf> = None;
    let mut check_obsd: Option<PathBuf> = None;
    let mut self_test = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_dir = required(&mut args, "--baseline").into(),
            "--current" => current_dir = required(&mut args, "--current").into(),
            "--factor" => {
                factor = imp_bench::parse_env("--factor", &required(&mut args, "--factor"))
            }
            "--history" => history = Some(required(&mut args, "--history").into()),
            "--trend" => trend = Some(required(&mut args, "--trend").into()),
            "--check-obs" => check_obs = Some(required(&mut args, "--check-obs").into()),
            "--check-obsd" => check_obsd = Some(required(&mut args, "--check-obsd").into()),
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!(
                    "bench_check [--baseline DIR] [--current DIR] [--factor F] \
                     [--history FILE] [--trend FILE] [--check-obs DIR] \
                     [--check-obsd DIR] [--self-test]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_check: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if self_test {
        return run_self_test(factor);
    }
    if let Some(path) = trend {
        return run_trend(&path);
    }
    if let Some(dir) = check_obs {
        return run_check_obs(&dir);
    }
    if let Some(dir) = check_obsd {
        return run_check_obsd(&dir);
    }
    run_gate(&baseline_dir, &current_dir, factor, history.as_deref())
}

/// Append one JSONL line per current report to `path` (created if
/// absent). Runs before the gate verdict so failing runs still land on
/// the trajectory. IO failure fails the job — a silently lost trajectory
/// point defeats the purpose.
fn append_history(path: &Path, currents: &[(String, BenchReport)]) {
    use std::io::Write as _;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("bench_check: cannot create {}: {e}", dir.display()));
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("bench_check: cannot open {}: {e}", path.display()));
    for (_, report) in currents {
        writeln!(file, "{}", history_line(report))
            .unwrap_or_else(|e| panic!("bench_check: cannot append to {}: {e}", path.display()));
    }
    println!(
        "appended {} history line(s) to {}",
        currents.len(),
        path.display()
    );
}

fn required(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| panic!("bench_check: {flag} needs a value"))
}

/// Load every `BENCH_*.json` in `dir`, sorted by file name.
fn load_reports(dir: &Path) -> Vec<(String, BenchReport)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", dir.display());
            return out;
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = match std::fs::read_to_string(entry.path()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_check: cannot read {name}: {e}");
                continue;
            }
        };
        match BenchReport::from_json(&text) {
            Ok(report) => out.push((name, report)),
            Err(e) => eprintln!("bench_check: {name} is not a valid report: {e}"),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn run_gate(
    baseline_dir: &Path,
    current_dir: &Path,
    factor: f64,
    history: Option<&Path>,
) -> ExitCode {
    let baselines = load_reports(baseline_dir);
    if baselines.is_empty() {
        eprintln!(
            "bench_check: no BENCH_*.json baselines under {} — nothing to gate",
            baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let currents = load_reports(current_dir);
    if let Some(path) = history {
        append_history(path, &currents);
    }

    let mut compared = 0usize;
    let mut missing_files = 0usize;
    let mut all_regressions: Vec<Regression> = Vec::new();
    for (name, baseline) in &baselines {
        let Some((_, current)) = currents.iter().find(|(n, _)| n == name) else {
            println!(
                "{name}: missing from current run ({})",
                current_dir.display()
            );
            missing_files += 1;
            continue;
        };
        let outcome = compare(baseline, current, factor);
        for note in &outcome.notes {
            println!("note: {note}");
        }
        println!(
            "{name}: {} gated metrics compared, {} regression(s)",
            outcome.compared,
            outcome.regressions.len()
        );
        compared += outcome.compared;
        all_regressions.extend(outcome.regressions);
    }

    if !all_regressions.is_empty() {
        let rows: Vec<Vec<String>> = all_regressions
            .iter()
            .map(|r| {
                vec![
                    r.harness.clone(),
                    r.experiment.clone(),
                    r.config.clone(),
                    r.metric.clone(),
                    format!("{:.0}", r.baseline),
                    format!("{:.0}", r.current),
                    if r.factor.is_finite() {
                        format!("{:.2}x", r.factor)
                    } else {
                        "inf".into()
                    },
                ]
            })
            .collect();
        print_table(
            &format!("REGRESSIONS (current > {factor}x baseline + floor)"),
            &[
                "harness",
                "experiment",
                "config",
                "metric",
                "baseline",
                "current",
                "ratio",
            ],
            &rows,
        );
        eprintln!(
            "\nbench_check: FAIL — {} regression(s) across {} compared metrics. \
             If intentional, refresh bench/baseline/ (see README \"Benchmark trajectory\").",
            all_regressions.len(),
            compared
        );
        return ExitCode::FAILURE;
    }
    if missing_files > 0 {
        eprintln!(
            "\nbench_check: FAIL — {missing_files} baseline harness file(s) absent from the \
             current run; every baselined harness must emit its report"
        );
        return ExitCode::FAILURE;
    }
    println!("\nbench_check: OK — {compared} gated metrics within {factor}x of baseline");
    ExitCode::SUCCESS
}

/// `--trend`: render an accumulated `history.jsonl` as one markdown
/// table per harness — gated metrics down the rows, one column per
/// recorded run (short SHA, file order = commit order).
fn run_trend(path: &Path) -> ExitCode {
    use imp_bench::report::json;
    use std::collections::BTreeMap;

    struct Trend {
        columns: Vec<String>,
        metrics: BTreeMap<String, Vec<Option<f64>>>,
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut harnesses: Vec<(String, Trend)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fail = |msg: String| -> ExitCode {
            eprintln!("bench_check: {} line {}: {msg}", path.display(), i + 1);
            ExitCode::FAILURE
        };
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        let Some(obj) = parsed.as_object() else {
            return fail("not a JSON object".into());
        };
        let (sha, harness) = match (json::get_str(obj, "sha"), json::get_str(obj, "harness")) {
            (Ok(s), Ok(h)) => (s, h),
            (Err(e), _) | (_, Err(e)) => return fail(e),
        };
        let Some(json::Value::Object(gated)) = obj.get("gated") else {
            return fail("field \"gated\": expected object".into());
        };
        let trend = match harnesses.iter_mut().find(|(h, _)| *h == harness) {
            Some((_, t)) => t,
            None => {
                harnesses.push((
                    harness,
                    Trend {
                        columns: Vec::new(),
                        metrics: BTreeMap::new(),
                    },
                ));
                &mut harnesses.last_mut().unwrap().1
            }
        };
        let col = trend.columns.len();
        trend.columns.push(sha.chars().take(9).collect());
        for (key, value) in gated {
            let json::Value::Num(n) = value else {
                return fail(format!("gated metric {key:?} is not a number"));
            };
            trend
                .metrics
                .entry(key.clone())
                .or_insert_with(|| vec![None; col])
                .push(Some(*n));
        }
        // Metrics a run didn't emit stay visible as gaps, not shifts.
        for vals in trend.metrics.values_mut() {
            vals.resize(col + 1, None);
        }
    }
    if harnesses.is_empty() {
        eprintln!(
            "bench_check: {} holds no trend lines — run with --history first",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    for (harness, trend) in &harnesses {
        println!("\n### {harness} ({} run(s))\n", trend.columns.len());
        println!("| metric | {} |", trend.columns.join(" | "));
        println!("|---|{}", "---:|".repeat(trend.columns.len()));
        for (metric, vals) in &trend.metrics {
            let cells: Vec<String> = vals
                .iter()
                .map(|v| v.map_or_else(|| "-".into(), trend_num))
                .collect();
            println!("| {metric} | {} |", cells.join(" | "));
        }
    }
    ExitCode::SUCCESS
}

/// Compact cell format for trend tables.
fn trend_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// `--check-obs`: validate the `IMP_OBS=1` artifacts in `dir` (see the
/// module docs). Any malformed or missing artifact fails the job — a CI
/// smoke run that silently produced empty traces would let the
/// instrumentation rot.
fn run_check_obs(dir: &Path) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut names: Vec<String> = entries
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();

    let mut traces = 0usize;
    let mut metrics = 0usize;
    let mut problems: Vec<String> = Vec::new();
    for name in &names {
        let path = dir.join(name);
        if name.starts_with("TRACE_") && name.ends_with(".json") {
            traces += 1;
            match check_trace_file(&path) {
                Ok(events) => println!("{name}: {events} trace event(s) OK"),
                Err(e) => problems.push(format!("{name}: {e}")),
            }
        } else if name.starts_with("METRICS_") && name.ends_with(".json") {
            metrics += 1;
            match check_metrics_file(&path) {
                Ok(count) => println!("{name}: {count} metric(s) OK, matches .prom"),
                Err(e) => problems.push(format!("{name}: {e}")),
            }
        }
    }
    if traces == 0 {
        problems.push(format!("no TRACE_*.json artifacts under {}", dir.display()));
    }
    if metrics == 0 {
        problems.push(format!(
            "no METRICS_*.json artifacts under {}",
            dir.display()
        ));
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("bench_check: {p}");
        }
        eprintln!(
            "\nbench_check: FAIL — {} obs artifact problem(s)",
            problems.len()
        );
        return ExitCode::FAILURE;
    }
    println!("\nbench_check: OK — {traces} trace + {metrics} metrics artifact(s) valid");
    ExitCode::SUCCESS
}

/// One `TRACE_*.json`: Chrome trace-event JSON whose `traceEvents` array
/// holds at least one complete (`ph:"X"`) event with the fields the
/// viewers require. Returns the event count.
fn check_trace_file(path: &Path) -> Result<usize, String> {
    use imp_bench::report::json;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let parsed = json::parse(&text)?;
    let obj = parsed.as_object().ok_or("not a JSON object")?;
    let events = json::get_array(obj, "traceEvents")?;
    if events.is_empty() {
        return Err("traceEvents is empty — no spans were recorded".into());
    }
    for (i, event) in events.iter().enumerate() {
        let e = event
            .as_object()
            .ok_or(format!("event {i} is not an object"))?;
        json::get_str(e, "name").map_err(|msg| format!("event {i}: {msg}"))?;
        let ph = json::get_str(e, "ph").map_err(|msg| format!("event {i}: {msg}"))?;
        if ph != "X" {
            return Err(format!(
                "event {i}: expected complete event ph \"X\", got {ph:?}"
            ));
        }
        for field in ["ts", "dur", "pid", "tid"] {
            json::get_num(e, field).map_err(|msg| format!("event {i}: {msg}"))?;
        }
    }
    Ok(events.len())
}

/// One `METRICS_*.json`: a non-empty registry snapshot whose every
/// metric name also appears in the paired `.prom` exposition, each
/// exposition line carrying a parseable numeric value. Returns the
/// metric count.
fn check_metrics_file(path: &Path) -> Result<usize, String> {
    use imp_bench::report::json;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let parsed = json::parse(&text)?;
    let obj = parsed.as_object().ok_or("not a JSON object")?;
    let list = json::get_array(obj, "metrics")?;
    if list.is_empty() {
        return Err("metrics array is empty — nothing was registered".into());
    }
    let prom_path = path.with_extension("prom");
    let prom = std::fs::read_to_string(&prom_path)
        .map_err(|e| format!("paired exposition {}: {e}", prom_path.display()))?;
    for (i, metric) in list.iter().enumerate() {
        let m = metric
            .as_object()
            .ok_or(format!("metric {i} is not an object"))?;
        let name = json::get_str(m, "name").map_err(|e| format!("metric {i}: {e}"))?;
        let kind = json::get_str(m, "kind").map_err(|e| format!("metric {i}: {e}"))?;
        let fields: &[&str] = match kind.as_str() {
            "counter" | "gauge" => &["value"],
            "histogram" => &["count", "sum", "max", "p50", "p90", "p99"],
            other => return Err(format!("metric {i} ({name}): unknown kind {other:?}")),
        };
        for field in fields {
            json::get_num(m, field).map_err(|msg| format!("metric {i} ({name}): {msg}"))?;
        }
        if !prom.contains(&name) {
            return Err(format!(
                "metric {name:?} missing from {}",
                prom_path.display()
            ));
        }
    }
    for (i, line) in prom.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value = line
            .rsplit_once(' ')
            .map(|(_, v)| v)
            .ok_or(format!("exposition line {}: no value", i + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("exposition line {}: value {value:?} is not numeric", i + 1))?;
    }
    Ok(list.len())
}

/// `--check-obsd`: validate obsd endpoint artifacts in `dir` (see the
/// module docs). The CI smoke job curls a live endpoint and `fig_obsd`
/// writes its own captures; either way a missing or malformed artifact
/// fails the job so the telemetry plane can't silently regress to
/// serving garbage.
fn run_check_obsd(dir: &Path) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut names: Vec<String> = entries
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();

    let mut scrapes = 0usize;
    let mut problems: Vec<String> = Vec::new();
    for name in &names {
        if !name.ends_with(".prom") || name.starts_with("METRICS_") {
            continue; // METRICS_* pairs belong to --check-obs
        }
        scrapes += 1;
        match check_prom_scrape(&dir.join(name)) {
            Ok(series) => println!("{name}: {series} exposition series OK"),
            Err(e) => problems.push(format!("{name}: {e}")),
        }
    }
    if scrapes == 0 {
        problems.push(format!(
            "no *.prom endpoint scrapes under {}",
            dir.display()
        ));
    }
    match check_health_file(&dir.join("OBSD_HEALTH.json")) {
        Ok(verdict) => println!("OBSD_HEALTH.json: verdict {verdict:?} OK"),
        Err(e) => problems.push(format!("OBSD_HEALTH.json: {e}")),
    }
    match check_flight_file(&dir.join("OBSD_FLIGHT.json")) {
        Ok(events) => println!("OBSD_FLIGHT.json: {events} flight event(s) OK"),
        Err(e) => problems.push(format!("OBSD_FLIGHT.json: {e}")),
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("bench_check: {p}");
        }
        eprintln!(
            "\nbench_check: FAIL — {} obsd artifact problem(s)",
            problems.len()
        );
        return ExitCode::FAILURE;
    }
    println!("\nbench_check: OK — {scrapes} scrape(s) + health + flight artifacts valid");
    ExitCode::SUCCESS
}

/// One `/metrics` scrape: every non-comment line must be
/// `name{labels} value` with a numeric value and a sane metric-name
/// charset, and at least one series must be present. Returns the series
/// count.
fn check_prom_scrape(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut series = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {}: no value", i + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: value {value:?} is not numeric", i + 1))?;
        let name = name_part.split('{').next().unwrap_or_default();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name in {line:?}", i + 1));
        }
        series += 1;
    }
    if series == 0 {
        return Err("empty exposition — the endpoint served no series".into());
    }
    Ok(series)
}

/// `OBSD_HEALTH.json`: a `/health` capture whose report names a verdict
/// and a tick counter; each firing rule (if any) must carry a `rule`
/// name. Returns the verdict.
fn check_health_file(path: &Path) -> Result<String, String> {
    use imp_bench::report::json;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let parsed = json::parse(&text)?;
    let obj = parsed.as_object().ok_or("not a JSON object")?;
    let Some(json::Value::Object(health)) = obj.get("health") else {
        return Err("field \"health\": expected object".into());
    };
    let verdict = json::get_str(health, "verdict")?;
    if verdict != "ok" && verdict != "degraded" {
        return Err(format!("unknown verdict {verdict:?}"));
    }
    json::get_num(health, "tick")?;
    let firing = json::get_array(health, "firing")?;
    for (i, rule) in firing.iter().enumerate() {
        let r = rule
            .as_object()
            .ok_or(format!("firing {i}: not an object"))?;
        json::get_str(r, "rule").map_err(|e| format!("firing {i}: {e}"))?;
    }
    Ok(verdict)
}

/// `OBSD_FLIGHT.json`: a `/flight` capture — a non-empty `events` array
/// where every record carries `ticket`/`t_ns`/`kind` and tickets are
/// strictly increasing (the ring scan is ordered). Returns the event
/// count.
fn check_flight_file(path: &Path) -> Result<usize, String> {
    use imp_bench::report::json;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let parsed = json::parse(&text)?;
    let obj = parsed.as_object().ok_or("not a JSON object")?;
    let Some(json::Value::Object(flight)) = obj.get("flight") else {
        return Err("field \"flight\": expected object".into());
    };
    json::get_num(flight, "cap")?;
    json::get_num(flight, "recorded")?;
    let events = json::get_array(flight, "events")?;
    if events.is_empty() {
        return Err("events is empty — the flight recorder captured nothing".into());
    }
    let mut last_ticket = f64::NEG_INFINITY;
    for (i, event) in events.iter().enumerate() {
        let e = event
            .as_object()
            .ok_or(format!("event {i} is not an object"))?;
        let ticket = json::get_num(e, "ticket").map_err(|m| format!("event {i}: {m}"))?;
        json::get_num(e, "t_ns").map_err(|m| format!("event {i}: {m}"))?;
        let kind = json::get_str(e, "kind").map_err(|m| format!("event {i}: {m}"))?;
        if kind.is_empty() {
            return Err(format!("event {i}: empty kind"));
        }
        if ticket <= last_ticket {
            return Err(format!(
                "event {i}: ticket {ticket} not after {last_ticket} — dump out of order"
            ));
        }
        last_ticket = ticket;
    }
    Ok(events.len())
}

/// Prove the gate actually gates: a clean pair passes, an injected 2×
/// regression (above the unit floor) fails, sub-floor noise passes, and
/// ungated metrics are ignored however bad they look.
fn run_self_test(factor: f64) -> ExitCode {
    let report_with = |maintain_ns: f64, heap: u64, rate: f64| {
        let mut r = BenchReport::new("self_test");
        r.add(
            Record::new("exp", "cfg")
                .metric("maintain_ns_median", maintain_ns, Unit::Ns, true)
                .heap("state_bytes", heap)
                .ratio("memo_rate", rate),
        );
        r
    };
    // 50 ms baseline: far above the 5 ms Ns floor so the factor governs.
    let baseline = report_with(50e6, 1 << 20, 0.9);

    let clean = compare(&baseline, &report_with(55e6, 1 << 20, 0.9), factor);
    assert!(
        clean.regressions.is_empty() && clean.compared == 2,
        "self-test: clean run flagged: {clean:?}"
    );

    let slow = report_with(50e6 * factor + 6e6, 1 << 20, 0.9);
    let caught = compare(&baseline, &slow, factor);
    assert_eq!(
        caught.regressions.len(),
        1,
        "self-test: injected {factor}x timing regression not caught: {caught:?}"
    );
    assert_eq!(caught.regressions[0].metric, "maintain_ns_median");

    let bloated = report_with(50e6, (3 << 20) + 8192, 0.9);
    let caught_heap = compare(&baseline, &bloated, factor);
    assert_eq!(
        caught_heap.regressions.len(),
        1,
        "self-test: injected heap regression not caught: {caught_heap:?}"
    );

    // A collapsed memo rate is ungated — trajectory-only.
    let rate_drop = compare(&baseline, &report_with(50e6, 1 << 20, 0.0), factor);
    assert!(
        rate_drop.regressions.is_empty(),
        "self-test: ungated metric gated: {rate_drop:?}"
    );

    // Scale mismatch skips instead of comparing.
    let mut rescaled = report_with(500e6, 1 << 30, 0.9);
    rescaled.scale *= 10.0;
    let skipped = compare(&baseline, &rescaled, factor);
    assert!(
        skipped.compared == 0 && skipped.regressions.is_empty(),
        "self-test: cross-scale reports were compared: {skipped:?}"
    );

    println!("bench_check: self-test OK (factor {factor})");
    ExitCode::SUCCESS
}
