//! CI regression gate over the `BENCH_*.json` trajectory.
//!
//! Diffs the current run's reports against the committed
//! `bench/baseline/` snapshot and exits non-zero when any gated metric
//! exceeds `factor × baseline + unit floor` (factor 2.0 by default,
//! `IMP_BENCH_GATE_FACTOR` or `--factor` overrides; see
//! `imp_bench::report` for the gating rules and floors).
//!
//! ```text
//! bench_check [--baseline DIR] [--current DIR] [--factor F]
//!             [--history FILE] [--self-test]
//! ```
//!
//! * `--baseline` — committed snapshot directory (default `bench/baseline`).
//! * `--current`  — directory holding this run's `BENCH_*.json` (default `.`).
//! * `--factor`   — regression factor override.
//! * `--history`  — append one JSONL line per current harness (git SHA +
//!   every gated metric, see `imp_bench::report::history_line`) to FILE
//!   before gating, so CI accumulates the gated trajectory across
//!   commits even on runs the gate fails.
//! * `--self-test` — no files: build an in-memory baseline, inject a
//!   synthetic 2× regression, and verify the gate catches it (and that a
//!   clean run passes). Run in CI before the real gate so a silently
//!   broken comparator can't wave regressions through.
//!
//! Baseline files recorded at a different `IMP_BENCH_SCALE` than the
//! current run are skipped (numbers across scales are incomparable), so
//! a local full-scale run next to the scale-0.01 baseline is a no-op
//! rather than a wall of false regressions.

use imp_bench::report::{compare, gate_factor, history_line, BenchReport, Regression};
use imp_bench::{print_table, Record, Unit};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_dir = PathBuf::from("bench/baseline");
    let mut current_dir = PathBuf::from(".");
    let mut factor = gate_factor();
    let mut history: Option<PathBuf> = None;
    let mut self_test = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_dir = required(&mut args, "--baseline").into(),
            "--current" => current_dir = required(&mut args, "--current").into(),
            "--factor" => {
                factor = imp_bench::parse_env("--factor", &required(&mut args, "--factor"))
            }
            "--history" => history = Some(required(&mut args, "--history").into()),
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!(
                    "bench_check [--baseline DIR] [--current DIR] [--factor F] \
                     [--history FILE] [--self-test]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_check: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if self_test {
        return run_self_test(factor);
    }
    run_gate(&baseline_dir, &current_dir, factor, history.as_deref())
}

/// Append one JSONL line per current report to `path` (created if
/// absent). Runs before the gate verdict so failing runs still land on
/// the trajectory. IO failure fails the job — a silently lost trajectory
/// point defeats the purpose.
fn append_history(path: &Path, currents: &[(String, BenchReport)]) {
    use std::io::Write as _;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("bench_check: cannot create {}: {e}", dir.display()));
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("bench_check: cannot open {}: {e}", path.display()));
    for (_, report) in currents {
        writeln!(file, "{}", history_line(report))
            .unwrap_or_else(|e| panic!("bench_check: cannot append to {}: {e}", path.display()));
    }
    println!(
        "appended {} history line(s) to {}",
        currents.len(),
        path.display()
    );
}

fn required(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| panic!("bench_check: {flag} needs a value"))
}

/// Load every `BENCH_*.json` in `dir`, sorted by file name.
fn load_reports(dir: &Path) -> Vec<(String, BenchReport)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", dir.display());
            return out;
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = match std::fs::read_to_string(entry.path()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_check: cannot read {name}: {e}");
                continue;
            }
        };
        match BenchReport::from_json(&text) {
            Ok(report) => out.push((name, report)),
            Err(e) => eprintln!("bench_check: {name} is not a valid report: {e}"),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn run_gate(
    baseline_dir: &Path,
    current_dir: &Path,
    factor: f64,
    history: Option<&Path>,
) -> ExitCode {
    let baselines = load_reports(baseline_dir);
    if baselines.is_empty() {
        eprintln!(
            "bench_check: no BENCH_*.json baselines under {} — nothing to gate",
            baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let currents = load_reports(current_dir);
    if let Some(path) = history {
        append_history(path, &currents);
    }

    let mut compared = 0usize;
    let mut missing_files = 0usize;
    let mut all_regressions: Vec<Regression> = Vec::new();
    for (name, baseline) in &baselines {
        let Some((_, current)) = currents.iter().find(|(n, _)| n == name) else {
            println!(
                "{name}: missing from current run ({})",
                current_dir.display()
            );
            missing_files += 1;
            continue;
        };
        let outcome = compare(baseline, current, factor);
        for note in &outcome.notes {
            println!("note: {note}");
        }
        println!(
            "{name}: {} gated metrics compared, {} regression(s)",
            outcome.compared,
            outcome.regressions.len()
        );
        compared += outcome.compared;
        all_regressions.extend(outcome.regressions);
    }

    if !all_regressions.is_empty() {
        let rows: Vec<Vec<String>> = all_regressions
            .iter()
            .map(|r| {
                vec![
                    r.harness.clone(),
                    r.experiment.clone(),
                    r.config.clone(),
                    r.metric.clone(),
                    format!("{:.0}", r.baseline),
                    format!("{:.0}", r.current),
                    if r.factor.is_finite() {
                        format!("{:.2}x", r.factor)
                    } else {
                        "inf".into()
                    },
                ]
            })
            .collect();
        print_table(
            &format!("REGRESSIONS (current > {factor}x baseline + floor)"),
            &[
                "harness",
                "experiment",
                "config",
                "metric",
                "baseline",
                "current",
                "ratio",
            ],
            &rows,
        );
        eprintln!(
            "\nbench_check: FAIL — {} regression(s) across {} compared metrics. \
             If intentional, refresh bench/baseline/ (see README \"Benchmark trajectory\").",
            all_regressions.len(),
            compared
        );
        return ExitCode::FAILURE;
    }
    if missing_files > 0 {
        eprintln!(
            "\nbench_check: FAIL — {missing_files} baseline harness file(s) absent from the \
             current run; every baselined harness must emit its report"
        );
        return ExitCode::FAILURE;
    }
    println!("\nbench_check: OK — {compared} gated metrics within {factor}x of baseline");
    ExitCode::SUCCESS
}

/// Prove the gate actually gates: a clean pair passes, an injected 2×
/// regression (above the unit floor) fails, sub-floor noise passes, and
/// ungated metrics are ignored however bad they look.
fn run_self_test(factor: f64) -> ExitCode {
    let report_with = |maintain_ns: f64, heap: u64, rate: f64| {
        let mut r = BenchReport::new("self_test");
        r.add(
            Record::new("exp", "cfg")
                .metric("maintain_ns_median", maintain_ns, Unit::Ns, true)
                .heap("state_bytes", heap)
                .ratio("memo_rate", rate),
        );
        r
    };
    // 50 ms baseline: far above the 5 ms Ns floor so the factor governs.
    let baseline = report_with(50e6, 1 << 20, 0.9);

    let clean = compare(&baseline, &report_with(55e6, 1 << 20, 0.9), factor);
    assert!(
        clean.regressions.is_empty() && clean.compared == 2,
        "self-test: clean run flagged: {clean:?}"
    );

    let slow = report_with(50e6 * factor + 6e6, 1 << 20, 0.9);
    let caught = compare(&baseline, &slow, factor);
    assert_eq!(
        caught.regressions.len(),
        1,
        "self-test: injected {factor}x timing regression not caught: {caught:?}"
    );
    assert_eq!(caught.regressions[0].metric, "maintain_ns_median");

    let bloated = report_with(50e6, (3 << 20) + 8192, 0.9);
    let caught_heap = compare(&baseline, &bloated, factor);
    assert_eq!(
        caught_heap.regressions.len(),
        1,
        "self-test: injected heap regression not caught: {caught_heap:?}"
    );

    // A collapsed memo rate is ungated — trajectory-only.
    let rate_drop = compare(&baseline, &report_with(50e6, 1 << 20, 0.0), factor);
    assert!(
        rate_drop.regressions.is_empty(),
        "self-test: ungated metric gated: {rate_drop:?}"
    );

    // Scale mismatch skips instead of comparing.
    let mut rescaled = report_with(500e6, 1 << 30, 0.9);
    rescaled.scale *= 10.0;
    let skipped = compare(&baseline, &rescaled, factor);
    assert!(
        skipped.compared == 0 && skipped.regressions.is_empty(),
        "self-test: cross-scale reports were compared: {skipped:?}"
    );

    println!("bench_check: self-test OK (factor {factor})");
    ExitCode::SUCCESS
}
