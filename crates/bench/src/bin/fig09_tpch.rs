//! Figure 9: incremental vs. full maintenance on TPC-H.
//!
//! (a)/(b): IMP vs FM per maintenance run for realistic delta sizes
//! {10..1000} at two database scales. (c): insert vs delete deltas.
//! Expected shape (paper): IMP beats FM by 3.9x..~2500x; FM cost tracks
//! database size, IMP cost tracks delta size.

use imp_bench::*;
use imp_data::queries;
use imp_data::workload::WorkloadOp;
use imp_engine::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multi-row INSERT into lineitem.
fn lineitem_inserts(n_updates: usize, delta: usize, seed: u64) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_updates)
        .map(|_| {
            let rows: Vec<String> = (0..delta)
                .map(|_| {
                    format!(
                        "({}, {}, {}, {}, {}, {}, 0.0{}, 0.02, '{}', {})",
                        rng.gen_range(0..5_000),
                        rng.gen_range(0..10_000),
                        rng.gen_range(0..1_000),
                        rng.gen_range(0..7),
                        rng.gen_range(1..50),
                        (rng.gen_range(90_000..1_100_000) as f64) / 100.0,
                        rng.gen_range(0..=9),
                        ["R", "A", "N"][rng.gen_range(0..3usize)],
                        19_940_000i64 + rng.gen_range(101i64..1231),
                    )
                })
                .collect();
            WorkloadOp::Update {
                sql: format!("INSERT INTO lineitem VALUES {}", rows.join(", ")),
                rows: delta,
            }
        })
        .collect()
}

fn lineitem_deletes(n_updates: usize, delta: usize, seed: u64) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_updates)
        .map(|_| {
            // ~4 lineitems per order: delete a key window of delta/4 orders.
            let width = (delta / 4).max(1);
            let start = rng.gen_range(0i64..4_000);
            WorkloadOp::Update {
                sql: format!(
                    "DELETE FROM lineitem WHERE l_orderkey >= {start} AND l_orderkey < {}",
                    start + width as i64
                ),
                rows: delta,
            }
        })
        .collect()
}

fn run_scale(label: &str, tpch_scale: f64, report: &mut BenchReport) {
    let mut db = Database::new();
    imp_data::tpch::load(&mut db, tpch_scale, 17).unwrap();
    let li = db.table("lineitem").unwrap().row_count();
    println!("\n-- TPC-H {label}: lineitem = {li} rows --");

    let queries: [(&str, &str, (&str, &str)); 3] = [
        (
            "Q_single (agg+HAVING)",
            queries::TPCH_SINGLE,
            ("lineitem", "l_orderkey"),
        ),
        (
            "Q_having (join+HAVING)",
            queries::TPCH_HAVING,
            ("orders", "o_custkey"),
        ),
        (
            "Q_topk (agg+top-10)",
            queries::TPCH_TOPK,
            ("lineitem", "l_orderkey"),
        ),
    ];
    let scale_tag = label.split(' ').next().unwrap_or(label);
    let mut rows = Vec::new();
    for (name, sql, (ptable, pattr)) in queries {
        for delta in [10usize, 50, 100, 500, 1000] {
            let plan = db.plan_sql(sql).unwrap();
            let pset = pset_for(&db, ptable, pattr, 100);
            let updates = lineitem_inserts(reps(), delta, delta as u64);
            let m = measure_inc_vs_full(&mut db, &plan, &pset, &updates, bench_op_config());
            let qtag = name.split(' ').next().unwrap_or(name);
            report.add(
                Record::new("inc_vs_full", format!("{scale_tag}/{qtag}/d{delta}"))
                    .time_stats("imp", &m.imp_stats)
                    .time_stats("fm", &m.fm_stats)
                    .count("recaptures", m.recaptures as u64, true)
                    .count("db_roundtrips", m.metrics.db_roundtrips, true)
                    .count("rt_saved", m.metrics.db_roundtrips_avoided, false)
                    .heap("delta_bytes_pooled", m.metrics.delta_bytes_pooled)
                    .ratio("fm_over_imp", m.fm_ms / m.imp_ms.max(1e-6)),
            );
            rows.push(vec![
                name.to_string(),
                delta.to_string(),
                ms(m.imp_ms),
                ms(m.fm_ms),
                format!("{:.1}x", m.fm_ms / m.imp_ms.max(1e-6)),
            ]);
        }
    }
    print_table(
        &format!("Fig. 9 {label}: IMP vs FM per maintenance run"),
        &["query", "delta", "IMP", "FM", "FM/IMP"],
        &rows,
    );
}

fn main() {
    println!("Fig. 9 — TPC-H incremental vs full maintenance");
    let mut report = BenchReport::new("fig09_tpch");
    // (a)/(b): two scales ("SF1" and "SF10" shapes).
    run_scale("small (SF-S)", 0.01 * scale(), &mut report);
    run_scale("large (SF-L, 10x)", 0.1 * scale(), &mut report);

    // (c): insert vs delete deltas at the large scale.
    let mut db = Database::new();
    imp_data::tpch::load(&mut db, 0.1 * scale(), 17).unwrap();
    let plan = db.plan_sql(queries::TPCH_SINGLE).unwrap();
    let pset = pset_for(&db, "lineitem", "l_orderkey", 100);
    let mut rows = Vec::new();
    for delta in [10usize, 100, 1000] {
        let ins = lineitem_inserts(reps(), delta, 7 + delta as u64);
        let m_ins = measure_inc_vs_full(&mut db, &plan, &pset, &ins, bench_op_config());
        let del = lineitem_deletes(reps(), delta, 9 + delta as u64);
        let m_del = measure_inc_vs_full(&mut db, &plan, &pset, &del, bench_op_config());
        report.add(
            Record::new("insert_vs_delete", format!("d{delta}"))
                .time_stats("insert", &m_ins.imp_stats)
                .time_stats("delete", &m_del.imp_stats),
        );
        rows.push(vec![delta.to_string(), ms(m_ins.imp_ms), ms(m_del.imp_ms)]);
    }
    print_table(
        "Fig. 9c: insert vs delete maintenance time (IMP)",
        &["delta", "insert", "delete"],
        &rows,
    );
    report.finish();
}
