//! Figure 17: memory usage of aggregation and join state.
//!
//! §8.6.1: "for fixed number of groups, the state data size is stable, and
//! the memory consumption increases due to the increasing of delta data
//! size". We report operator-state size after capture and after
//! maintaining deltas of growing sizes, for Q_groups and Q_joinsel.
//!
//! Delta memory is accounted pool-aware (`delta_heap_size`: shared rows
//! and hash-consed annotations counted once) next to the flat
//! one-bitvector-per-row baseline the batches replaced.

use imp_bench::*;
use imp_core::maintain::SketchMaintainer;
use imp_data::queries;
use imp_data::synthetic::{load, load_join_helper, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use std::sync::Arc;

fn main() {
    println!("Fig. 17 — state memory of Q_groups / Q_joinsel");
    let rows = scaled(20_000, 2_000);
    let mut report = BenchReport::new("fig17_memory");
    let mut out = Vec::new();

    // (a) Q_groups with varying group counts.
    for groups in [50i64, 1_000, 5_000] {
        let name = format!("tm{groups}");
        let mut db = Database::new();
        load(
            &mut db,
            &SyntheticConfig {
                name: name.clone(),
                rows,
                groups,
                ..Default::default()
            },
        )
        .unwrap();
        let sql = queries::q_groups(&name, groups * 2);
        let plan = db.plan_sql(&sql).unwrap();
        let pset = pset_for(&db, &name, "a", 100);
        let (mut m, _) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), bench_op_config(), true)
                .unwrap();
        report.add(
            Record::new("state_memory", format!("groups{groups}/capture"))
                .heap("state_bytes", m.state_heap_size() as u64),
        );
        out.push(vec![
            format!("Q_groups/{groups}g"),
            "capture".into(),
            format!("{:.1}KB", m.state_heap_size() as f64 / 1e3),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        for delta in [100usize, 1000] {
            let ups = insert_stream(&name, 1, delta, groups, rows * 4, 3);
            for op in &ups {
                let WorkloadOp::Update { sql, .. } = op else {
                    continue;
                };
                db.execute_sql(sql).unwrap();
            }
            let rep = m.maintain(&db).unwrap();
            report.add(
                Record::new("state_memory", format!("groups{groups}/d{delta}"))
                    .heap("state_bytes", m.state_heap_size() as u64)
                    .heap("delta_bytes_pooled", rep.metrics.delta_bytes_pooled)
                    .metric(
                        "delta_bytes_flat",
                        rep.metrics.delta_bytes_flat as f64,
                        Unit::Bytes,
                        false,
                    ),
            );
            out.push(vec![
                format!("Q_groups/{groups}g"),
                format!("+Δ{delta}"),
                format!("{:.1}KB", m.state_heap_size() as f64 / 1e3),
                bytes_h(rep.metrics.delta_bytes_pooled),
                bytes_h(rep.metrics.delta_bytes_flat),
                "-".into(),
            ]);
        }
    }

    // (b) Q_joinsel at 5% selectivity.
    let groups = 2_000i64;
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            name: "tmj".into(),
            rows,
            groups,
            ..Default::default()
        },
    )
    .unwrap();
    load_join_helper(&mut db, "hmj", groups, 5, 1, 5).unwrap();
    let sql = queries::q_joinsel("tmj", "hmj");
    let plan = db.plan_sql(&sql).unwrap();
    let pset = pset_for(&db, "tmj", "a", 100);
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), bench_op_config(), true).unwrap();
    report.add(
        Record::new("state_memory", "joinsel5/capture".to_string())
            .heap("state_bytes", m.state_heap_size() as u64)
            .heap("join_index_bytes", m.join_index_state().1 as u64),
    );
    out.push(vec![
        "Q_joinsel/5%".into(),
        "capture".into(),
        format!("{:.1}KB", m.state_heap_size() as f64 / 1e3),
        "-".into(),
        "-".into(),
        format!("{:.1}KB", m.join_index_state().1 as f64 / 1e3),
    ]);
    for delta in [100usize, 1000] {
        let ups = insert_stream("tmj", 1, delta, groups, rows * 4, 3);
        for op in &ups {
            let WorkloadOp::Update { sql, .. } = op else {
                continue;
            };
            db.execute_sql(sql).unwrap();
        }
        let rep = m.maintain(&db).unwrap();
        report.add(
            Record::new("state_memory", format!("joinsel5/d{delta}"))
                .heap("state_bytes", m.state_heap_size() as u64)
                .heap("delta_bytes_pooled", rep.metrics.delta_bytes_pooled)
                .metric(
                    "delta_bytes_flat",
                    rep.metrics.delta_bytes_flat as f64,
                    Unit::Bytes,
                    false,
                )
                .heap("join_index_bytes", m.join_index_state().1 as u64),
        );
        out.push(vec![
            "Q_joinsel/5%".into(),
            format!("+Δ{delta}"),
            format!("{:.1}KB", m.state_heap_size() as f64 / 1e3),
            bytes_h(rep.metrics.delta_bytes_pooled),
            bytes_h(rep.metrics.delta_bytes_flat),
            format!("{:.1}KB", m.join_index_state().1 as f64 / 1e3),
        ]);
    }

    print_table(
        "Fig. 17: operator-state memory",
        &[
            "query",
            "point",
            "state",
            "Δheap pool",
            "Δheap flat",
            "join idx",
        ],
        &out,
    );
    report.finish();
}
