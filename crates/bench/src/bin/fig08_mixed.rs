//! Figure 8: mixed query/update workloads — NS vs FM vs IMP.
//!
//! "We measure the end-to-end runtime of IMP, full maintenance (FM), and
//! non-sketch (NS) on mixed workloads … each workload consists of 1000
//! operations … query-update ratios 1U5Q, 1U1Q, 5U1Q … delta sizes 1, 20,
//! 200 and 2000" (§8.1). Expected shape: FM worst (frequent recapture
//! outweighs sketch benefit), IMP best except at the 5U1Q/2000 extreme.

use imp_bench::*;
use imp_core::{Imp, ImpConfig};
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::mixed_workload;
use imp_engine::Database;

fn fresh_db(rows: usize, groups: i64) -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            rows,
            groups,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

fn main() {
    let rows = scaled(20_000, 2_000);
    let groups = 1_000i64;
    let total_ops = scaled(240, 24); // paper: 1000 (set IMP_BENCH_SCALE≈4)
    println!("Fig. 8 — mixed workloads over edb1 ({rows} rows, {groups} groups, {total_ops} ops)");

    let ratios: [(usize, usize); 3] = [(1, 5), (1, 1), (5, 1)];
    let delta_sizes = [1usize, 20, 200, 2000];

    let mut report = BenchReport::new("fig08_mixed");
    let mut out_rows = Vec::new();
    for (u, q) in ratios {
        for delta in delta_sizes {
            let wl = mixed_workload(u, q, total_ops, delta, groups, rows, 99);

            let mut db = fresh_db(rows, groups);
            let ns = run_ns(&mut db, &wl.ops);

            let mut db = fresh_db(rows, groups);
            let fm = run_fm(&mut db, &wl.ops, ("edb1", "a", 100));

            let db = fresh_db(rows, groups);
            let mut imp = Imp::new(
                db,
                ImpConfig {
                    fragments: 100,
                    columnar_min: columnar_min(),
                    ..Default::default()
                },
            );
            let imp_t = run_imp(&mut imp, &wl.ops);

            let ops_f = wl.len() as f64;
            report.add(
                Record::new("mixed", format!("{}/d{delta}", wl.label()))
                    .time("ns_total", ns)
                    .time("fm_total", fm.total)
                    .time("imp_total", imp_t)
                    .metric("ns_per_op", ns.as_nanos() as f64 / ops_f, Unit::Ns, false)
                    .metric(
                        "imp_per_op",
                        imp_t.as_nanos() as f64 / ops_f,
                        Unit::Ns,
                        false,
                    )
                    .count("fm_captures", fm.captures as u64, false)
                    .count("fm_recaptures", fm.recaptures as u64, false)
                    .ratio(
                        "fm_over_imp",
                        fm.total.as_secs_f64() / imp_t.as_secs_f64().max(1e-9),
                    )
                    .ratio(
                        "ns_over_imp",
                        ns.as_secs_f64() / imp_t.as_secs_f64().max(1e-9),
                    ),
            );
            out_rows.push(vec![
                wl.label(),
                delta.to_string(),
                ms(ns.as_secs_f64() * 1e3),
                ms(fm.total.as_secs_f64() * 1e3),
                ms(imp_t.as_secs_f64() * 1e3),
                format!(
                    "{:.1}x",
                    fm.total.as_secs_f64() / imp_t.as_secs_f64().max(1e-9)
                ),
                format!("{:.1}x", ns.as_secs_f64() / imp_t.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    print_table(
        "Fig. 8: total workload runtime",
        &["ratio", "delta", "NS", "FM", "IMP", "FM/IMP", "NS/IMP"],
        &out_rows,
    );
    report.finish();
}
