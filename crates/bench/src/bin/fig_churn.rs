//! Churn stress: sustained insert+delete streams dominated by Δ⋈Δ
//! cancellations.
//!
//! Each round inserts a fresh id window of |Δ| rows and deletes exactly
//! that window before the sketch is maintained, so the delta log the
//! maintainer consumes is all cancellation: the net table change is
//! zero and the +Δ/−Δ pairs must annihilate inside the delta join
//! rather than touch the base table.
//!
//! The paper's core claim (§8.2) is that incremental maintenance cost
//! tracks |Δ|, not database size. Churn is the adversarial case: the
//! work is pure delta-side bookkeeping. The harness **panics** when
//! - delta rows consumed for a fixed |Δ| change as the base grows 10×
//!   (they are a deterministic function of the stream alone),
//! - rows processed for a fixed |Δ| grow by more than 3× across the
//!   10× base growth (maintenance cost scaling with base size), or
//! - rows processed fail to grow with |Δ| at a fixed base size.

use imp_bench::*;
use imp_core::maintain::SketchMaintainer;
use imp_core::metrics::MaintMetrics;
use imp_data::queries;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use std::sync::Arc;
use std::time::Duration;

struct ChurnRun {
    total: Duration,
    metrics: MaintMetrics,
    recaptures: usize,
}

/// `rounds` of insert-then-delete churn over a fresh table of `base`
/// rows: every round adds |Δ| rows in a private id window and removes
/// the same window before maintaining, so each maintenance run sees a
/// 2·|Δ|-row delta that cancels to nothing.
fn run_churn(base: usize, delta: usize, rounds: usize, groups: i64) -> ChurnRun {
    let name = format!("c{base}d{delta}");
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            name: name.clone(),
            rows: base,
            groups,
            ..Default::default()
        },
    )
    .unwrap();
    let sql = queries::q_groups(&name, 1_600);
    let plan = db.plan_sql(&sql).unwrap();
    let pset = pset_for(&db, &name, "a", 100);
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), bench_op_config(), true).unwrap();

    let mut total = Duration::ZERO;
    let mut metrics = MaintMetrics::default();
    let mut recaptures = 0usize;
    for round in 0..rounds {
        // Fresh ids far above the base table so the delete window hits
        // exactly the rows this round inserted — pure Δ⋈Δ cancellation.
        let start = base * 4 + round * delta;
        let ins = insert_stream(&name, 1, delta, groups, start, round as u64);
        let WorkloadOp::Update { sql, .. } = &ins[0] else {
            unreachable!()
        };
        db.execute_sql(sql).unwrap();
        db.execute_sql(&format!(
            "DELETE FROM {name} WHERE id >= {start} AND id < {}",
            start + delta
        ))
        .unwrap();
        let (t, rep) = time_once(|| m.maintain(&db).unwrap());
        total += t;
        metrics.absorb(&rep.metrics);
        if rep.recaptured {
            recaptures += 1;
        }
    }
    ChurnRun {
        total,
        metrics,
        recaptures,
    }
}

fn main() {
    let base_small = scaled(10_000, 1_000);
    let base_large = base_small * 10;
    let groups = 200i64;
    let rounds = scaled(40, 8);
    let deltas = [50usize, 500];
    println!(
        "churn: {rounds} insert+delete rounds, base {base_small} vs {base_large} rows, \
         |Δ| in {deltas:?}"
    );

    let mut report = BenchReport::new("fig_churn");
    let mut out = Vec::new();
    let mut runs = Vec::new();
    for &base in &[base_small, base_large] {
        for &delta in &deltas {
            let r = run_churn(base, delta, rounds, groups);
            report.add(
                Record::new("churn", format!("base{base}/d{delta}"))
                    .time("maintain_total", r.total)
                    .count("delta_rows_fetched", r.metrics.delta_rows_fetched, true)
                    .count("rows_processed", r.metrics.rows_processed, true)
                    .count("db_roundtrips", r.metrics.db_roundtrips, true)
                    .count("recaptures", r.recaptures as u64, true)
                    .count("rt_saved", r.metrics.db_roundtrips_avoided, false),
            );
            out.push(vec![
                base.to_string(),
                delta.to_string(),
                ms(r.total.as_secs_f64() * 1e3),
                r.metrics.delta_rows_fetched.to_string(),
                r.metrics.rows_processed.to_string(),
                r.recaptures.to_string(),
            ]);
            runs.push((base, delta, r));
        }
    }
    print_table(
        "churn: maintenance cost under pure insert+delete cancellation",
        &[
            "base",
            "delta",
            "total",
            "Δ fetched",
            "rows proc",
            "recaptures",
        ],
        &out,
    );

    let find = |base: usize, delta: usize| -> &ChurnRun {
        &runs
            .iter()
            .find(|(b, d, _)| *b == base && *d == delta)
            .unwrap()
            .2
    };
    for &delta in &deltas {
        let small = find(base_small, delta);
        let large = find(base_large, delta);
        // The stream is identical at both base sizes, so the delta rows
        // the maintainer consumes must be too — any difference means the
        // maintainer read the base table to process a delta.
        assert_eq!(
            small.metrics.delta_rows_fetched, large.metrics.delta_rows_fetched,
            "delta rows consumed changed with base size at |Δ|={delta}"
        );
        let ratio =
            large.metrics.rows_processed as f64 / small.metrics.rows_processed.max(1) as f64;
        assert!(
            ratio <= 3.0,
            "rows processed grew {ratio:.1}x across a 10x base growth at |Δ|={delta} — \
             maintenance cost is scaling with base size, not |Δ|"
        );
        println!("|Δ|={delta}: rows processed x{ratio:.2} across 10x base growth (bound 3.0) ✓");
    }
    for &base in &[base_small, base_large] {
        let lo = find(base, deltas[0]);
        let hi = find(base, deltas[1]);
        assert!(
            hi.metrics.delta_rows_fetched > lo.metrics.delta_rows_fetched,
            "delta rows consumed did not grow with |Δ| at base {base} \
             ({} vs {})",
            lo.metrics.delta_rows_fetched,
            hi.metrics.delta_rows_fetched
        );
        // Cancellation dominance: the +Δ/−Δ pairs must annihilate in the
        // delta join, not flow through the operators as real work.
        assert!(
            hi.metrics.rows_processed <= hi.metrics.delta_rows_fetched / 2,
            "Δ⋈Δ cancellations did not dominate at base {base}: \
             {} of {} delta rows reached the operators",
            hi.metrics.rows_processed,
            hi.metrics.delta_rows_fetched
        );
    }
    println!("\nmaintenance cost tracks |Δ|, not base size, under churn ✓");
    report.finish();
}
