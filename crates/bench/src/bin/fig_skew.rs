//! Skew stress: Zipfian update routing against the sharded scheduler.
//!
//! Real update streams are not uniform: the Chicago-crimes beats follow a
//! Zipf law, and a handful of hot tables absorb most of the write
//! traffic. This harness reuses `imp_data::crimes::ZipfSampler`
//! (exponent 2.0 — hot table gets ~2/3 of all batches) to draw the
//! target table of every update batch, so one template-hash shard's
//! queue grows far deeper than the rest.
//!
//! The contract under test: the shard pool keeps draining under skew,
//! and with work stealing enabled the idle workers help drain the hot
//! shard instead of watching it. The harness **panics** when any shard
//! queue is non-empty after `drain()`, when the skewed pools' final
//! sketch states differ from the sequential in-line store, when the
//! stream was not actually skewed (hot table short of a majority of the
//! batches), or when a multi-worker pool records **zero steals** — under
//! this skew the tail workers must claim batches from the hot shard's
//! inbox. The config forces per-batch claims (coalesce budget = batch
//! size) and a tiny staging queue (inline drains push the backlog into
//! inboxes while paused), so the hot shard holds many small claims for
//! thieves to take.

use imp_bench::*;
use imp_core::middleware::{Imp, ImpConfig};
use imp_data::crimes::ZipfSampler;
use imp_data::queries;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TABLES: usize = 6;

fn table_names() -> Vec<String> {
    (0..TABLES).map(|i| format!("z{i}")).collect()
}

fn build_imp(workers: usize, rows: usize, groups: i64, delta: usize) -> Imp {
    let mut db = Database::new();
    for name in table_names() {
        load(
            &mut db,
            &SyntheticConfig {
                name,
                rows,
                groups,
                ..Default::default()
            },
        )
        .unwrap();
    }
    let mut imp = Imp::new(
        db,
        ImpConfig {
            fragments: 50,
            columnar_min: columnar_min(),
            sched_workers: workers,
            // Budget = one update batch: every claim takes a single
            // batch, so the hot backlog drains across many claims and
            // idle workers find work to steal.
            coalesce_budget: delta,
            // Near-zero staging: paused-phase routing overflows inline
            // every third update, pushing (mostly hot) batches into the
            // inboxes one by one instead of letting collection merge the
            // whole backlog into one batch per table.
            ingest_queue_cap: 2,
            work_stealing: true,
            ..Default::default()
        },
    );
    for name in table_names() {
        imp.execute(&queries::q_groups(&name, 1_600)).unwrap();
    }
    assert_eq!(imp.sketch_count(), TABLES, "every query must capture");
    imp
}

fn main() {
    let rows = scaled(20_000, 400);
    let groups = 200i64;
    let delta = scaled(500, 20);
    let batches = scaled(96, 24);

    // Zipfian table choice per batch: with exponent 2.0 over 6 tables the
    // head table draws ~67% of the stream, so its template-hash shard
    // queues a majority of all batches while the tail shards idle.
    let zipf = ZipfSampler::new(TABLES, 2.0);
    let mut rng = StdRng::seed_from_u64(42);
    let names = table_names();
    let mut per_table = [0usize; TABLES];
    let updates: Vec<String> = (0..batches)
        .map(|i| {
            let t = zipf.sample(&mut rng);
            per_table[t] += 1;
            let ops = insert_stream(&names[t], 1, delta, groups, rows * 4 + i * delta, i as u64);
            let WorkloadOp::Update { sql, .. } = ops[0].clone() else {
                unreachable!()
            };
            sql
        })
        .collect();
    let hot_share = *per_table.iter().max().unwrap() as f64 / batches as f64;
    println!(
        "skew: {batches} batches x {delta} rows over {TABLES} tables, \
         hot table share {:.0}%",
        hot_share * 100.0
    );
    assert!(
        hot_share > 0.5,
        "stream not skewed (hot share {hot_share:.2}) — the experiment would not stress one shard"
    );

    // Sequential ground truth.
    let mut seq = build_imp(0, rows, groups, delta);
    for sql in &updates {
        seq.execute(sql).unwrap();
    }
    seq.maintain_all_stale().unwrap();
    let truth = seq.sketch_states();

    let mut report = BenchReport::new("fig_skew");
    report.add(Record::new("skew", "stream".to_string()).ratio("hot_share", hot_share));
    let mut out = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut imp = build_imp(workers, rows, groups, delta);

        // Phase 1 — paused routing: queues fill deterministically, the hot
        // shard's high-water mark shows the skew landing on one queue.
        let paused = imp.scheduler().unwrap().pause();
        for sql in &updates {
            imp.execute(sql).unwrap();
        }
        let queued = imp.scheduler().unwrap().stats();
        let max_depth = queued
            .per_shard
            .iter()
            .map(|s| s.max_depth)
            .max()
            .unwrap_or(0);
        let t0 = Instant::now();
        paused.resume();
        imp.scheduler().unwrap().drain();
        let drained = t0.elapsed();

        let stats = imp.scheduler().unwrap().stats();
        for (i, shard) in stats.per_shard.iter().enumerate() {
            assert_eq!(
                shard.depth, 0,
                "shard {i} still holds {} message(s) after drain with {workers} worker(s)",
                shard.depth
            );
        }
        assert_eq!(
            imp.sketch_states(),
            truth,
            "{workers}-worker pool diverged from the sequential store under skew"
        );
        assert!(
            workers < 2 || stats.steals >= 1,
            "no steals with {workers} workers under a {:.0}% hot-table stream — \
             idle workers must drain the hot shard: {stats:?}",
            hot_share * 100.0
        );
        // Steal-aware placement invariants. The victim-selection gauges
        // are deliberately racy (a stale pick costs one miss), so the
        // hottest-by-high-water shard is not *always* the top victim;
        // what must hold exactly: every steal is attributed to exactly
        // one victim, and every victim actually had backlog to steal.
        let hot_stolen = if workers >= 2 && stats.steals >= 1 {
            assert_eq!(
                stats.stolen_from.iter().sum::<u64>(),
                stats.steals,
                "per-victim steal accounting must sum to the steal count: {stats:?}"
            );
            for (i, (stolen, shard)) in stats.stolen_from.iter().zip(&stats.per_shard).enumerate() {
                assert!(
                    *stolen == 0 || shard.max_depth > 0,
                    "shard {i} was stolen from {stolen} time(s) but its inbox \
                     high-water is zero — thieves must target backlogged shards \
                     (stolen_from {:?}, per-shard high-water {:?})",
                    stats.stolen_from,
                    stats
                        .per_shard
                        .iter()
                        .map(|s| s.max_depth)
                        .collect::<Vec<_>>()
                );
            }
            let hottest = stats
                .per_shard
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.max_depth)
                .map(|(i, _)| i)
                .unwrap();
            stats.stolen_from[hottest]
        } else {
            0
        };

        report.add(
            Record::new("skew", format!("w{workers}"))
                .time("drain", drained)
                .count("routed_batches", stats.routed_batches, true)
                .count("maintain_runs", stats.maintain_runs, false)
                .count("coalesced_batches", stats.coalesced_batches, false)
                .count("backpressure_stalls", stats.backpressure_stalls, false)
                .count("staged_updates", stats.staged_updates, false)
                .count("steals", stats.steals, false)
                .count("stolen_batches", stats.stolen_batches, false)
                .count("hot_shard_stolen_from", hot_stolen, false)
                .count("max_queue_depth", max_depth, false),
        );
        out.push(vec![
            workers.to_string(),
            ms(drained.as_secs_f64() * 1e3),
            stats.maintain_runs.to_string(),
            stats.routed_batches.to_string(),
            stats.coalesced_batches.to_string(),
            stats.backpressure_stalls.to_string(),
            stats.steals.to_string(),
            stats.stolen_batches.to_string(),
            max_depth.to_string(),
        ]);
    }

    print_table(
        "skew: Zipfian stream through 1/2/4-worker pools",
        &[
            "workers",
            "drain",
            "runs",
            "routed",
            "coalesced",
            "stalls",
            "steals",
            "stolen",
            "max q",
        ],
        &out,
    );
    println!(
        "\nall pools drained and byte-identical to the sequential store under skew ✓ \
         (hot shard drained with help from thieves)"
    );
    report.finish();
}
