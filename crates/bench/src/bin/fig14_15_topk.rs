//! Figures 14 & 15: top-k maintenance under deletion strategies.
//!
//! §8.4.3: a top-10 query over a table of ~50k tuples / 5k groups; the
//! top-k state stores only the best l ∈ {20, 50, 100} entries; deletion
//! strategies: (1) always delete the 2 minimal groups, (2) delete random
//! tuples, (3) R-M ratios 2:1 and 4:1. Fig. 14 reports runtime (recaptures
//! dominate), Fig. 15 the state memory over the update sequence.

use imp_bench::*;
use imp_core::maintain::SketchMaintainer;
use imp_core::ops::OpConfig;
use imp_data::queries;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{topk_delete_stream, TopKDeleteStrategy, WorkloadOp};
use imp_engine::Database;
use std::sync::Arc;

fn run_strategy(
    strategy: TopKDeleteStrategy,
    label: &str,
    rows: usize,
    groups: i64,
    out14: &mut Vec<Vec<String>>,
    out15: &mut Vec<Vec<String>>,
    report: &mut BenchReport,
) {
    let updates = scaled(150, 30);
    for l in [20usize, 50, 100] {
        let mut db = Database::new();
        load(
            &mut db,
            &SyntheticConfig {
                name: "tk".into(),
                rows,
                groups,
                ..Default::default()
            },
        )
        .unwrap();
        let sql = queries::q_topk("tk", 10);
        let plan = db.plan_sql(&sql).unwrap();
        let pset = pset_for(&db, "tk", "a", 100);
        let cfg = OpConfig {
            topk_buffer: Some(l),
            minmax_buffer: Some(l),
            ..bench_op_config()
        };
        let (mut m, _) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
        let stream = topk_delete_stream("tk", strategy, updates, 20, groups, rows, 5);
        let mut times = Vec::new();
        let mut recaptures = 0usize;
        let mut mem_samples: Vec<usize> = Vec::new();
        for op in &stream {
            let WorkloadOp::Update { sql, .. } = op else {
                continue;
            };
            db.execute_sql(sql).unwrap();
            let (t, report) = time_once(|| m.maintain(&db).unwrap());
            times.push(t);
            if report.recaptured {
                recaptures += 1;
            }
            mem_samples.push(report.state_bytes);
        }
        out14.push(vec![
            label.to_string(),
            l.to_string(),
            ms(median_ms(times.clone())),
            recaptures.to_string(),
        ]);
        // Memory trajectory: start / quartiles / end (Fig. 15 curves).
        let pick = |f: f64| mem_samples[((mem_samples.len() - 1) as f64 * f) as usize];
        report.add(
            Record::new("topk", format!("{label}/l{l}"))
                .time_stats("maintain", &criterion::sample_stats(&times))
                .count("recaptures", recaptures as u64, true)
                .heap("state_bytes_start", pick(0.0) as u64)
                .heap("state_bytes_end", pick(1.0) as u64),
        );
        out15.push(vec![
            label.to_string(),
            l.to_string(),
            format!("{:.1}KB", pick(0.0) as f64 / 1e3),
            format!("{:.1}KB", pick(0.25) as f64 / 1e3),
            format!("{:.1}KB", pick(0.5) as f64 / 1e3),
            format!("{:.1}KB", pick(0.75) as f64 / 1e3),
            format!("{:.1}KB", pick(1.0) as f64 / 1e3),
        ]);
    }
}

fn main() {
    let rows = scaled(20_000, 5_000);
    let groups = (rows / 10) as i64; // ~10 tuples per group, as in §8.4.3
    println!("Fig. 14/15 — top-k deletion strategies ({rows} rows, {groups} groups)");
    let mut out14 = Vec::new();
    let mut out15 = Vec::new();
    let mut report = BenchReport::new("fig14_15_topk");
    run_strategy(
        TopKDeleteStrategy::MinGroups,
        "min-groups",
        rows,
        groups,
        &mut out14,
        &mut out15,
        &mut report,
    );
    run_strategy(
        TopKDeleteStrategy::Ratio {
            random: 2,
            min_group: 1,
        },
        "2:1",
        rows,
        groups,
        &mut out14,
        &mut out15,
        &mut report,
    );
    run_strategy(
        TopKDeleteStrategy::Ratio {
            random: 4,
            min_group: 1,
        },
        "4:1",
        rows,
        groups,
        &mut out14,
        &mut out15,
        &mut report,
    );
    run_strategy(
        TopKDeleteStrategy::Random,
        "random",
        rows,
        groups,
        &mut out14,
        &mut out15,
        &mut report,
    );
    print_table(
        "Fig. 14: median maintenance time + full recaptures per run",
        &["strategy", "l", "median", "recaptures"],
        &out14,
    );
    print_table(
        "Fig. 15: state memory over the update sequence (quartiles)",
        &["strategy", "l", "0%", "25%", "50%", "75%", "100%"],
        &out15,
    );
    report.finish();
}
