//! Figure 10: incremental vs. full maintenance on the Crimes dataset.
//!
//! CQ1 (crimes per beat/year) and CQ2 (areas with >1000 crimes) over the
//! synthetic Chicago-crimes substitute, realistic delta sizes 10..1000.
//! Expected shape: IMP beats FM by ≥2 orders of magnitude.

use imp_bench::*;
use imp_data::queries::{CRIMES_CQ1, CRIMES_CQ2};
use imp_data::workload::WorkloadOp;
use imp_engine::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn crime_inserts(n_updates: usize, delta: usize, start_id: usize, seed: u64) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut id = start_id as i64;
    (0..n_updates)
        .map(|_| {
            let rows: Vec<String> = (0..delta)
                .map(|_| {
                    let beat = rng.gen_range(0..imp_data::crimes::BEATS);
                    let district = beat * imp_data::crimes::DISTRICTS / imp_data::crimes::BEATS;
                    let ward = beat * imp_data::crimes::WARDS / imp_data::crimes::BEATS;
                    let ca = beat * imp_data::crimes::COMMUNITY_AREAS / imp_data::crimes::BEATS;
                    let year = rng.gen_range(2001..2025);
                    id += 1;
                    format!("({id}, {year}, {beat}, {district}, {ward}, {ca}, 'THEFT', false)")
                })
                .collect();
            WorkloadOp::Update {
                sql: format!("INSERT INTO crimes VALUES {}", rows.join(", ")),
                rows: delta,
            }
        })
        .collect()
}

fn crime_deletes(n_updates: usize, delta: usize, max_id: usize, seed: u64) -> Vec<WorkloadOp> {
    imp_data::workload::delete_stream("crimes", n_updates, delta, max_id, seed)
}

fn main() {
    let rows = scaled(120_000, 20_000);
    println!("Fig. 10 — Crimes dataset ({rows} rows; substitution: synthetic generator)");
    let mut db = Database::new();
    imp_data::crimes::load(&mut db, rows, 11).unwrap();
    let mut report = BenchReport::new("fig10_crimes");

    // (a) CQ1/CQ2, inserts.
    let mut out = Vec::new();
    for (name, sql) in [("CQ1", CRIMES_CQ1), ("CQ2", CRIMES_CQ2)] {
        for delta in [10usize, 50, 100, 500, 1000] {
            let plan = db.plan_sql(sql).unwrap();
            let pset = pset_for(&db, "crimes", "beat", 100);
            let updates = crime_inserts(reps(), delta, rows * 10, delta as u64);
            let m = measure_inc_vs_full(&mut db, &plan, &pset, &updates, bench_op_config());
            report.add(
                Record::new("inc_vs_full", format!("{name}/d{delta}"))
                    .time_stats("imp", &m.imp_stats)
                    .time_stats("fm", &m.fm_stats)
                    .count("recaptures", m.recaptures as u64, true)
                    .heap("delta_bytes_pooled", m.metrics.delta_bytes_pooled)
                    .ratio("fm_over_imp", m.fm_ms / m.imp_ms.max(1e-6)),
            );
            out.push(vec![
                name.to_string(),
                delta.to_string(),
                ms(m.imp_ms),
                ms(m.fm_ms),
                format!("{:.0}x", m.fm_ms / m.imp_ms.max(1e-6)),
            ]);
        }
    }
    print_table(
        "Fig. 10a: IMP vs FM per maintenance run",
        &["query", "delta", "IMP", "FM", "FM/IMP"],
        &out,
    );

    // (b) insert vs delete.
    let mut out = Vec::new();
    for delta in [10usize, 100, 1000] {
        let plan = db.plan_sql(CRIMES_CQ1).unwrap();
        let pset = pset_for(&db, "crimes", "beat", 100);
        let ins = crime_inserts(reps(), delta, rows * 20, 31 + delta as u64);
        let m_ins = measure_inc_vs_full(&mut db, &plan, &pset, &ins, bench_op_config());
        let del = crime_deletes(reps(), delta, rows, 37 + delta as u64);
        let m_del = measure_inc_vs_full(&mut db, &plan, &pset, &del, bench_op_config());
        report.add(
            Record::new("insert_vs_delete", format!("d{delta}"))
                .time_stats("insert", &m_ins.imp_stats)
                .time_stats("delete", &m_del.imp_stats),
        );
        out.push(vec![delta.to_string(), ms(m_ins.imp_ms), ms(m_del.imp_ms)]);
    }
    print_table(
        "Fig. 10b: insert vs delete maintenance time (IMP, CQ1)",
        &["delta", "insert", "delete"],
        &out,
    );
    report.finish();
}
