//! Figure 16: cost of eager maintenance vs. batch size.
//!
//! "Measuring the total maintenance cost for 1000 updates that are
//! processed in batches of varying sizes using the eager strategy. …
//! batch sizes below 50 should be avoided" (§8.5). Two queries:
//! Q_endtoend (aggregation + HAVING) and Q_joinsel at 5% selectivity.

use imp_bench::*;
use imp_core::maintain::SketchMaintainer;
use imp_data::queries;
use imp_data::synthetic::{load, load_join_helper, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use std::sync::Arc;

fn run_query(
    sql: &str,
    table: &str,
    helper: Option<(&str, u32)>,
    out: &mut Vec<Vec<String>>,
    report: &mut BenchReport,
) {
    let rows = scaled(20_000, 2_000);
    let groups = 1_000i64;
    let total_updates = scaled(1000, 100);
    for batch in [1usize, 10, 50, 100, 500] {
        let mut db = Database::new();
        load(
            &mut db,
            &SyntheticConfig {
                name: table.into(),
                rows,
                groups,
                ..Default::default()
            },
        )
        .unwrap();
        if let Some((h, sel)) = helper {
            load_join_helper(&mut db, h, groups, sel, 1, 5).unwrap();
        }
        let plan = db.plan_sql(sql).unwrap();
        let pset = pset_for(&db, table, "a", 100);
        let (mut m, _) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), bench_op_config(), true)
                .unwrap();
        // Each "update" inserts one row (the paper batches row-level
        // updates); maintenance runs once per `batch` updates.
        let ups = insert_stream(table, total_updates, 1, groups, rows * 4, 3);
        let mut total = std::time::Duration::ZERO;
        let mut runs = 0usize;
        for (i, op) in ups.iter().enumerate() {
            let WorkloadOp::Update { sql, .. } = op else {
                continue;
            };
            db.execute_sql(sql).unwrap();
            if (i + 1) % batch == 0 {
                let (t, _) = time_once(|| m.maintain(&db).unwrap());
                total += t;
                runs += 1;
            }
        }
        report.add(
            Record::new("batching", format!("{}/b{batch}", sql_label(sql)))
                .time("maintain_total", total)
                .count("maint_runs", runs as u64, false),
        );
        out.push(vec![
            sql_label(sql),
            batch.to_string(),
            runs.to_string(),
            ms(total.as_secs_f64() * 1e3),
        ]);
    }
}

fn sql_label(sql: &str) -> String {
    if sql.contains("JOIN") {
        "Q_joinsel(5%)".into()
    } else {
        "Q_endtoend".into()
    }
}

fn main() {
    println!("Fig. 16 — eager maintenance batching");
    let mut out = Vec::new();
    let mut report = BenchReport::new("fig16_batching");
    let q1 = queries::q_endtoend(1_400, 1_700);
    run_query(&q1.replace("edb1", "eb"), "eb", None, &mut out, &mut report);
    let q2 = queries::q_joinsel("ej", "hj");
    run_query(&q2, "ej", Some(("hj", 5)), &mut out, &mut report);
    print_table(
        "Fig. 16: total maintenance cost for the update stream",
        &["query", "batch", "maint runs", "total maint"],
        &out,
    );
    report.finish();
}
