//! Figures 11 & 12: microbenchmarks over the synthetic dataset.
//!
//! Subcommands (run all when none given):
//! * `having`  — Fig. 11a/12a: #aggregation functions {1,2,3,10}
//! * `groups`  — Fig. 11b/12b: #groups {50, 1k, 5k, 50k}
//! * `join1n`  — Fig. 11c/12c: 1-n joins
//! * `joinmn`  — Fig. 11d/12d: m-n joins
//! * `joinsel` — Fig. 11e/12e: join selectivity {1,5,10}%
//! * `frags`   — Fig. 11f/12f: #fragments {10..5000}
//!
//! Each experiment prints the realistic-delta series (Fig. 11: deltas
//! 10..1000 rows) and the break-even sweep (Fig. 12: deltas as a % of the
//! table, looking for the FM/IMP crossover).
//!
//! The realistic tables also report the delta pipeline's memory and
//! allocation behaviour: `Δheap pool` is the pool-aware
//! `delta_heap_size` of the maintenance input batches (shared rows and
//! hash-consed annotations counted once), `Δheap flat` is what the same
//! batches would occupy in the flat one-bitvector-per-row representation,
//! and `memo` is the share of annotation unions answered by the pool's
//! memo table instead of being computed (and allocated) again.
//!
//! With `IMP_OBS=1` every measured maintain also records into the
//! `imp_core::obs` bench hub (histograms + operator-level spans), and the
//! harness writes `TRACE_fig11_micro.json` / `METRICS_fig11_micro.{json,prom}`
//! next to its `BENCH_*.json` (validated by `bench_check --check-obs`).

use criterion::Throughput;
use imp_bench::*;
use imp_data::queries;
use imp_data::synthetic::{load, load_join_helper, SyntheticConfig};
use imp_data::workload::insert_stream;
use imp_engine::Database;

fn db_with(rows: usize, groups: i64, name: &str) -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            name: name.into(),
            rows,
            groups,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

/// Shared header of every Fig. 11 realistic-delta table.
const REALISTIC_HEADERS: [&str; 11] = [
    "config",
    "delta",
    "IMP",
    "rows/s",
    "FM",
    "FM/IMP",
    "db rt",
    "rt saved",
    "\u{394}heap pool",
    "\u{394}heap flat",
    "memo",
];

/// Compact rows-per-second for the console tables.
fn rate_h(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}K", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// Measure one (query, table) config across realistic + break-even deltas.
#[allow(clippy::too_many_arguments)]
fn sweep(
    db: &mut Database,
    sql: &str,
    table: &str,
    table_rows: usize,
    groups: i64,
    frags: usize,
    label: String,
    experiment: &str,
    report: &mut BenchReport,
    realistic: &mut Vec<Vec<String>>,
    breakeven: &mut Vec<Vec<String>>,
) {
    let plan = db.plan_sql(sql).unwrap();
    for delta in [10usize, 100, 1000] {
        let pset = pset_for(db, table, "a", frags);
        let ups = insert_stream(table, reps(), delta, groups, table_rows * 8, delta as u64);
        let m = measure_inc_vs_full(db, &plan, &pset, &ups, bench_op_config());
        let memo_total = m.metrics.pool_unions_computed + m.metrics.pool_union_memo_hits;
        // Each measured iteration maintains one delta batch of `delta`
        // rows; the criterion-shim throughput over the median sample
        // gives a scale-comparable rows/sec trajectory (never gated —
        // higher is better).
        let rows_per_sec = m
            .imp_stats
            .throughput_per_sec(Throughput::Elements(delta as u64))
            .unwrap_or(0.0);
        report.add(
            Record::new(experiment, format!("{label}/d{delta}"))
                .time_stats("imp", &m.imp_stats)
                .time_stats("fm", &m.fm_stats)
                .ratio("imp_rows_per_sec", rows_per_sec)
                // Maintain-latency tail from the obs log-bucketed
                // histogram (trajectory-only: tails are noisy at smoke
                // scale, the gated medians catch regressions).
                .metric("imp_ns_p50", m.imp_hist.p50() as f64, Unit::Ns, false)
                .metric("imp_ns_p95", m.imp_hist.p95() as f64, Unit::Ns, false)
                .metric("imp_ns_p99", m.imp_hist.p99() as f64, Unit::Ns, false)
                .count("db_roundtrips", m.metrics.db_roundtrips, true)
                .count("rt_saved", m.metrics.db_roundtrips_avoided, false)
                .heap("delta_bytes_pooled", m.metrics.delta_bytes_pooled)
                .metric(
                    "delta_bytes_flat",
                    m.metrics.delta_bytes_flat as f64,
                    Unit::Bytes,
                    false,
                )
                .ratio(
                    "memo_rate",
                    m.metrics.pool_union_memo_hits as f64 / (memo_total as f64).max(1.0),
                ),
        );
        realistic.push(vec![
            label.clone(),
            delta.to_string(),
            ms(m.imp_ms),
            rate_h(rows_per_sec),
            ms(m.fm_ms),
            format!("{:.1}x", m.fm_ms / m.imp_ms.max(1e-6)),
            m.metrics.db_roundtrips.to_string(),
            m.metrics.db_roundtrips_avoided.to_string(),
            bytes_h(m.metrics.delta_bytes_pooled),
            bytes_h(m.metrics.delta_bytes_flat),
            memo_rate(&m.metrics),
        ]);
    }
    for pct in [1usize, 4, 16, 32, 64] {
        let delta = (table_rows * pct / 100).max(1);
        let pset = pset_for(db, table, "a", frags);
        let ups = insert_stream(table, 1, delta, groups, table_rows * 16, 77 + pct as u64);
        let m = measure_inc_vs_full(db, &plan, &pset, &ups, bench_op_config());
        report.add(
            Record::new(format!("{experiment}_breakeven"), format!("{label}/p{pct}"))
                .metric("imp_ns", m.imp_ms * 1e6, Unit::Ns, false)
                .metric("fm_ns", m.fm_ms * 1e6, Unit::Ns, false),
        );
        breakeven.push(vec![
            label.clone(),
            format!("{pct}%"),
            ms(m.imp_ms),
            ms(m.fm_ms),
            if m.imp_ms > m.fm_ms {
                "FM wins"
            } else {
                "IMP wins"
            }
            .to_string(),
        ]);
    }
}

fn exp_having(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let mut db = db_with(rows, 5_000, "r500");
    let (mut real, mut brk) = (vec![], vec![]);
    for n_aggs in [1usize, 2, 3, 10] {
        let sql = queries::q_having("r500", n_aggs);
        sweep(
            &mut db,
            &sql,
            "r500",
            rows,
            5_000,
            100,
            format!("{n_aggs} aggs"),
            "having",
            report,
            &mut real,
            &mut brk,
        );
    }
    print_table(
        "Fig. 11a: Q_having — #aggregation functions (realistic deltas)",
        &REALISTIC_HEADERS,
        &real,
    );
    print_table(
        "Fig. 12a: Q_having — break-even sweep",
        &["config", "delta%", "IMP", "FM", "winner"],
        &brk,
    );
}

fn exp_groups(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let (mut real, mut brk) = (vec![], vec![]);
    for groups in [50i64, 1_000, 5_000, 50_000] {
        let name = format!("t{groups}g");
        let mut db = db_with(rows, groups, &name);
        // HAVING threshold ~ group domain (paper A.1.2 scales it too).
        let sql = queries::q_groups(&name, (groups as f64 * 1.6) as i64);
        sweep(
            &mut db,
            &sql,
            &name,
            rows,
            groups,
            100,
            format!("{groups} groups"),
            "groups",
            report,
            &mut real,
            &mut brk,
        );
    }
    print_table(
        "Fig. 11b: Q_groups — #groups (realistic deltas)",
        &REALISTIC_HEADERS,
        &real,
    );
    print_table(
        "Fig. 12b: Q_groups — break-even sweep",
        &["config", "delta%", "IMP", "FM", "winner"],
        &brk,
    );
}

fn exp_join_1n(report: &mut BenchReport) {
    // 1-n joins: n = rows/groups partners per key in the main table.
    let rows = scaled(20_000, 2_000);
    let (mut real, mut brk) = (vec![], vec![]);
    for (label, groups) in [
        ("1-20", (rows / 20) as i64),
        ("1-200", (rows / 200) as i64),
        ("1-2000", (rows / 2000).max(1) as i64),
    ] {
        let name = format!("j{groups}");
        let mut db = db_with(rows, groups, &name);
        load_join_helper(&mut db, "tjoinhelp", groups, 100, 1, 5).unwrap();
        let sql = queries::q_join(&name, "tjoinhelp", 1_000_000, (groups * 2).max(1000));
        sweep(
            &mut db,
            &sql,
            &name,
            rows,
            groups,
            100,
            label.to_string(),
            "join1n",
            report,
            &mut real,
            &mut brk,
        );
    }
    print_table(
        "Fig. 11c: Q_join 1-n (realistic deltas)",
        &REALISTIC_HEADERS,
        &real,
    );
    print_table(
        "Fig. 12c: Q_join 1-n — break-even sweep",
        &["config", "delta%", "IMP", "FM", "winner"],
        &brk,
    );
}

fn exp_join_mn(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let groups = (rows / 10) as i64;
    let (mut real, mut brk) = (vec![], vec![]);
    for m in [2usize, 20, 50] {
        let name = format!("jm{m}");
        let mut db = db_with(rows, groups, &name);
        let helper = format!("hm{m}");
        load_join_helper(&mut db, &helper, groups, 100, m, 5).unwrap();
        let sql = queries::q_join(&name, &helper, 1_000_000, groups * 2);
        sweep(
            &mut db,
            &sql,
            &name,
            rows,
            groups,
            100,
            format!("{m}-n"),
            "joinmn",
            report,
            &mut real,
            &mut brk,
        );
    }
    print_table(
        "Fig. 11d: Q_join m-n (realistic deltas)",
        &REALISTIC_HEADERS,
        &real,
    );
    print_table(
        "Fig. 12d: Q_join m-n — break-even sweep",
        &["config", "delta%", "IMP", "FM", "winner"],
        &brk,
    );
}

fn exp_joinsel(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let groups = 2_000i64;
    let (mut real, mut brk) = (vec![], vec![]);
    for sel in [1u32, 5, 10] {
        let name = format!("js{sel}");
        let mut db = db_with(rows, groups, &name);
        let helper = format!("hs{sel}");
        load_join_helper(&mut db, &helper, groups, sel, 1, 5).unwrap();
        let sql = queries::q_joinsel(&name, &helper);
        sweep(
            &mut db,
            &sql,
            &name,
            rows,
            groups,
            100,
            format!("{sel}% sel"),
            "joinsel",
            report,
            &mut real,
            &mut brk,
        );
    }
    print_table(
        "Fig. 11e: Q_joinsel — join selectivity (realistic deltas)",
        &REALISTIC_HEADERS,
        &real,
    );
    print_table(
        "Fig. 12e: Q_joinsel — break-even sweep",
        &["config", "delta%", "IMP", "FM", "winner"],
        &brk,
    );
}

fn exp_frags(report: &mut BenchReport) {
    let rows = scaled(20_000, 2_000);
    let groups = 2_000i64;
    let (mut real, mut brk) = (vec![], vec![]);
    for frags in [10usize, 100, 1000, 5000] {
        let name = format!("tf{frags}");
        let mut db = db_with(rows, groups, &name);
        let helper = format!("hf{frags}");
        load_join_helper(&mut db, &helper, groups, 100, 1, 5).unwrap();
        let sql = queries::q_sketch(&name, &helper);
        sweep(
            &mut db,
            &sql,
            &name,
            rows,
            groups,
            frags,
            format!("{frags} frags"),
            "frags",
            report,
            &mut real,
            &mut brk,
        );
    }
    print_table(
        "Fig. 11f: Q_sketch — #fragments (realistic deltas)",
        &REALISTIC_HEADERS,
        &real,
    );
    print_table(
        "Fig. 12f: Q_sketch — break-even sweep",
        &["config", "delta%", "IMP", "FM", "winner"],
        &brk,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    println!("Fig. 11/12 — microbenchmarks ({which})");
    let mut report = BenchReport::new("fig11_micro");
    match which {
        "having" => exp_having(&mut report),
        "groups" => exp_groups(&mut report),
        "join1n" => exp_join_1n(&mut report),
        "joinmn" => exp_join_mn(&mut report),
        "joinsel" => exp_joinsel(&mut report),
        "frags" => exp_frags(&mut report),
        _ => {
            exp_having(&mut report);
            exp_groups(&mut report);
            exp_join_1n(&mut report);
            exp_join_mn(&mut report);
            exp_joinsel(&mut report);
            exp_frags(&mut report);
        }
    }
    report.finish();
    // With IMP_OBS=1 the measured maintains recorded into the bench obs
    // hub; export its trace/metrics artifacts next to the report.
    write_obs_artifacts("fig11_micro");
}
