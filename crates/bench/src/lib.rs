//! # imp-bench
//!
//! Benchmark harness regenerating every table and figure of the IMP
//! paper's evaluation (§8). One binary per figure (see `src/bin/`); each
//! prints the same series the paper plots, as aligned text tables.
//! Criterion micro-benchmarks live in `benches/`.
//!
//! Scale: the paper runs on a 12-core/128 GB server with 1–10 GB datasets;
//! these harnesses default to laptop-scale sizes. Set `IMP_BENCH_SCALE`
//! (float, default 1.0) to scale row counts up or down — the *shapes*
//! (who wins, slopes in delta size, break-even crossovers as a fraction of
//! the table) are scale-free.

pub mod harness;

pub use harness::*;
