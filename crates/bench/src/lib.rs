//! # imp-bench
//!
//! Benchmark harness regenerating every table and figure of the IMP
//! paper's evaluation (§8). One binary per figure (see `src/bin/`); each
//! prints the same series the paper plots, as aligned text tables.
//! Criterion micro-benchmarks live in `benches/`.
//!
//! Scale: the paper runs on a 12-core/128 GB server with 1–10 GB datasets;
//! these harnesses default to laptop-scale sizes. Set `IMP_BENCH_SCALE`
//! (float, default 1.0) to scale row counts up or down — the *shapes*
//! (who wins, slopes in delta size, break-even crossovers as a fraction of
//! the table) are scale-free.
//!
//! Beyond the paper's figures, two stress harnesses exercise regimes
//! the evaluation skips: `fig_skew` (Zipfian update routing against the
//! sharded scheduler) and `fig_churn` (insert+delete streams dominated
//! by Δ⋈Δ cancellations). Every harness additionally writes its
//! machine-readable trajectory point as `BENCH_<harness>.json` (see
//! [`report`]), and the `bench_check` binary gates CI on regressions
//! against the committed `bench/baseline/` snapshot.

pub mod harness;
pub mod report;

pub use harness::*;
pub use report::{BenchReport, Record, Unit};
