//! Correctness of the bench harness itself: the FM baseline must answer
//! every query in the stream (regression test for the first-occurrence
//! branch that captured a sketch but never executed the rewritten
//! query), and malformed env knobs must fail loudly instead of being
//! silently replaced by defaults.

use imp_bench::{parse_env, run_fm, run_ns};
use imp_data::synthetic::{load, SyntheticConfig};
use imp_data::workload::{mixed_workload, WorkloadOp};
use imp_engine::Database;

fn fresh_db(rows: usize, groups: i64) -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            rows,
            groups,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

#[test]
fn fm_answers_every_query_in_the_stream() {
    let (rows, groups) = (2_000usize, 100i64);
    let wl = mixed_workload(1, 2, 60, 20, groups, rows, 7);
    let query_ops = wl
        .ops
        .iter()
        .filter(|op| matches!(op, WorkloadOp::Query(_)))
        .count();
    assert!(query_ops > 0, "workload must contain queries");

    // NS executes each op exactly once — the ground-truth op count.
    let mut db = fresh_db(rows, groups);
    run_ns(&mut db, &wl.ops);

    let mut db = fresh_db(rows, groups);
    let fm = run_fm(&mut db, &wl.ops, ("edb1", "a", 50));
    assert_eq!(
        fm.queries_executed, query_ops,
        "FM must answer every SELECT like the NS baseline does \
         (first-occurrence captures included)"
    );
    assert!(
        fm.captures >= 1,
        "the stream's first query must take the first-occurrence branch"
    );
    assert!(
        fm.recaptures >= 1,
        "interleaved updates must force stale recaptures"
    );
    // Every answered query is a capture or came from the stored path.
    assert!(fm.captures <= fm.queries_executed);
}

#[test]
fn parse_env_accepts_well_formed_values() {
    let scale: f64 = parse_env("IMP_BENCH_SCALE", "0.25");
    assert_eq!(scale, 0.25);
    let reps: usize = parse_env("IMP_BENCH_REPS", " 12 ");
    assert_eq!(reps, 12);
}

#[test]
#[should_panic(expected = "IMP_BENCH_SCALE")]
fn parse_env_panics_on_malformed_scale() {
    let _: f64 = parse_env("IMP_BENCH_SCALE", "0.01x");
}

#[test]
#[should_panic(expected = "IMP_BENCH_REPS")]
fn parse_env_panics_on_malformed_reps() {
    let _: usize = parse_env("IMP_BENCH_REPS", "three");
}
