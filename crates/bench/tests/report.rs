//! Integration tests for `imp_bench::report`: schema round-trip, the
//! regression gate's threshold behavior, and output determinism.
//!
//! Reports are built as struct literals (not [`BenchReport::new`]) so the
//! tests never read or mutate the process environment.

use imp_bench::report::{compare, BenchReport, DEFAULT_GATE_FACTOR};
use imp_bench::{Record, Unit};

fn report_with(records: Vec<Record>) -> BenchReport {
    BenchReport {
        harness: "test".into(),
        scale: 0.5,
        reps: 3,
        git_sha: "deadbeef".into(),
        records,
    }
}

fn sample_records() -> Vec<Record> {
    vec![
        Record::new("inc_vs_full", "Q1/d10")
            .time_ms("imp", 1.25)
            .time_ms("fm", 40.0)
            .count("recaptures", 2, true)
            .count("rt_saved", 17, false)
            .ratio("fm_over_imp", 32.0),
        Record::new("inc_vs_full", "Q1/d1000")
            .time_ms("imp", 9.5)
            .time_ms("fm", 41.0)
            .heap("delta_bytes_pooled", 123_456),
        Record::new("mixed", "1U5Q/d20")
            .time("imp_total", std::time::Duration::from_millis(77))
            .metric("imp_per_op", 3.5e5, Unit::Ns, false),
    ]
}

#[test]
fn schema_round_trips() {
    let report = report_with(sample_records());
    let json = report.to_json();
    let parsed = BenchReport::from_json(&json).unwrap();
    assert_eq!(parsed.harness, "test");
    assert_eq!(parsed.scale, 0.5);
    assert_eq!(parsed.reps, 3);
    assert_eq!(parsed.git_sha, "deadbeef");
    assert_eq!(parsed.records.len(), 3);
    // Parsed records are to_json's sorted order; compare as sets of
    // (experiment, config) keys plus full metric payloads.
    for rec in &report.records {
        let found = parsed
            .records
            .iter()
            .find(|r| r.experiment == rec.experiment && r.config == rec.config)
            .unwrap_or_else(|| {
                panic!(
                    "record {}/{} lost in round-trip",
                    rec.experiment, rec.config
                )
            });
        let mut want = rec.metrics.clone();
        want.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(found.metrics, want);
    }
    // A second round-trip is byte-stable.
    assert_eq!(parsed.to_json(), json);
}

#[test]
fn output_is_stable_under_shuffled_insertion() {
    let forward = report_with(sample_records());
    let mut shuffled_records = sample_records();
    shuffled_records.reverse();
    shuffled_records.swap(0, 1);
    let shuffled = report_with(shuffled_records);
    assert_eq!(forward.to_json(), shuffled.to_json());
}

#[test]
fn gate_passes_without_regression() {
    let baseline = report_with(sample_records());
    // Mild noise well inside factor 2 + floors.
    let current = report_with(vec![
        Record::new("inc_vs_full", "Q1/d10")
            .time_ms("imp", 1.4)
            .time_ms("fm", 43.0)
            .count("recaptures", 3, true)
            .count("rt_saved", 16, false)
            .ratio("fm_over_imp", 30.0),
        Record::new("inc_vs_full", "Q1/d1000")
            .time_ms("imp", 10.0)
            .time_ms("fm", 39.0)
            .heap("delta_bytes_pooled", 125_000),
        Record::new("mixed", "1U5Q/d20")
            .time("imp_total", std::time::Duration::from_millis(80))
            .metric("imp_per_op", 3.6e5, Unit::Ns, false),
    ]);
    let outcome = compare(&baseline, &current, DEFAULT_GATE_FACTOR);
    assert!(
        outcome.regressions.is_empty(),
        "clean run flagged: {outcome:?}"
    );
    // All gated metrics were seen: imp/fm/recaptures, imp/fm/heap, imp_total.
    assert_eq!(outcome.compared, 7);
    assert_eq!(outcome.missing_records, 0);
}

#[test]
fn gate_fails_on_synthetic_2x_regression() {
    let baseline = report_with(sample_records());
    let mut records = sample_records();
    // fm 40 ms → 90 ms: past 2 × 40 + 5 ms floor.
    records[0] = Record::new("inc_vs_full", "Q1/d10")
        .time_ms("imp", 1.25)
        .time_ms("fm", 90.0)
        .count("recaptures", 2, true)
        .count("rt_saved", 17, false)
        .ratio("fm_over_imp", 32.0);
    let outcome = compare(&baseline, &report_with(records), DEFAULT_GATE_FACTOR);
    assert_eq!(outcome.regressions.len(), 1, "{outcome:?}");
    let r = &outcome.regressions[0];
    assert_eq!(
        (r.experiment.as_str(), r.config.as_str(), r.metric.as_str()),
        ("inc_vs_full", "Q1/d10", "fm")
    );
    assert!((r.factor - 2.25).abs() < 1e-9);
}

#[test]
fn gate_floor_absorbs_smoke_scale_noise() {
    // 0.1 ms → 0.4 ms is 4× but far under the 5 ms Ns floor: not a
    // regression. The same 4× at 40 ms is.
    let baseline = report_with(vec![
        Record::new("e", "small").time_ms("t", 0.1),
        Record::new("e", "large").time_ms("t", 40.0),
    ]);
    let current = report_with(vec![
        Record::new("e", "small").time_ms("t", 0.4),
        Record::new("e", "large").time_ms("t", 160.0),
    ]);
    let outcome = compare(&baseline, &current, DEFAULT_GATE_FACTOR);
    assert_eq!(outcome.regressions.len(), 1, "{outcome:?}");
    assert_eq!(outcome.regressions[0].config, "large");
}

#[test]
fn missing_records_and_metrics_are_reported_not_ignored() {
    let baseline = report_with(sample_records());
    let current = report_with(vec![
        Record::new("inc_vs_full", "Q1/d10").time_ms("imp", 1.3)
    ]);
    let outcome = compare(&baseline, &current, DEFAULT_GATE_FACTOR);
    assert_eq!(outcome.missing_records, 2);
    // fm + recaptures of the surviving record are gone too.
    assert!(outcome.notes.iter().any(|n| n.contains("metric")));
    assert_eq!(outcome.compared, 1);
}

#[test]
fn cross_scale_reports_are_skipped() {
    let baseline = report_with(sample_records());
    let mut current = report_with(vec![Record::new("e", "c").time_ms("t", 1e9)]);
    current.scale = 1.0;
    let outcome = compare(&baseline, &current, DEFAULT_GATE_FACTOR);
    assert_eq!(outcome.compared, 0);
    assert!(outcome.regressions.is_empty());
    assert!(outcome.notes.iter().any(|n| n.contains("scale mismatch")));
}

#[test]
fn from_json_rejects_other_schema_versions() {
    let json = report_with(vec![])
        .to_json()
        .replace("\"schema_version\": 1", "\"schema_version\": 999");
    let err = BenchReport::from_json(&json).unwrap_err();
    assert!(err.contains("schema_version 999"), "{err}");
}

#[test]
fn file_name_is_keyed_by_harness() {
    assert_eq!(report_with(vec![]).file_name(), "BENCH_test.json");
}
