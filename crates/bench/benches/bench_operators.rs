//! Incremental operator throughput: the merge operator μ (§5.1) and the
//! aggregation operator's per-delta-tuple cost (§5.3 claims O(1) per tuple
//! per aggregation function).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imp_core::ops::MergeOp;
use imp_core::{AnnotPool, DeltaBatch, DeltaEntry};
use imp_storage::row;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

/// Net-zero delta (paired insert/delete per fragment) so repeated
/// application inside the bench loop never underflows the counters.
fn delta(pool: &mut AnnotPool, n: usize, frags: usize) -> DeltaBatch {
    (0..n)
        .map(|i| DeltaEntry {
            row: row![(i / 2) as i64, ((i / 2) % 97) as i64],
            annot: pool.singleton((i / 2) % frags),
            mult: if i % 2 == 1 { -1 } else { 1 },
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut pool = AnnotPool::new(100);
    let d100 = delta(&mut pool, 100, 100);
    let d1000 = delta(&mut pool, 1000, 100);
    let preload: DeltaBatch = delta(&mut pool, 5000, 100)
        .into_iter()
        .map(|d| DeltaEntry {
            mult: d.mult.abs(),
            ..d
        })
        .collect();
    c.bench_function("merge_mu_delta100", |bench| {
        let mut m = MergeOp::new(100);
        // Pre-load counters so deletions never underflow.
        m.process(&preload, &pool).unwrap();
        bench.iter(|| black_box(m.process(black_box(&d100), &pool).unwrap()))
    });
    c.bench_function("merge_mu_delta1000", |bench| {
        let mut m = MergeOp::new(100);
        m.process(&preload, &pool).unwrap();
        bench.iter(|| black_box(m.process(black_box(&d1000), &pool).unwrap()))
    });
}

fn bench_normalize(c: &mut Criterion) {
    let mut pool = AnnotPool::new(100);
    let d = delta(&mut pool, 1000, 100);
    c.bench_function("normalize_delta_1000", |bench| {
        bench.iter(|| black_box(imp_core::normalize_delta(black_box(d.clone()))))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_merge, bench_normalize
}
criterion_main!(benches);
