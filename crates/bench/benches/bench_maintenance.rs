//! End-to-end maintenance benchmarks: capture (= full maintenance) vs
//! incremental maintenance at small deltas — the paper's headline
//! comparison — plus ablations of the §7.2 optimizations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imp_core::maintain::SketchMaintainer;
use imp_core::ops::OpConfig;
use imp_data::synthetic::{load, load_join_helper, SyntheticConfig};
use imp_data::workload::{insert_stream, WorkloadOp};
use imp_engine::Database;
use imp_sketch::{capture, PartitionSet, RangePartition};
use std::sync::Arc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

const ROWS: usize = 10_000;
const GROUPS: i64 = 1_000;

fn setup(name: &str) -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            name: name.into(),
            rows: ROWS,
            groups: GROUPS,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

fn bench_capture_vs_maintain(c: &mut Criterion) {
    let mut db = setup("t");
    let sql = imp_data::queries::q_groups("t", 1_600);
    let plan = db.plan_sql(&sql).unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![RangePartition::equi_depth(&db, "t", "a", 100).unwrap()]).unwrap(),
    );

    c.bench_function("full_maintenance_capture", |bench| {
        bench.iter(|| black_box(capture(&plan, &db, &pset).unwrap().sketch))
    });

    // Incremental: apply one 100-row insert, maintain, repeat. The insert
    // is part of the measured loop but is the same work FM would also pay.
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let ups = insert_stream("t", 4096, 100, GROUPS, ROWS * 10, 5);
    let mut i = 0usize;
    c.bench_function("incremental_maintain_delta100", |bench| {
        bench.iter(|| {
            let WorkloadOp::Update { sql, .. } = &ups[i % ups.len()] else {
                unreachable!()
            };
            i += 1;
            db.execute_sql(sql).unwrap();
            black_box(m.maintain(&db).unwrap())
        })
    });
}

fn bench_ablation_bloom(c: &mut Criterion) {
    for (label, bloom) in [("bloom_on", true), ("bloom_off", false)] {
        let name = format!("tj_{label}");
        let mut db = setup(&name);
        load_join_helper(&mut db, "h", GROUPS, 5, 1, 5).unwrap();
        let sql = imp_data::queries::q_joinsel(&name, "h");
        let plan = db.plan_sql(&sql).unwrap();
        let pset = Arc::new(
            PartitionSet::new(vec![
                RangePartition::equi_depth(&db, &name, "a", 100).unwrap()
            ])
            .unwrap(),
        );
        let cfg = OpConfig {
            bloom,
            ..OpConfig::default()
        };
        let (mut m, _) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
        let ups = insert_stream(&name, 4096, 100, GROUPS, ROWS * 10, 7);
        let mut i = 0usize;
        c.bench_function(&format!("join_maintain_{label}"), |bench| {
            bench.iter(|| {
                let WorkloadOp::Update { sql, .. } = &ups[i % ups.len()] else {
                    unreachable!()
                };
                i += 1;
                db.execute_sql(sql).unwrap();
                black_box(m.maintain(&db).unwrap())
            })
        });
    }
}

fn bench_ablation_pushdown(c: &mut Criterion) {
    for (label, pushdown) in [("pushdown_on", true), ("pushdown_off", false)] {
        let name = format!("tp_{label}");
        let mut db = setup(&name);
        let sql = imp_data::queries::q_selpd(&name, 500);
        let plan = db.plan_sql(&sql).unwrap();
        let pset = Arc::new(
            PartitionSet::new(vec![
                RangePartition::equi_depth(&db, &name, "a", 100).unwrap()
            ])
            .unwrap(),
        );
        let (mut m, _) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), pushdown)
                .unwrap();
        let ups = insert_stream(&name, 4096, 100, GROUPS, ROWS * 10, 9);
        let mut i = 0usize;
        c.bench_function(&format!("selpd_maintain_{label}"), |bench| {
            bench.iter(|| {
                let WorkloadOp::Update { sql, .. } = &ups[i % ups.len()] else {
                    unreachable!()
                };
                i += 1;
                db.execute_sql(sql).unwrap();
                black_box(m.maintain(&db).unwrap())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_capture_vs_maintain, bench_ablation_bloom, bench_ablation_pushdown
}
criterion_main!(benches);
