//! Backend engine benchmarks: full scan vs zone-map-pruned scan (the data
//! skipping the use-rewrite enables), and the use-rewritten query itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imp_core::maintain::SketchMaintainer;
use imp_core::ops::OpConfig;
use imp_data::synthetic::{load, SyntheticConfig};
use imp_engine::Database;
use imp_sketch::{apply_sketch_filter, PartitionSet, RangePartition};
use std::sync::Arc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn setup() -> Database {
    let mut db = Database::new();
    load(
        &mut db,
        &SyntheticConfig {
            rows: 20_000,
            groups: 1_000,
            ..Default::default()
        },
    )
    .unwrap();
    db
}

fn bench_scan_vs_skip(c: &mut Criterion) {
    let db = setup();
    let sql = imp_data::queries::q_endtoend(680, 760);
    let plan = db.plan_sql(&sql).unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::equi_depth(&db, "edb1", "a", 100).unwrap()
        ])
        .unwrap(),
    );
    let (m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let rewritten = apply_sketch_filter(&plan, m.sketch()).unwrap();

    c.bench_function("query_full_scan", |bench| {
        bench.iter(|| black_box(db.execute_plan(&plan).unwrap().rows.len()))
    });
    c.bench_function("query_sketch_skipping", |bench| {
        bench.iter(|| black_box(db.execute_plan(&rewritten).unwrap().rows.len()))
    });
}

fn bench_join_query(c: &mut Criterion) {
    let mut db = setup();
    imp_data::synthetic::load_join_helper(&mut db, "h", 1_000, 100, 1, 5).unwrap();
    let sql = imp_data::queries::q_joinsel("edb1", "h");
    let plan = db.plan_sql(&sql).unwrap();
    c.bench_function("query_join_agg_having", |bench| {
        bench.iter(|| black_box(db.execute_plan(&plan).unwrap().rows.len()))
    });
}

fn bench_sql_frontend(c: &mut Criterion) {
    let db = setup();
    let sql = "SELECT a, avg(b) AS ab, sum(c) AS sc FROM edb1 \
               WHERE b < 500 GROUP BY a HAVING avg(c) < 900 \
               ORDER BY ab DESC LIMIT 10";
    c.bench_function("parse_and_resolve", |bench| {
        bench.iter(|| black_box(db.plan_sql(black_box(sql)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scan_vs_skip, bench_join_query, bench_sql_frontend
}
criterion_main!(benches);
