//! Micro-benchmarks of the storage primitives behind sketches: bitvector
//! union/containment (the sketch algebra of §1), fragment counters, and
//! the bloom filter of §7.2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imp_core::fragcount::FragCounts;
use imp_core::opt::BloomFilter;
use imp_storage::{BitVec, Value};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

fn bench_bitvec(c: &mut Criterion) {
    let a = BitVec::from_bits(5000, (0..5000).step_by(7));
    let b = BitVec::from_bits(5000, (0..5000).step_by(11));
    c.bench_function("bitvec_union_5000", |bench| {
        bench.iter(|| black_box(a.union(&b)))
    });
    c.bench_function("bitvec_subset_5000", |bench| {
        bench.iter(|| black_box(a.is_subset(&b)))
    });
    c.bench_function("bitvec_iter_ones_5000", |bench| {
        bench.iter(|| black_box(a.iter_ones().count()))
    });
}

fn bench_fragcounts(c: &mut Criterion) {
    c.bench_function("fragcounts_small_updates", |bench| {
        bench.iter(|| {
            let mut f = FragCounts::new();
            for i in 0..8u32 {
                f.add(black_box(i), 1);
            }
            for i in 0..8u32 {
                f.add(black_box(i), -1);
            }
            black_box(f.len())
        })
    });
    c.bench_function("fragcounts_large_updates", |bench| {
        bench.iter(|| {
            let mut f = FragCounts::new();
            for i in 0..200u32 {
                f.add(black_box(i % 64), 1);
            }
            black_box(f.to_bits(64))
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut filter = BloomFilter::with_capacity(10_000);
    for i in 0..10_000i64 {
        filter.insert(&[Value::Int(i)]);
    }
    c.bench_function("bloom_query_hit", |bench| {
        bench.iter(|| black_box(filter.may_contain(&[Value::Int(black_box(5000))])))
    });
    c.bench_function("bloom_query_miss", |bench| {
        bench.iter(|| black_box(filter.may_contain(&[Value::Int(black_box(999_999))])))
    });
    c.bench_function("bloom_insert", |bench| {
        let mut f = BloomFilter::with_capacity(10_000);
        let mut i = 0i64;
        bench.iter(|| {
            i += 1;
            f.insert(&[Value::Int(black_box(i))])
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bitvec, bench_fragcounts, bench_bloom
}
criterion_main!(benches);
