//! Differential tests of the backend engine: results of composed operator
//! pipelines compared against straightforward reference computations over
//! randomized inputs.

use imp_engine::Database;
use imp_storage::{row, DataType, Field, Row, Schema, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn build(rows: &[(i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load(rows.iter().map(|(g, x, y)| row![*g, *x, *y]))
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn group_sum_having_matches_reference(
        rows in prop::collection::vec((0i64..8, -50i64..50, -50i64..50), 0..80),
        threshold in -100i64..100,
    ) {
        let db = build(&rows);
        let got = db.query(&format!(
            "SELECT g, sum(x) AS sx FROM t GROUP BY g HAVING sum(x) > {threshold}"
        )).unwrap().canonical();

        let mut sums: BTreeMap<i64, i64> = BTreeMap::new();
        for (g, x, _) in &rows {
            *sums.entry(*g).or_insert(0) += x;
        }
        let expected: Vec<(Row, i64)> = sums
            .into_iter()
            .filter(|(_, s)| *s > threshold)
            .map(|(g, s)| (row![g, s], 1))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn where_filter_matches_reference(
        rows in prop::collection::vec((0i64..8, -50i64..50, -50i64..50), 0..80),
        lo in -40i64..0, hi in 0i64..40,
    ) {
        let db = build(&rows);
        let got = db.query(&format!(
            "SELECT g, x FROM t WHERE x BETWEEN {lo} AND {hi}"
        )).unwrap().canonical();
        let mut expected: BTreeMap<Row, i64> = BTreeMap::new();
        for (g, x, _) in &rows {
            if *x >= lo && *x <= hi {
                *expected.entry(row![*g, *x]).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(got, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn self_join_count_matches_reference(
        rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..40),
    ) {
        let db = build(&rows);
        let got = db.query(
            "SELECT count(*) FROM t t1 JOIN t t2 ON (t1.x = t2.g)"
        ).unwrap();
        let expected: i64 = rows.iter().map(|(_, x, _)| {
            rows.iter().filter(|(g2, _, _)| g2 == x).count() as i64
        }).sum();
        prop_assert_eq!(got.rows[0].0[0].clone(), Value::Int(expected));
    }

    #[test]
    fn topk_is_prefix_of_sort(
        rows in prop::collection::vec((0i64..8, -50i64..50, -50i64..50), 1..60),
        k in 1u64..10,
    ) {
        let db = build(&rows);
        let sorted = db.query("SELECT x FROM t ORDER BY x").unwrap();
        let topk = db.query(&format!("SELECT x FROM t ORDER BY x LIMIT {k}")).unwrap();
        // Expand multiplicities and compare prefixes.
        let expand = |bag: &Vec<(Row, i64)>| -> Vec<Value> {
            let mut out = Vec::new();
            for (r, m) in bag {
                for _ in 0..*m {
                    out.push(r[0].clone());
                }
            }
            out
        };
        let all = expand(&sorted.rows);
        let prefix = expand(&topk.rows);
        prop_assert_eq!(&all[..prefix.len()], &prefix[..]);
        prop_assert_eq!(prefix.len(), (k as usize).min(all.len()));
    }

    #[test]
    fn distinct_equals_dedup(
        rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..4), 0..50),
    ) {
        let db = build(&rows);
        let got = db.query("SELECT DISTINCT g, x FROM t").unwrap().canonical();
        let mut expected: Vec<Row> = rows.iter().map(|(g, x, _)| row![*g, *x]).collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(
            got,
            expected.into_iter().map(|r| (r, 1)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn update_statement_equals_delete_insert(
        rows in prop::collection::vec((0i64..8, -50i64..50, -50i64..50), 1..40),
        pivot in -20i64..20,
    ) {
        // UPDATE ... SET y = y + 1 WHERE x > pivot  ≡  reference rewrite.
        let mut db = build(&rows);
        db.execute_sql(&format!("UPDATE t SET y = y + 1 WHERE x > {pivot}")).unwrap();
        let got = db.query("SELECT g, x, y FROM t").unwrap().canonical();
        let mut expected: BTreeMap<Row, i64> = BTreeMap::new();
        for (g, x, y) in &rows {
            let y2 = if *x > pivot { y + 1 } else { *y };
            *expected.entry(row![*g, *x, y2]).or_insert(0) += 1;
        }
        prop_assert_eq!(got, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn zone_map_pruning_never_changes_results(
        rows in prop::collection::vec((0i64..100, -50i64..50, -50i64..50), 1..200),
        lo in 0i64..50, width in 1i64..30,
    ) {
        // Load clustered on g so pruning actually engages, with tiny chunks.
        let mut sorted = rows.clone();
        sorted.sort();
        let mut db = Database::new();
        db.create_table("u", Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Int),
        ])).unwrap();
        // Rebuild with a small chunk size through a fresh table.
        let mut table = imp_storage::Table::with_chunk_capacity(
            "u2",
            db.table("u").unwrap().schema().clone(),
            8,
        );
        table.bulk_load(sorted.iter().map(|(g, x, y)| row![*g, *x, *y])).unwrap();
        table.seal();
        db.register_table(table).unwrap();
        let hi = lo + width;
        let sql = format!("SELECT g, x FROM u2 WHERE g >= {lo} AND g < {hi}");
        let pruned = db.query(&sql).unwrap();
        // Reference: same predicate evaluated without pruning.
        let mut expected: BTreeMap<Row, i64> = BTreeMap::new();
        for (g, x, _) in &sorted {
            if *g >= lo && *g < hi {
                *expected.entry(row![*g, *x]).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(pruned.canonical(), expected.into_iter().collect::<Vec<_>>());
    }
}
