//! Plan evaluation (bag semantics, Fig. 4 of the paper).

mod aggregate;
mod join;
mod ranges;
mod scan;
mod topk;

pub use aggregate::NumAcc;
pub use ranges::{extract_prune_ranges, PruneRanges};
pub use topk::top_k;

use crate::database::Database;
use crate::Result;
use imp_sql::{Expr, LogicalPlan};
use imp_storage::Row;

/// A bag of rows: each row with a positive multiplicity.
pub type Bag = Vec<(Row, i64)>;

/// Execution counters. `rows_skipped` counts live rows inside chunks that
/// zone-map pruning never touched — the quantity data skipping saves.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows materialized by scans.
    pub rows_scanned: u64,
    /// Rows skipped via zone-map chunk pruning.
    pub rows_skipped: u64,
    /// Hash-join probe operations.
    pub join_probes: u64,
    /// Groups produced by aggregations.
    pub agg_groups: u64,
}

impl ExecStats {
    /// Merge counters from a sub-execution.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_skipped += other.rows_skipped;
        self.join_probes += other.join_probes;
        self.agg_groups += other.agg_groups;
    }
}

/// Evaluate `plan` against `db`.
pub fn execute(plan: &LogicalPlan, db: &Database, stats: &mut ExecStats) -> Result<Bag> {
    match plan {
        LogicalPlan::Scan { table, .. } => scan::scan(db, table, None, stats),
        LogicalPlan::Filter { input, predicate } => {
            // A constant-false predicate (empty sketch) needs no scan.
            if matches!(predicate, Expr::Lit(imp_storage::Value::Bool(false))) {
                return Ok(Vec::new());
            }
            // Push range constraints into a directly-scanned table so the
            // zone maps can skip chunks (this is what makes the sketch
            // use-rewrite fast, paper §1 / §8).
            if let LogicalPlan::Scan { table, .. } = input.as_ref() {
                let prune = extract_prune_ranges(predicate);
                let rows = scan::scan(db, table, prune.as_ref(), stats)?;
                return filter_bag(rows, predicate);
            }
            let rows = execute(input, db, stats)?;
            filter_bag(rows, predicate)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = execute(input, db, stats)?;
            let mut out = Vec::with_capacity(rows.len());
            for (row, m) in rows {
                let vals = exprs
                    .iter()
                    .map(|e| e.eval(&row))
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                out.push((Row::new(vals), m));
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = execute(left, db, stats)?;
            let r = execute(right, db, stats)?;
            join::join(l, r, left_keys, right_keys, stats)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let rows = execute(input, db, stats)?;
            aggregate::aggregate(rows, group_by, aggs, stats)
        }
        LogicalPlan::Distinct { input } => {
            let rows = execute(input, db, stats)?;
            let mut seen: std::collections::BTreeMap<Row, ()> = Default::default();
            let mut out = Vec::new();
            for (row, _) in rows {
                if seen.insert(row.clone(), ()).is_none() {
                    out.push((row, 1));
                }
            }
            Ok(out)
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rows = execute(input, db, stats)?;
            rows.sort_by(|a, b| imp_sql::plan::compare_rows(&a.0, &b.0, keys));
            Ok(rows)
        }
        LogicalPlan::TopK { input, keys, k } => {
            let rows = execute(input, db, stats)?;
            topk::top_k(rows, keys, *k)
        }
        LogicalPlan::Except { left, right, all } => {
            let l = execute(left, db, stats)?;
            let r = execute(right, db, stats)?;
            Ok(except(l, r, *all))
        }
    }
}

/// Bag / set difference. `EXCEPT ALL`: multiplicity `max(L(t) − R(t), 0)`;
/// `EXCEPT`: `t` survives with multiplicity 1 iff `L(t) > 0 ∧ R(t) = 0`.
pub fn except(left: Bag, right: Bag, all: bool) -> Bag {
    let mut counts: std::collections::BTreeMap<Row, i64> = Default::default();
    for (row, m) in left {
        *counts.entry(row).or_insert(0) += m;
    }
    let mut suppressed: imp_storage::FxHashMap<Row, i64> = Default::default();
    for (row, m) in right {
        *suppressed.entry(row).or_insert(0) += m;
    }
    counts
        .into_iter()
        .filter_map(|(row, l)| {
            let r = suppressed.get(&row).copied().unwrap_or(0);
            if all {
                let m = l - r;
                (m > 0).then_some((row, m))
            } else {
                (l > 0 && r == 0).then_some((row, 1))
            }
        })
        .collect()
}

/// Apply a predicate to a bag.
pub fn filter_bag(rows: Bag, predicate: &Expr) -> Result<Bag> {
    let mut out = Vec::new();
    for (row, m) in rows {
        if predicate.eval_predicate(&row)? {
            out.push((row, m));
        }
    }
    Ok(out)
}
