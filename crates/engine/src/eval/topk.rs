//! Batch top-k: `τ_{k,O}(R)` of paper Fig. 4.
//!
//! Returns the first `k` tuples in sort order; a tuple straddling the
//! boundary is emitted with its clipped multiplicity
//! (`m = min(R(t), k − pos(t, R, O))`).

use super::Bag;
use crate::Result;
use imp_sql::plan::compare_rows;
use imp_sql::SortKey;

/// Take the top `k` rows of `rows` ordered by `keys`.
pub fn top_k(mut rows: Bag, keys: &[SortKey], k: u64) -> Result<Bag> {
    // Sort by keys, tie-break on the full row so output is deterministic
    // ("arbitrary, but deterministic order" for incomparable tuples,
    // paper §5.2.7).
    rows.sort_by(|a, b| compare_rows(&a.0, &b.0, keys).then_with(|| a.0.cmp(&b.0)));
    let mut out = Vec::new();
    let mut remaining = k as i64;
    for (row, m) in rows {
        if remaining <= 0 {
            break;
        }
        let take = m.min(remaining);
        out.push((row, take));
        remaining -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    fn keys() -> Vec<SortKey> {
        vec![SortKey {
            column: 0,
            asc: true,
        }]
    }

    #[test]
    fn takes_first_k() {
        let rows: Bag = vec![(row![3], 1), (row![1], 1), (row![2], 1)];
        let out = top_k(rows, &keys(), 2).unwrap();
        assert_eq!(out, vec![(row![1], 1), (row![2], 1)]);
    }

    #[test]
    fn clips_boundary_multiplicity() {
        let rows: Bag = vec![(row![1], 5), (row![2], 5)];
        let out = top_k(rows, &keys(), 7).unwrap();
        assert_eq!(out, vec![(row![1], 5), (row![2], 2)]);
    }

    #[test]
    fn descending() {
        let rows: Bag = vec![(row![3], 1), (row![1], 1), (row![2], 1)];
        let out = top_k(
            rows,
            &[SortKey {
                column: 0,
                asc: false,
            }],
            1,
        )
        .unwrap();
        assert_eq!(out, vec![(row![3], 1)]);
    }

    #[test]
    fn k_zero_is_empty() {
        let rows: Bag = vec![(row![1], 1)];
        assert!(top_k(rows, &keys(), 0).unwrap().is_empty());
    }
}
