//! Batch (non-incremental) grouping and aggregation.

use super::{Bag, ExecStats};
use crate::error::EngineError;
use crate::Result;
use imp_sql::{AggFunc, AggSpec, Expr};
use imp_storage::{FxHashMap, Row, Value};

/// Numeric accumulator that stays integral until it sees a float.
#[derive(Debug, Clone, Copy, Default)]
pub struct NumAcc {
    int: i64,
    float: f64,
    is_float: bool,
}

impl NumAcc {
    /// Add `v * mult`.
    pub fn add(&mut self, v: &Value, mult: i64) -> Result<()> {
        match v {
            Value::Int(i) => {
                if self.is_float {
                    self.float += (*i as f64) * mult as f64;
                } else {
                    self.int = self
                        .int
                        .checked_add(i.checked_mul(mult).ok_or_else(overflow)?)
                        .ok_or_else(overflow)?;
                }
            }
            Value::Float(f) => {
                if !self.is_float {
                    self.float = self.int as f64;
                    self.is_float = true;
                }
                self.float += f * mult as f64;
            }
            other => {
                return Err(EngineError::Execution(format!(
                    "cannot sum non-numeric value {other}"
                )))
            }
        }
        Ok(())
    }

    /// Current value.
    pub fn value(&self) -> Value {
        if self.is_float {
            Value::Float(self.float)
        } else {
            Value::Int(self.int)
        }
    }

    /// Current value as f64.
    pub fn as_f64(&self) -> f64 {
        if self.is_float {
            self.float
        } else {
            self.int as f64
        }
    }

    /// Raw parts `(int, float, is_float)` for state persistence.
    pub fn to_parts(&self) -> (i64, f64, bool) {
        (self.int, self.float, self.is_float)
    }

    /// Rebuild from persisted parts.
    pub fn from_parts(int: i64, float: f64, is_float: bool) -> NumAcc {
        NumAcc {
            int,
            float,
            is_float,
        }
    }
}

fn overflow() -> EngineError {
    EngineError::Execution("integer overflow in SUM".into())
}

/// Per-aggregate batch accumulator.
#[derive(Debug, Clone)]
enum AggAcc {
    Sum { sum: NumAcc, non_null: i64 },
    Count { count: i64 },
    Avg { sum: NumAcc, non_null: i64 },
    Min { cur: Option<Value> },
    Max { cur: Option<Value> },
}

impl AggAcc {
    fn new(func: AggFunc) -> AggAcc {
        match func {
            AggFunc::Sum => AggAcc::Sum {
                sum: NumAcc::default(),
                non_null: 0,
            },
            AggFunc::Count => AggAcc::Count { count: 0 },
            AggFunc::Avg => AggAcc::Avg {
                sum: NumAcc::default(),
                non_null: 0,
            },
            AggFunc::Min => AggAcc::Min { cur: None },
            AggFunc::Max => AggAcc::Max { cur: None },
        }
    }

    fn update(&mut self, arg: Option<&Value>, mult: i64) -> Result<()> {
        match self {
            AggAcc::Count { count } => {
                // count(*) counts rows; count(a) counts non-null values.
                match arg {
                    None => *count += mult,
                    Some(v) if !v.is_null() => *count += mult,
                    _ => {}
                }
            }
            AggAcc::Sum { sum, non_null } | AggAcc::Avg { sum, non_null } => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        sum.add(v, mult)?;
                        *non_null += mult;
                    }
                }
            }
            AggAcc::Min { cur } => {
                if let Some(v) = arg {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggAcc::Max { cur } => {
                if let Some(v) = arg {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            AggAcc::Count { count } => Value::Int(*count),
            AggAcc::Sum { sum, non_null } => {
                if *non_null == 0 {
                    Value::Null
                } else {
                    sum.value()
                }
            }
            AggAcc::Avg { sum, non_null } => {
                if *non_null == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.as_f64() / *non_null as f64)
                }
            }
            AggAcc::Min { cur } | AggAcc::Max { cur } => cur.clone().unwrap_or(Value::Null),
        }
    }
}

/// Group `rows` by `group_by` and compute `aggs` per group.
pub fn aggregate(
    rows: Bag,
    group_by: &[Expr],
    aggs: &[AggSpec],
    stats: &mut ExecStats,
) -> Result<Bag> {
    let mut groups: FxHashMap<Row, Vec<AggAcc>> = FxHashMap::default();
    for (row, m) in rows {
        let key: Row = group_by
            .iter()
            .map(|g| g.eval(&row))
            .collect::<std::result::Result<_, _>>()?;
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggAcc::new(a.func)).collect());
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            let arg = match &spec.arg {
                Some(e) => Some(e.eval(&row)?),
                None => None,
            };
            acc.update(arg.as_ref(), m)?;
        }
    }
    // Aggregation without GROUP BY yields one row even on empty input.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Row::new(vec![]),
            aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
        );
    }
    stats.agg_groups += groups.len() as u64;
    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut vals: Vec<Value> = key.values().to_vec();
        for acc in &accs {
            vals.push(acc.finish());
        }
        out.push((Row::new(vals), 1));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    fn spec(func: AggFunc, col: usize) -> AggSpec {
        AggSpec {
            func,
            arg: Some(Expr::Col(col)),
            name: format!("{}_{col}", func.name()),
        }
    }

    #[test]
    fn sum_count_avg_min_max() {
        let rows: Bag = vec![(row!["a", 3], 1), (row!["a", 5], 2), (row!["b", 7], 1)];
        let aggs = vec![
            spec(AggFunc::Sum, 1),
            spec(AggFunc::Count, 1),
            spec(AggFunc::Avg, 1),
            spec(AggFunc::Min, 1),
            spec(AggFunc::Max, 1),
        ];
        let mut st = ExecStats::default();
        let mut out = aggregate(rows, &[Expr::Col(0)], &aggs, &mut st).unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                (row!["a", 13, 3, 13.0 / 3.0, 3, 5], 1),
                (row!["b", 7, 1, 7.0, 7, 7], 1),
            ]
        );
        assert_eq!(st.agg_groups, 2);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let aggs = vec![spec(AggFunc::Sum, 0), spec(AggFunc::Count, 0)];
        let mut st = ExecStats::default();
        let out = aggregate(vec![], &[], &aggs, &mut st).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0[0], Value::Null); // SUM of empty = NULL
        assert_eq!(out[0].0[1], Value::Int(0)); // COUNT of empty = 0
    }

    #[test]
    fn nulls_skipped() {
        let rows: Bag = vec![
            (Row::new(vec![Value::Null]), 1),
            (Row::new(vec![Value::Int(4)]), 1),
        ];
        let aggs = vec![spec(AggFunc::Avg, 0), spec(AggFunc::Count, 0)];
        let mut st = ExecStats::default();
        let out = aggregate(rows, &[], &aggs, &mut st).unwrap();
        assert_eq!(out[0].0[0], Value::Float(4.0));
        assert_eq!(out[0].0[1], Value::Int(1));
    }

    #[test]
    fn count_star_counts_multiplicity() {
        let rows: Bag = vec![(row![1], 3)];
        let aggs = vec![AggSpec {
            func: AggFunc::Count,
            arg: None,
            name: "c".into(),
        }];
        let mut st = ExecStats::default();
        let out = aggregate(rows, &[], &aggs, &mut st).unwrap();
        assert_eq!(out[0].0[0], Value::Int(3));
    }

    #[test]
    fn sum_widens_to_float() {
        let rows: Bag = vec![(row![1], 1), (row![2.5], 1)];
        let aggs = vec![spec(AggFunc::Sum, 0)];
        let mut st = ExecStats::default();
        let out = aggregate(rows, &[], &aggs, &mut st).unwrap();
        assert_eq!(out[0].0[0], Value::Float(3.5));
    }
}
