//! Extraction of zone-map prune ranges from filter predicates.
//!
//! The sketch use-rewrite injects predicates shaped like
//! `(a >= l1 AND a <= h1) OR (a >= l2 AND a <= h2) OR …` (paper §1, fn. 2).
//! This module recognizes that shape (and simple comparisons) and converts
//! it into a set of inclusive ranges for a single column, which the scan
//! operator feeds to the chunk zone maps. The extraction is conservative:
//! it only ever returns ranges that *over*-approximate the predicate, so
//! pruning never drops qualifying rows.

use imp_sql::ast::BinOp;
use imp_sql::Expr;
use imp_storage::Value;

/// Inclusive prune ranges on one input column.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneRanges {
    /// Column the ranges constrain.
    pub column: usize,
    /// Inclusive `(lo, hi)` bounds; `None` = unbounded on that side.
    pub ranges: Vec<(Option<Value>, Option<Value>)>,
}

/// Extract prune ranges from a predicate, if its conjuncts constrain a
/// single column to a union or intersection of ranges.
pub fn extract_prune_ranges(predicate: &Expr) -> Option<PruneRanges> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(predicate, &mut conjuncts);
    let mut candidates: Vec<PruneRanges> = Vec::new();
    // (a) Disjunctive range unions — the sketch use-rewrite shape
    //     `(a >= l1 AND a < h1) OR (a >= l2 AND a < h2) …`.
    for c in &conjuncts {
        if matches!(c, Expr::Binary { op: BinOp::Or, .. }) {
            if let Some(p) = range_union(c) {
                candidates.push(p);
            }
        }
    }
    // (b) Per-column intersection of simple comparison conjuncts —
    //     `a >= lo AND a < hi` arrives as two separate conjuncts.
    let mut per_col: Vec<(usize, Option<Value>, Option<Value>)> = Vec::new();
    for c in &conjuncts {
        if let Some((col, lo, hi)) = comparison_bounds(c) {
            match per_col.iter_mut().find(|e| e.0 == col) {
                Some(e) => {
                    if let Some(l) = lo {
                        e.1 = Some(match e.1.take() {
                            Some(old) if old >= l => old,
                            _ => l,
                        });
                    }
                    if let Some(h) = hi {
                        e.2 = Some(match e.2.take() {
                            Some(old) if old <= h => old,
                            _ => h,
                        });
                    }
                }
                None => per_col.push((col, lo, hi)),
            }
        }
    }
    for (column, lo, hi) in per_col {
        candidates.push(PruneRanges {
            column,
            ranges: vec![(lo, hi)],
        });
    }
    // Prefer the most selective candidate: fully bounded ranges beat
    // half-open ones; fall back to any candidate with at least one bound.
    candidates
        .into_iter()
        .filter(|p| p.ranges.iter().any(|(lo, hi)| lo.is_some() || hi.is_some()))
        .max_by_key(|p| (bounded_count(p), half_bounded_count(p)))
}

fn bounded_count(p: &PruneRanges) -> usize {
    p.ranges
        .iter()
        .filter(|(lo, hi)| lo.is_some() && hi.is_some())
        .count()
}

fn half_bounded_count(p: &PruneRanges) -> usize {
    p.ranges
        .iter()
        .filter(|(lo, hi)| lo.is_some() || hi.is_some())
        .count()
}

fn collect_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Interpret `e` as a union of ranges over one column.
fn range_union(e: &Expr) -> Option<PruneRanges> {
    match e {
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            let l = range_union(left)?;
            let r = range_union(right)?;
            if l.column != r.column {
                return None;
            }
            let mut ranges = l.ranges;
            ranges.extend(r.ranges);
            Some(PruneRanges {
                column: l.column,
                ranges,
            })
        }
        _ => single_range(e),
    }
}

/// Interpret `e` as a conjunction of comparisons over one column, producing
/// one (possibly half-open) range.
fn single_range(e: &Expr) -> Option<PruneRanges> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(e, &mut conjuncts);
    let mut column: Option<usize> = None;
    let mut lo: Option<Value> = None;
    let mut hi: Option<Value> = None;
    for c in conjuncts {
        let (col, clo, chi) = comparison_bounds(c)?;
        match column {
            None => column = Some(col),
            Some(existing) if existing != col => return None,
            _ => {}
        }
        if let Some(l) = clo {
            lo = Some(match lo {
                Some(old) if old >= l => old,
                _ => l,
            });
        }
        if let Some(h) = chi {
            hi = Some(match hi {
                Some(old) if old <= h => old,
                _ => h,
            });
        }
    }
    column.map(|column| PruneRanges {
        column,
        ranges: vec![(lo, hi)],
    })
}

/// Bounds contributed by a single comparison `col ⋈ lit` / `lit ⋈ col`.
/// Strict comparisons are widened to inclusive bounds (conservative).
fn comparison_bounds(e: &Expr) -> Option<(usize, Option<Value>, Option<Value>)> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
        (Expr::Col(c), Expr::Lit(v)) => (*c, v.clone(), *op),
        (Expr::Lit(v), Expr::Col(c)) => (*c, v.clone(), flip(*op)?),
        _ => return None,
    };
    if lit.is_null() {
        return None;
    }
    // Interpret as: col <op> lit.
    match op {
        BinOp::Eq => Some((col, Some(lit.clone()), Some(lit))),
        BinOp::Ge | BinOp::Gt => Some((col, Some(lit), None)),
        BinOp::Le | BinOp::Lt => Some((col, None, Some(lit))),
        _ => None,
    }
}

fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_sql::Expr;

    #[test]
    fn extracts_between_disjunction() {
        // (c0 >= 1001 AND c0 <= 1500) OR (c0 >= 1501 AND c0 <= 10000)
        let e = Expr::disjunction([
            Expr::between_col(0, Value::Int(1001), Value::Int(1500)),
            Expr::between_col(0, Value::Int(1501), Value::Int(10000)),
        ]);
        let p = extract_prune_ranges(&e).unwrap();
        assert_eq!(p.column, 0);
        assert_eq!(p.ranges.len(), 2);
        assert_eq!(
            p.ranges[0],
            (Some(Value::Int(1001)), Some(Value::Int(1500)))
        );
    }

    #[test]
    fn extracts_simple_comparison() {
        let e = Expr::binary(BinOp::Lt, Expr::Col(2), Expr::Lit(Value::Int(10)));
        let p = extract_prune_ranges(&e).unwrap();
        assert_eq!(p.column, 2);
        assert_eq!(p.ranges, vec![(None, Some(Value::Int(10)))]);
    }

    #[test]
    fn flipped_comparison() {
        // 10 < c1  ⇒  c1 > 10
        let e = Expr::binary(BinOp::Lt, Expr::Lit(Value::Int(10)), Expr::Col(1));
        let p = extract_prune_ranges(&e).unwrap();
        assert_eq!(p.ranges, vec![(Some(Value::Int(10)), None)]);
    }

    #[test]
    fn prefers_bounded_disjunction_conjunct() {
        // b < 100 AND (a BETWEEN 1 AND 2 OR a BETWEEN 5 AND 6)
        let sketchy = Expr::disjunction([
            Expr::between_col(0, Value::Int(1), Value::Int(2)),
            Expr::between_col(0, Value::Int(5), Value::Int(6)),
        ]);
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Lt, Expr::Col(1), Expr::Lit(Value::Int(100))),
            sketchy,
        );
        let p = extract_prune_ranges(&e).unwrap();
        assert_eq!(p.column, 0);
        assert_eq!(p.ranges.len(), 2);
    }

    #[test]
    fn mixed_columns_in_or_rejected() {
        let e = Expr::disjunction([
            Expr::between_col(0, Value::Int(1), Value::Int(2)),
            Expr::between_col(1, Value::Int(5), Value::Int(6)),
        ]);
        assert!(extract_prune_ranges(&e).is_none());
    }

    #[test]
    fn non_range_predicates_rejected() {
        let e = Expr::binary(BinOp::Eq, Expr::Col(0), Expr::Col(1));
        assert!(extract_prune_ranges(&e).is_none());
    }
}
