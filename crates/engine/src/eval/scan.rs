//! Table access with zone-map pruning.

use super::{Bag, ExecStats, PruneRanges};
use crate::database::Database;
use crate::Result;

/// Scan a table, optionally pruning chunks via zone maps.
pub fn scan(
    db: &Database,
    table: &str,
    prune: Option<&PruneRanges>,
    stats: &mut ExecStats,
) -> Result<Bag> {
    let t = db.table(table)?;
    let mut out = Vec::with_capacity(t.row_count());
    let mut scanned = 0u64;
    let mut skipped = 0u64;
    match prune {
        Some(p) => {
            t.scan(
                Some((p.column, &p.ranges)),
                |row| {
                    scanned += 1;
                    out.push((row, 1));
                },
                |n| skipped += n as u64,
            );
        }
        None => {
            t.scan(
                None,
                |row| {
                    scanned += 1;
                    out.push((row, 1));
                },
                |_| {},
            );
        }
    }
    stats.rows_scanned += scanned;
    stats.rows_skipped += skipped;
    Ok(out)
}
