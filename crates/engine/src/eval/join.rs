//! Hash join / cross product over bags.

use super::{Bag, ExecStats};
use crate::Result;
use imp_storage::{FxHashMap, Row, Value};

/// Join two bags. Empty keys = cross product. Multiplicities multiply
/// (`(t ◦ s)^{n·m}`, paper Fig. 4).
pub fn join(
    left: Bag,
    right: Bag,
    left_keys: &[usize],
    right_keys: &[usize],
    stats: &mut ExecStats,
) -> Result<Bag> {
    if left_keys.is_empty() {
        // Cross product.
        let mut out = Vec::new();
        for (l, n) in &left {
            for (r, m) in &right {
                out.push((l.concat(r), n * m));
            }
        }
        return Ok(out);
    }
    // Build on the smaller side.
    if right.len() <= left.len() {
        hash_join(left, right, left_keys, right_keys, false, stats)
    } else {
        hash_join(right, left, right_keys, left_keys, true, stats)
    }
}

fn key_of(row: &Row, keys: &[usize]) -> Option<Vec<Value>> {
    let mut k = Vec::with_capacity(keys.len());
    for &i in keys {
        let v = row[i].clone();
        // SQL equi-join: NULL joins with nothing.
        if v.is_null() {
            return None;
        }
        k.push(v);
    }
    Some(k)
}

fn hash_join(
    probe: Bag,
    build: Bag,
    probe_keys: &[usize],
    build_keys: &[usize],
    swapped: bool,
    stats: &mut ExecStats,
) -> Result<Bag> {
    let mut table: FxHashMap<Vec<Value>, Vec<(Row, i64)>> = FxHashMap::default();
    for (row, m) in build {
        if let Some(k) = key_of(&row, build_keys) {
            table.entry(k).or_default().push((row, m));
        }
    }
    let mut out = Vec::new();
    for (row, n) in probe {
        stats.join_probes += 1;
        let Some(k) = key_of(&row, probe_keys) else {
            continue;
        };
        if let Some(matches) = table.get(&k) {
            for (b, m) in matches {
                // Preserve (left ◦ right) column order regardless of which
                // side we built on.
                let joined = if swapped {
                    b.concat(&row)
                } else {
                    row.concat(b)
                };
                out.push((joined, n * m));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    #[test]
    fn equi_join_matches_fig5() {
        // ΔR = {(5,8)}, S = {(6,9),(7,8)}; join on b = d keeps (5,8,7,8).
        let l: Bag = vec![(row![5, 8], 1)];
        let r: Bag = vec![(row![6, 9], 1), (row![7, 8], 1)];
        let mut stats = ExecStats::default();
        let out = join(l, r, &[1], &[1], &mut stats).unwrap();
        assert_eq!(out, vec![(row![5, 8, 7, 8], 1)]);
    }

    #[test]
    fn multiplicities_multiply() {
        let l: Bag = vec![(row![1], 2)];
        let r: Bag = vec![(row![1], 3)];
        let mut stats = ExecStats::default();
        let out = join(l, r, &[0], &[0], &mut stats).unwrap();
        assert_eq!(out, vec![(row![1, 1], 6)]);
    }

    #[test]
    fn column_order_stable_when_build_side_swapped() {
        // Left bigger than right and vice versa must both produce l ◦ r.
        let l: Bag = vec![(row![1, 10], 1), (row![2, 20], 1), (row![3, 30], 1)];
        let r: Bag = vec![(row![10, "x"], 1)];
        let mut stats = ExecStats::default();
        let a = join(l.clone(), r.clone(), &[1], &[0], &mut stats).unwrap();
        assert_eq!(a, vec![(row![1, 10, 10, "x"], 1)]);
        // Now right bigger: builds on left instead.
        let r2: Bag = vec![
            (row![10, "x"], 1),
            (row![99, "y"], 1),
            (row![98, "z"], 1),
            (row![97, "w"], 1),
        ];
        let b = join(l, r2, &[1], &[0], &mut stats).unwrap();
        assert_eq!(b, vec![(row![1, 10, 10, "x"], 1)]);
    }

    #[test]
    fn nulls_never_join() {
        let l: Bag = vec![(Row::new(vec![Value::Null]), 1)];
        let r: Bag = vec![(Row::new(vec![Value::Null]), 1)];
        let mut stats = ExecStats::default();
        let out = join(l, r, &[0], &[0], &mut stats).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn cross_product() {
        let l: Bag = vec![(row![1], 1), (row![2], 1)];
        let r: Bag = vec![(row!["a"], 2)];
        let mut stats = ExecStats::default();
        let out = join(l, r, &[], &[], &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, 2);
    }
}
