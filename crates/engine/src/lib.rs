//! # imp-engine
//!
//! The backend DBMS substrate IMP runs against. The paper evaluates
//! against PostgreSQL; here the backend is an in-process, in-memory,
//! bag-semantics relational engine with exactly the capabilities IMP
//! exercises:
//!
//! * evaluate full queries (the NS baseline and use-rewritten queries),
//! * evaluate capture queries (full maintenance),
//! * evaluate `Δℛ ⋈ 𝒮` joins on behalf of the incremental engine,
//! * execute updates under snapshot versioning and serve per-table deltas.
//!
//! Scans prune horizontal chunks through zone maps when the predicate
//! carries range constraints — this is what turns a provenance sketch into
//! actual data skipping.

pub mod database;
pub mod error;
pub mod eval;
pub mod histogram;
pub mod update;

pub use database::{Database, QueryResult};
pub use error::EngineError;
pub use eval::{execute, Bag, ExecStats};
pub use histogram::{equi_depth_cuts, estimate_skipped_rows};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
