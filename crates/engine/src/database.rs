//! The in-memory backend database.

use crate::error::EngineError;
use crate::eval::{execute, Bag, ExecStats};
use crate::update::{apply_statement, StatementResult};
use crate::Result;
use imp_sql::{Catalog, LogicalPlan, Resolver, Statement};
use imp_storage::{DeltaRecord, Row, Schema, Table};
use std::collections::BTreeMap;

/// Result of a query: output schema, result bag, execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// Output rows with multiplicities.
    pub rows: Bag,
    /// Execution counters (scanned / skipped rows).
    pub stats: ExecStats,
}

impl QueryResult {
    /// Total output multiplicity.
    pub fn cardinality(&self) -> u64 {
        self.rows.iter().map(|(_, m)| *m as u64).sum()
    }

    /// Rows sorted by value with multiplicities folded — a canonical form
    /// used by tests to compare bags irrespective of order.
    pub fn canonical(&self) -> Vec<(Row, i64)> {
        canonical_bag(&self.rows)
    }
}

/// Fold duplicate rows and sort — canonical bag form for comparisons.
pub fn canonical_bag(bag: &Bag) -> Vec<(Row, i64)> {
    let mut map: BTreeMap<Row, i64> = BTreeMap::new();
    for (r, m) in bag {
        *map.entry(r.clone()).or_insert(0) += m;
    }
    map.into_iter().filter(|(_, m)| *m != 0).collect()
}

/// The backend database: named tables + a global snapshot version counter.
///
/// Every update statement commits under a fresh snapshot version; deltas
/// between versions are served from the per-table [`imp_storage::DeltaLog`]s.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    version: u64,
}

impl Database {
    /// Empty database at version 0.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::Storage(
                imp_storage::StorageError::DuplicateTable(key),
            ));
        }
        self.tables.insert(key.clone(), Table::new(key, schema));
        Ok(())
    }

    /// Register a pre-built table (used by the data generators).
    pub fn register_table(&mut self, table: Table) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::Storage(
                imp_storage::StorageError::DuplicateTable(key),
            ));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Current snapshot version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Allocate the next snapshot version (one per update statement).
    pub fn next_version(&mut self) -> u64 {
        self.version += 1;
        self.version
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(&name.to_ascii_lowercase()).ok_or_else(|| {
            EngineError::Storage(imp_storage::StorageError::UnknownTable(name.to_string()))
        })
    }

    /// Mutable table access.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| {
                EngineError::Storage(imp_storage::StorageError::UnknownTable(name.to_string()))
            })
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Parse + resolve a SELECT into a plan.
    pub fn plan_sql(&self, sql: &str) -> Result<LogicalPlan> {
        match imp_sql::parse_one(sql)? {
            Statement::Select(s) => Ok(Resolver::new(self).resolve_select(&s)?),
            _ => Err(EngineError::Unsupported(
                "plan_sql expects a SELECT statement".into(),
            )),
        }
    }

    /// Execute a resolved plan.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<QueryResult> {
        let mut stats = ExecStats::default();
        let rows = execute(plan, self, &mut stats)?;
        Ok(QueryResult {
            schema: plan.schema(),
            rows,
            stats,
        })
    }

    /// Parse, resolve and execute a SELECT.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let plan = self.plan_sql(sql)?;
        self.execute_plan(&plan)
    }

    /// Execute any statement (SELECT returns rows; updates return affected
    /// counts and commit a new snapshot version).
    pub fn execute_sql(&mut self, sql: &str) -> Result<StatementResult> {
        let stmt = imp_sql::parse_one(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<StatementResult> {
        apply_statement(self, stmt)
    }

    /// Delta records of `table` strictly after snapshot `version`.
    pub fn delta_since(&self, table: &str, version: u64) -> Result<&[DeltaRecord]> {
        Ok(self.table(table)?.delta_log().since(version))
    }

    /// VACUUM: compact every table's storage and truncate delta logs at or
    /// below `keep_after` (the oldest version any consumer still needs).
    /// Returns `(reclaimed row slots, dropped delta records)`.
    pub fn vacuum(&mut self, keep_after: u64) -> (usize, usize) {
        self.vacuum_by(|_| keep_after)
    }

    /// VACUUM with a per-table horizon: `keep_after(table)` is the oldest
    /// version any consumer of *that table's* log still needs, so a
    /// low-traffic table's lagging consumer no longer pins every other
    /// table's log. The callback receives the catalog key (lowercase),
    /// matching resolver/plan table names. Returns
    /// `(reclaimed row slots, dropped delta records)`.
    pub fn vacuum_by(&mut self, keep_after: impl Fn(&str) -> u64) -> (usize, usize) {
        let mut reclaimed = 0usize;
        let mut dropped = 0usize;
        for (key, table) in self.tables.iter_mut() {
            reclaimed += table.compact();
            let before = table.delta_log().len();
            let horizon = keep_after(key);
            table.delta_log_mut().truncate_through(horizon);
            dropped += before - table.delta_log().len();
        }
        (reclaimed, dropped)
    }

    /// Approximate heap footprint of all tables.
    pub fn heap_size(&self) -> usize {
        self.tables.values().map(Table::heap_size).sum()
    }
}

impl Catalog for Database {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        self.tables
            .get(&table.to_ascii_lowercase())
            .map(|t| t.schema().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::{row, DataType, Field};

    fn db_with_sales() -> Database {
        let mut db = Database::new();
        db.create_table(
            "sales",
            Schema::new(vec![
                Field::new("sid", DataType::Int),
                Field::new("brand", DataType::Str),
                Field::new("price", DataType::Int),
                Field::new("numsold", DataType::Int),
            ]),
        )
        .unwrap();
        let v = db.next_version();
        let rows = [
            row![1, "Lenovo", 349, 1],
            row![2, "Lenovo", 449, 2],
            row![3, "Apple", 1199, 1],
            row![4, "Apple", 3875, 1],
            row![5, "Dell", 1345, 1],
            row![6, "HP", 999, 4],
            row![7, "HP", 899, 1],
        ];
        for r in rows {
            db.table_mut("sales").unwrap().insert(r, v).unwrap();
        }
        db
    }

    #[test]
    fn running_example_qtop() {
        // Paper Fig. 1: only the Apple group passes HAVING.
        let db = db_with_sales();
        let res = db
            .query(
                "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                 GROUP BY brand HAVING SUM(price * numsold) > 5000",
            )
            .unwrap();
        assert_eq!(res.canonical(), vec![(row!["Apple", 5074], 1)]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_sales();
        assert!(db.create_table("sales", Schema::new(vec![])).is_err());
    }

    #[test]
    fn delta_since_reflects_updates() {
        let mut db = db_with_sales();
        let v0 = db.version();
        db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
            .unwrap();
        let delta = db.delta_since("sales", v0).unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].row, row![8, "HP", 1299, 1]);
    }
}
