//! Equi-depth histograms for range selection.
//!
//! "We use the bounds of equi-depth histograms maintained by many DBMS as
//! statistics as ranges. Note that we generate ranges to cover the whole
//! domain of an attribute instead of only its active domain" (paper §7.4).
//!
//! A partition with `n` fragments is represented by `n − 1` *cut points*
//! `c₁ < … < c_{n−1}`; fragment `i` covers `[c_i, c_{i+1})` with the first
//! and last fragments open toward the domain boundaries, so the partition
//! covers the entire domain regardless of future inserts.

use crate::database::Database;
use crate::Result;
use imp_storage::Value;

/// Compute up to `fragments − 1` equi-depth cut points for `table.column`.
///
/// Fewer cuts are returned when the column has fewer distinct values than
/// requested fragments (ranges must be non-empty and disjoint).
pub fn equi_depth_cuts(
    db: &Database,
    table: &str,
    column: &str,
    fragments: usize,
) -> Result<Vec<Value>> {
    let t = db.table(table)?;
    let idx = t.schema().index_of(column).ok_or_else(|| {
        crate::EngineError::Storage(imp_storage::StorageError::UnknownColumn(column.into()))
    })?;
    let mut values: Vec<Value> = Vec::with_capacity(t.row_count());
    t.scan(
        None,
        |row| {
            let v = row[idx].clone();
            if !v.is_null() {
                values.push(v);
            }
        },
        |_| {},
    );
    values.sort();
    Ok(cuts_from_sorted(&values, fragments))
}

/// Cut points from an already-sorted value vector.
pub fn cuts_from_sorted(sorted: &[Value], fragments: usize) -> Vec<Value> {
    if fragments <= 1 || sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    let mut cuts: Vec<Value> = Vec::with_capacity(fragments - 1);
    for i in 1..fragments {
        let pos = (i * n) / fragments;
        let v = sorted[pos.min(n - 1)].clone();
        // Cuts must be strictly increasing.
        if cuts.last().is_none_or(|last| *last < v) {
            cuts.push(v);
        }
    }
    cuts
}

/// Estimate how many of a table's rows a sketch rewrite skips, given the
/// sketch's *marked fraction* of the table's fragments (its selectivity,
/// e.g. `SketchSet::partition_selectivity` in `imp-sketch`).
///
/// Fragments come from equi-depth histograms, so each holds roughly the
/// same number of tuples; an unmarked fragment's share of the table is
/// never scanned. This is the per-use benefit signal of the
/// `imp_core::advisor` cost model — an estimate (skew and later updates
/// shift real fragment populations), which is all selection needs.
pub fn estimate_skipped_rows(table_rows: usize, marked_fraction: f64) -> u64 {
    if !(0.0..1.0).contains(&marked_fraction) {
        return 0;
    }
    (table_rows as f64 * (1.0 - marked_fraction)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::{row, DataType, Field, Schema};

    #[test]
    fn skipped_rows_follow_equi_depth_shares() {
        // 3 of 4 fragments unmarked → ~75% of rows skipped.
        assert_eq!(estimate_skipped_rows(1000, 0.25), 750);
        // Everything marked (or degenerate inputs): nothing skipped.
        assert_eq!(estimate_skipped_rows(1000, 1.0), 0);
        assert_eq!(estimate_skipped_rows(1000, 1.5), 0);
        assert_eq!(estimate_skipped_rows(1000, -0.1), 0);
        // Nothing marked: the whole table is skipped.
        assert_eq!(estimate_skipped_rows(1000, 0.0), 1000);
    }

    #[test]
    fn cuts_split_evenly() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let cuts = cuts_from_sorted(&vals, 4);
        assert_eq!(cuts, vec![Value::Int(25), Value::Int(50), Value::Int(75)]);
    }

    #[test]
    fn skewed_data_dedupes_cuts() {
        let mut vals: Vec<Value> = vec![Value::Int(7); 90];
        vals.extend((0..10).map(Value::Int));
        vals.sort();
        let cuts = cuts_from_sorted(&vals, 10);
        // Most quantiles collapse onto 7; cuts stay strictly increasing.
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn single_fragment_no_cuts() {
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        assert!(cuts_from_sorted(&vals, 1).is_empty());
        assert!(cuts_from_sorted(&[], 5).is_empty());
    }

    #[test]
    fn from_database() {
        let mut db = Database::new();
        db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]))
            .unwrap();
        for i in 0..1000 {
            db.table_mut("t").unwrap().insert(row![i], 1).unwrap();
        }
        let cuts = equi_depth_cuts(&db, "t", "a", 4).unwrap();
        assert_eq!(cuts.len(), 3);
        assert_eq!(cuts[1], Value::Int(500));
    }
}
