//! Update execution: INSERT / DELETE / UPDATE / CREATE TABLE.
//!
//! Every update statement commits under a fresh snapshot version; the
//! delta model of paper §4.2 treats an UPDATE as a delete of the old tuple
//! followed by an insert of the new one, which is exactly how it is logged
//! here.

use crate::database::{Database, QueryResult};
use crate::error::EngineError;
use crate::Result;
use imp_sql::{Catalog, Resolver, Statement};
use imp_storage::{Field, Row, Schema, Value};

/// Outcome of executing a statement.
#[derive(Debug, Clone)]
pub enum StatementResult {
    /// SELECT output.
    Rows(QueryResult),
    /// EXPLAIN output: the rendered logical plan.
    Explained(String),
    /// Update outcome: affected row count and the snapshot version the
    /// change committed at.
    Affected {
        /// Table changed.
        table: String,
        /// Rows inserted + deleted (an UPDATE counts each row twice:
        /// one delete + one insert in the delta model).
        count: u64,
        /// Commit version.
        version: u64,
    },
    /// DDL succeeded.
    Created,
}

/// Execute `stmt` against `db`.
pub fn apply_statement(db: &mut Database, stmt: &Statement) -> Result<StatementResult> {
    match stmt {
        Statement::Select(s) => {
            let plan = Resolver::new(db).resolve_select(s)?;
            Ok(StatementResult::Rows(db.execute_plan(&plan)?))
        }
        Statement::Explain(s) => {
            let plan = Resolver::new(db).resolve_select(s)?;
            Ok(StatementResult::Explained(plan.explain()))
        }
        Statement::CreateTable { name, columns } => {
            let fields = columns
                .iter()
                .map(|(n, t)| Field::nullable(n.clone(), *t))
                .collect();
            db.create_table(name, Schema::new(fields))?;
            Ok(StatementResult::Created)
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => insert(db, table, columns.as_deref(), rows),
        Statement::Delete { table, filter } => delete(db, table, filter.as_ref()),
        Statement::Update {
            table,
            sets,
            filter,
        } => update(db, table, sets, filter.as_ref()),
    }
}

fn insert(
    db: &mut Database,
    table: &str,
    columns: Option<&[String]>,
    rows: &[Vec<imp_sql::AstExpr>],
) -> Result<StatementResult> {
    let schema = db
        .table_schema(table)
        .ok_or_else(|| EngineError::Sql(imp_sql::SqlError::UnknownTable(table.into())))?;
    // Map provided columns to schema positions.
    let positions: Vec<usize> = match columns {
        None => (0..schema.arity()).collect(),
        Some(cols) => cols
            .iter()
            .map(|c| {
                schema
                    .resolve(None, c)
                    .map_err(|_| EngineError::Sql(imp_sql::SqlError::UnknownColumn(c.clone())))
            })
            .collect::<Result<_>>()?,
    };
    let resolver = Resolver::new(db);
    let empty = Row::new(vec![]);
    let mut materialized = Vec::with_capacity(rows.len());
    for row_exprs in rows {
        if row_exprs.len() != positions.len() {
            return Err(EngineError::Execution(format!(
                "INSERT expects {} values, found {}",
                positions.len(),
                row_exprs.len()
            )));
        }
        let mut vals = vec![Value::Null; schema.arity()];
        for (pos, e) in positions.iter().zip(row_exprs) {
            // VALUES expressions are constant: resolve over the empty schema.
            let resolved = resolver.resolve_expr(e, &Schema::empty())?;
            vals[*pos] = resolved.eval(&empty)?;
        }
        materialized.push(Row::new(vals));
    }
    let version = db.next_version();
    let count = materialized.len() as u64;
    let t = db.table_mut(table)?;
    for row in materialized {
        t.insert(row, version)?;
    }
    Ok(StatementResult::Affected {
        table: table.to_ascii_lowercase(),
        count,
        version,
    })
}

fn delete(
    db: &mut Database,
    table: &str,
    filter: Option<&imp_sql::AstExpr>,
) -> Result<StatementResult> {
    let schema = db
        .table_schema(table)
        .ok_or_else(|| EngineError::Sql(imp_sql::SqlError::UnknownTable(table.into())))?;
    let qualified = schema.with_qualifier(&table.to_ascii_lowercase());
    let predicate = match filter {
        Some(f) => Some(Resolver::new(db).resolve_expr(f, &qualified)?),
        None => None,
    };
    let version = db.next_version();
    let t = db.table_mut(table)?;
    let mut eval_err: Option<EngineError> = None;
    let deleted = t.delete_where(version, |row| match &predicate {
        None => true,
        Some(p) => match p.eval_predicate(row) {
            Ok(b) => b,
            Err(e) => {
                eval_err.get_or_insert(EngineError::Sql(e));
                false
            }
        },
    });
    if let Some(e) = eval_err {
        return Err(e);
    }
    Ok(StatementResult::Affected {
        table: table.to_ascii_lowercase(),
        count: deleted.len() as u64,
        version,
    })
}

fn update(
    db: &mut Database,
    table: &str,
    sets: &[(String, imp_sql::AstExpr)],
    filter: Option<&imp_sql::AstExpr>,
) -> Result<StatementResult> {
    let schema = db
        .table_schema(table)
        .ok_or_else(|| EngineError::Sql(imp_sql::SqlError::UnknownTable(table.into())))?;
    let qualified = schema.with_qualifier(&table.to_ascii_lowercase());
    let resolver = Resolver::new(db);
    let predicate = match filter {
        Some(f) => Some(resolver.resolve_expr(f, &qualified)?),
        None => None,
    };
    let assignments: Vec<(usize, imp_sql::Expr)> = sets
        .iter()
        .map(|(col, e)| {
            let idx = qualified
                .resolve(None, col)
                .map_err(|_| EngineError::Sql(imp_sql::SqlError::UnknownColumn(col.clone())))?;
            Ok((idx, resolver.resolve_expr(e, &qualified)?))
        })
        .collect::<Result<_>>()?;

    // Delta model: UPDATE = DELETE old ∪ INSERT new at one version.
    let version = db.next_version();
    let t = db.table_mut(table)?;
    let mut eval_err: Option<EngineError> = None;
    let old_rows = t.delete_where(version, |row| match &predicate {
        None => true,
        Some(p) => match p.eval_predicate(row) {
            Ok(b) => b,
            Err(e) => {
                eval_err.get_or_insert(EngineError::Sql(e));
                false
            }
        },
    });
    if let Some(e) = eval_err {
        return Err(e);
    }
    let count = old_rows.len() as u64 * 2;
    for old in old_rows {
        let mut vals = old.values().to_vec();
        for (idx, e) in &assignments {
            vals[*idx] = e.eval(&old)?;
        }
        t.insert(Row::new(vals), version)?;
    }
    Ok(StatementResult::Affected {
        table: table.to_ascii_lowercase(),
        count,
        version,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::{row, DataType, DeltaOp};

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (a INT, b INT)").unwrap();
        db.execute_sql("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
            .unwrap();
        db
    }

    #[test]
    fn insert_then_query() {
        let db = db();
        let r = db.query("SELECT a FROM t WHERE b >= 20").unwrap();
        assert_eq!(r.canonical(), vec![(row![2], 1), (row![3], 1)]);
    }

    #[test]
    fn insert_with_column_list() {
        let mut db = db();
        db.execute_sql("INSERT INTO t (b, a) VALUES (99, 9)")
            .unwrap();
        let r = db.query("SELECT a, b FROM t WHERE a = 9").unwrap();
        assert_eq!(r.canonical(), vec![(row![9, 99], 1)]);
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = db();
        let StatementResult::Affected { count, .. } =
            db.execute_sql("DELETE FROM t WHERE b > 15").unwrap()
        else {
            panic!()
        };
        assert_eq!(count, 2);
        assert_eq!(db.query("SELECT * FROM t").unwrap().cardinality(), 1);
    }

    #[test]
    fn update_is_delete_plus_insert_in_log() {
        let mut db = db();
        let v0 = db.version();
        db.execute_sql("UPDATE t SET b = b + 1 WHERE a = 1")
            .unwrap();
        let delta = db.delta_since("t", v0).unwrap();
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0].op, DeltaOp::Delete);
        assert_eq!(delta[0].row, row![1, 10]);
        assert_eq!(delta[1].op, DeltaOp::Insert);
        assert_eq!(delta[1].row, row![1, 11]);
    }

    #[test]
    fn create_table_types() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE x (i INT, f FLOAT, s TEXT, b BOOL)")
            .unwrap();
        let s = db.table_schema("x").unwrap();
        assert_eq!(s.field(1).dtype, DataType::Float);
        assert_eq!(s.field(2).dtype, DataType::Str);
    }

    #[test]
    fn versions_advance_per_statement() {
        let mut db = db();
        let v1 = db.version();
        db.execute_sql("INSERT INTO t VALUES (4, 40)").unwrap();
        db.execute_sql("INSERT INTO t VALUES (5, 50)").unwrap();
        assert_eq!(db.version(), v1 + 2);
    }
}
