//! Engine errors.

use imp_sql::SqlError;
use imp_storage::StorageError;
use std::fmt;

/// Errors produced while executing queries or updates.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Frontend (parse / resolve) failure.
    Sql(SqlError),
    /// Storage failure.
    Storage(StorageError),
    /// Runtime evaluation failure.
    Execution(String),
    /// Statement kind not supported in this context.
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Sql(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}
