//! Abstract syntax tree produced by the parser.

use imp_storage::{DataType, Value};
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Literal rows.
        rows: Vec<Vec<AstExpr>>,
    },
    /// `DELETE FROM t [WHERE pred]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        filter: Option<AstExpr>,
    },
    /// `UPDATE t SET a = e, ... [WHERE pred]`
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        sets: Vec<(String, AstExpr)>,
        /// Optional predicate.
        filter: Option<AstExpr>,
    },
    /// `EXPLAIN <select>`: render the resolved logical plan.
    Explain(SelectStmt),
    /// `CREATE TABLE t (col type, ...)`
    CreateTable {
        /// New table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
    },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// FROM clause (comma-separated refs are implicit cross joins).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub filter: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// HAVING predicate.
    pub having: Option<AstExpr>,
    /// ORDER BY keys (expression, ascending?).
    pub order_by: Vec<(AstExpr, bool)>,
    /// LIMIT k.
    pub limit: Option<u64>,
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// `EXCEPT [ALL] <select>` suffix (set difference; the boolean is the
    /// ALL quantifier). A future-work operator in the paper (§9): the
    /// backend engine evaluates it, the incremental engine does not
    /// maintain sketches over it.
    pub except: Option<(Box<SelectStmt>, bool)>,
}

/// One projection entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: AstExpr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Derived table: `(SELECT ...) alias`.
    Subquery {
        /// The inner query.
        query: Box<SelectStmt>,
        /// Mandatory alias.
        alias: String,
    },
    /// `left JOIN right ON cond` (inner join).
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join condition.
        on: AstExpr,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// An unresolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference `[qualifier.]name`.
    Column {
        /// Optional table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<AstExpr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Lower bound (inclusive).
        low: Box<AstExpr>,
        /// Upper bound (inclusive).
        high: Box<AstExpr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Candidate values.
        list: Vec<AstExpr>,
        /// NOT IN?
        negated: bool,
    },
    /// Function call — aggregates (`sum`, `count`, `avg`, `min`, `max`)
    /// and the scalar functions the workloads use.
    FuncCall {
        /// Lowercased function name.
        name: String,
        /// Arguments; empty plus `star=true` means `count(*)`.
        args: Vec<AstExpr>,
        /// `f(*)`?
        star: bool,
    },
}

impl AstExpr {
    /// Convenience constructor for binary expressions.
    pub fn binary(op: BinOp, left: AstExpr, right: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Column without qualifier.
    pub fn col(name: impl Into<String>) -> AstExpr {
        AstExpr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> AstExpr {
        AstExpr::Literal(v.into())
    }

    /// Does this expression (sub)tree contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::FuncCall { name, .. } if is_aggregate_name(name) => true,
            AstExpr::FuncCall { args, .. } => args.iter().any(AstExpr::contains_aggregate),
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::Unary { expr, .. } => expr.contains_aggregate(),
            AstExpr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            AstExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            AstExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(AstExpr::contains_aggregate)
            }
            AstExpr::Column { .. } | AstExpr::Literal(_) => false,
        }
    }
}

/// Is `name` one of the supported aggregate functions?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "sum" | "count" | "avg" | "min" | "max")
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Column { qualifier, name } => {
                if let Some(q) = qualifier {
                    write!(f, "{q}.")?;
                }
                write!(f, "{name}")
            }
            AstExpr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            AstExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            AstExpr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(NOT {expr})"),
            },
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                if *negated {
                    write!(f, "({expr} NOT BETWEEN {low} AND {high})")
                } else {
                    write!(f, "({expr} BETWEEN {low} AND {high})")
                }
            }
            AstExpr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            AstExpr::FuncCall { name, args, star } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_structure() {
        let e = AstExpr::binary(
            BinOp::And,
            AstExpr::binary(BinOp::Gt, AstExpr::col("a"), AstExpr::lit(3)),
            AstExpr::Between {
                expr: Box::new(AstExpr::col("b")),
                low: Box::new(AstExpr::lit(1)),
                high: Box::new(AstExpr::lit(10)),
                negated: false,
            },
        );
        assert_eq!(e.to_string(), "((a > 3) AND (b BETWEEN 1 AND 10))");
    }

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::FuncCall {
            name: "sum".into(),
            args: vec![AstExpr::col("x")],
            star: false,
        };
        assert!(agg.contains_aggregate());
        let nested = AstExpr::binary(BinOp::Gt, agg, AstExpr::lit(5));
        assert!(nested.contains_aggregate());
        assert!(!AstExpr::col("x").contains_aggregate());
    }
}
