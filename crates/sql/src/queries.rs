//! The paper's workload queries (Appendix A), adapted only where the
//! substrate differs (dates as `YYYYMMDD` integers; table names follow the
//! generators in `imp-data`).
//!
//! The texts live next to the parser so they are validated in-crate (see
//! the tests below); `imp-data` builds its workload streams on top of
//! them and re-exports this module unchanged.

/// Attribute names of the Appendix A synthetic schema: after `id` and the
/// group attribute `a`, the extras are `b`, `c`, … (the `imp-data`
/// generators lay tables out with exactly these names).
pub fn attr_name(i: usize) -> String {
    // b, c, d, ... j, k, l ...
    let c = (b'b' + (i % 25) as u8) as char;
    if i < 25 {
        c.to_string()
    } else {
        format!("{c}{}", i / 25)
    }
}

/// `Q_endtoend` (A.1.7): group-by aggregation with a HAVING window on the
/// average. The constants are parameters — the mixed workload varies them.
pub fn q_endtoend(lo: i64, hi: i64) -> String {
    format!(
        "SELECT a, avg(c) AS ac FROM edb1 GROUP BY a \
         HAVING avg(c) > {lo} AND avg(c) < {hi}"
    )
}

/// `Q_having` (A.1.1) with 1..=10 aggregation functions in HAVING.
pub fn q_having(table: &str, n_aggs: usize) -> String {
    assert!((1..=10).contains(&n_aggs));
    let mut sql = format!("SELECT a, avg(b) AS ab FROM {table} GROUP BY a");
    if n_aggs >= 2 {
        let mut conds = vec!["avg(c) < 1000".to_string()];
        if n_aggs >= 3 {
            conds.push("avg(d) < 1200".into());
        }
        for i in 3..n_aggs {
            // avg(e) > 0 and avg(f) > 0 ... (A.1.1 ten-function variant)
            let attr = attr_name(i);
            conds.push(format!("avg({attr}) > 0"));
        }
        sql.push_str(&format!(" HAVING {}", conds.join(" AND ")));
    }
    sql
}

/// `Q_groups` (A.1.2): vary the group count through the table generator;
/// the HAVING threshold scales with the group domain.
pub fn q_groups(table: &str, avg_threshold: i64) -> String {
    format!(
        "SELECT a, avg(b) AS ab FROM {table} GROUP BY a \
         HAVING avg(c) < {avg_threshold}"
    )
}

/// `Q_join` (A.1.3): aggregation with HAVING over a join of a filtered
/// subquery with a helper table.
pub fn q_join(table: &str, helper: &str, b_threshold: i64, c_threshold: i64) -> String {
    format!(
        "SELECT a, avg(b) AS ab FROM ( \
           SELECT a AS a, b AS b, c AS c FROM {table} WHERE b < {b_threshold} \
         ) tt JOIN {helper} ON (a = ttid) \
         GROUP BY a HAVING avg(c) < {c_threshold}"
    )
}

/// `Q_joinsel` (A.1.4): join with controlled selectivity.
pub fn q_joinsel(table: &str, helper: &str) -> String {
    format!(
        "SELECT a, avg(b) AS ab FROM {table} JOIN {helper} ON (a = ttid) \
         WHERE b < 1000 GROUP BY a HAVING avg(c) < 1000"
    )
}

/// `Q_sketch` (A.1.5): the fragment-count experiment query.
pub fn q_sketch(table: &str, helper: &str) -> String {
    format!(
        "SELECT a, avg(b) AS ab FROM ( \
           SELECT a AS a, b AS b, c AS c FROM {table} WHERE b < 1000 \
         ) tt JOIN {helper} ON (a = ttid) \
         GROUP BY a HAVING avg(c) < 1000"
    )
}

/// `Q_selpd` (A.1.6): selection push-down experiment.
pub fn q_selpd(table: &str, b_threshold: i64) -> String {
    format!(
        "SELECT a, avg(b) AS ab FROM {table} WHERE b < {b_threshold} \
         GROUP BY a HAVING avg(c) < 300"
    )
}

/// `Q_top-k` (A.3): top-10 over grouped averages.
pub fn q_topk(table: &str, k: usize) -> String {
    format!("SELECT a, avg(b) AS ab FROM {table} GROUP BY a ORDER BY a LIMIT {k}")
}

/// Crimes CQ1 (A.2): crimes per beat and year.
pub const CRIMES_CQ1: &str =
    "SELECT beat, year, count(id) AS crime_count FROM crimes GROUP BY beat, year";

/// Crimes CQ2 (A.2): areas with more than 1000 crimes.
pub const CRIMES_CQ2: &str = "SELECT district, community_area, ward, beat, \
     count(beat) AS crime_count FROM crimes \
     GROUP BY district, community_area, ward, beat HAVING count(id) > 1000";

/// `Q_space` (A.4): TPC-H Q10 — revenue of customers with returned items,
/// top 20 by revenue. Dates are YYYYMMDD integers (see `imp-data` docs).
pub const Q_SPACE: &str = "SELECT c_custkey, c_name, \
       sum(l_extendedprice * (1 - l_discount)) AS revenue, \
       c_acctbal, n_name, c_address, c_phone, c_comment \
     FROM customer, orders, lineitem, nation \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND o_orderdate >= 19941201 AND o_orderdate < 19950301 \
       AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
     GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
     ORDER BY revenue LIMIT 20";

/// TPC-H-style query 1 for Fig. 9: big-revenue orders (join + HAVING).
pub const TPCH_HAVING: &str = "SELECT o_custkey, sum(l_extendedprice * (1 - l_discount)) AS rev \
     FROM orders JOIN lineitem ON (o_orderkey = l_orderkey) \
     WHERE l_returnflag = 'R' \
     GROUP BY o_custkey HAVING sum(l_extendedprice * (1 - l_discount)) > 50000";

/// TPC-H-style query 2 for Fig. 9: single-table aggregation with HAVING.
pub const TPCH_SINGLE: &str = "SELECT l_orderkey, sum(l_quantity) AS q FROM lineitem \
     GROUP BY l_orderkey HAVING sum(l_quantity) > 150";

/// TPC-H-style top-k for Fig. 9: most valuable orders.
pub const TPCH_TOPK: &str = "SELECT l_orderkey, sum(l_extendedprice) AS v FROM lineitem \
     GROUP BY l_orderkey ORDER BY v DESC LIMIT 10";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_one, QueryTemplate, Statement};

    #[test]
    fn every_appendix_query_parses() {
        let texts = [
            q_endtoend(100, 200),
            q_having("r500", 1),
            q_having("r500", 10),
            q_groups("r500", 1_600),
            q_join("r500", "h", 1_000, 2_000),
            q_joinsel("r500", "h"),
            q_sketch("r500", "h"),
            q_selpd("r500", 500),
            q_topk("r500", 10),
            CRIMES_CQ1.to_string(),
            CRIMES_CQ2.to_string(),
            Q_SPACE.to_string(),
            TPCH_HAVING.to_string(),
            TPCH_SINGLE.to_string(),
            TPCH_TOPK.to_string(),
        ];
        for sql in texts {
            assert!(
                matches!(parse_one(&sql), Ok(Statement::Select(_))),
                "failed to parse: {sql}"
            );
        }
    }

    #[test]
    fn q_having_agg_counts() {
        assert!(!q_having("r500", 1).contains("HAVING"));
        assert!(q_having("r500", 2).contains("avg(c) < 1000"));
        let ten = q_having("r500", 10);
        assert_eq!(ten.matches("avg(").count(), 10);
    }

    #[test]
    fn attr_names() {
        assert_eq!(attr_name(0), "b");
        assert_eq!(attr_name(8), "j");
        assert_eq!(attr_name(25), "b1");
    }

    #[test]
    fn templates_align_for_endtoend() {
        let a = q_endtoend(100, 200);
        let b = q_endtoend(300, 400);
        let Statement::Select(sa) = parse_one(&a).unwrap() else {
            panic!()
        };
        let Statement::Select(sb) = parse_one(&b).unwrap() else {
            panic!()
        };
        assert_eq!(QueryTemplate::of(&sa), QueryTemplate::of(&sb));
    }
}
