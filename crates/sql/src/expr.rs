//! Resolved scalar expressions and their evaluator.
//!
//! After name resolution, column references become positional indices into
//! the input row, so evaluation needs no name lookups. The evaluator
//! implements SQL three-valued-logic-lite: NULL operands propagate to NULL,
//! and a NULL predicate result is treated as *false* by filters (the only
//! consumers of boolean results in our plans).

use crate::ast::{BinOp, UnOp};
use crate::error::SqlError;
use crate::Result;
use imp_storage::{Row, Value};
use std::fmt;

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] IN (v1, ..)` over constant lists.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidates.
        list: Vec<Expr>,
        /// Negated?
        negated: bool,
    },
}

impl Expr {
    /// Shorthand for binary expressions.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `lo <= col AND col <= hi` (inclusive range on a column) — the shape
    /// the use-rewrite injects.
    pub fn between_col(col: usize, lo: Value, hi: Value) -> Expr {
        Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Ge, Expr::Col(col), Expr::Lit(lo)),
            Expr::binary(BinOp::Le, Expr::Col(col), Expr::Lit(hi)),
        )
    }

    /// OR-together a list of predicates (returns `false` literal if empty).
    pub fn disjunction(preds: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = preds.into_iter();
        match it.next() {
            None => Expr::Lit(Value::Bool(false)),
            Some(first) => it.fold(first, |acc, p| Expr::binary(BinOp::Or, acc, p)),
        }
    }

    /// AND-together a list of predicates (returns `true` literal if empty).
    pub fn conjunction(preds: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = preds.into_iter();
        match it.next() {
            None => Expr::Lit(Value::Bool(true)),
            Some(first) => it.fold(first, |acc, p| Expr::binary(BinOp::And, acc, p)),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Col(i) => {
                if *i >= row.arity() {
                    return Err(SqlError::Semantic(format!(
                        "column index {i} out of bounds for arity {}",
                        row.arity()
                    )));
                }
                Ok(row[*i].clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                // Short-circuit logic handles NULLs Kleene-style enough for
                // filters: false AND x = false, true OR x = true.
                if *op == BinOp::And {
                    let l = left.eval(row)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = right.eval(row)?;
                    if r == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Bool(truthy(&l)? && truthy(&r)?));
                }
                if *op == BinOp::Or {
                    let l = left.eval(row)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = right.eval(row)?;
                    if r == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Bool(truthy(&l)? || truthy(&r)?));
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(SqlError::Semantic(format!("cannot negate {other}"))),
                    },
                    UnOp::Not => Ok(Value::Bool(!truthy(&v)?)),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for cand in list {
                    let c = cand.eval(row)?;
                    if !c.is_null() && c == v {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
        }
    }

    /// Evaluate as a filter predicate: NULL counts as false.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(SqlError::Semantic(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// All column indices referenced by the expression.
    pub fn columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.columns(out),
            Expr::InList { expr, list, .. } => {
                expr.columns(out);
                for e in list {
                    e.columns(out);
                }
            }
        }
    }

    /// Rewrite column indices through `map` (used when predicates are
    /// pushed through projections / into delta-fetch queries).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.remap_columns(map)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.remap_columns(map)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.remap_columns(map)),
                list: list.iter().map(|e| e.remap_columns(map)).collect(),
                negated: *negated,
            },
        }
    }
}

fn truthy(v: &Value) -> Result<bool> {
    v.as_bool()
        .ok_or_else(|| SqlError::Semantic(format!("expected boolean, found {v}")))
}

/// Evaluate a non-logical binary operator over two values.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Neq => return Ok(Value::Bool(l != r)),
        Lt => return Ok(Value::Bool(l < r)),
        Le => return Ok(Value::Bool(l <= r)),
        Gt => return Ok(Value::Bool(l > r)),
        Ge => return Ok(Value::Bool(l >= r)),
        _ => {}
    }
    // arithmetic
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                Add => a.checked_add(*b).map(Value::Int),
                Sub => a.checked_sub(*b).map(Value::Int),
                Mul => a.checked_mul(*b).map(Value::Int),
                Div => {
                    if *b == 0 {
                        Some(Value::Null)
                    } else {
                        Some(Value::Int(a / b))
                    }
                }
                Mod => {
                    if *b == 0 {
                        Some(Value::Null)
                    } else {
                        Some(Value::Int(a % b))
                    }
                }
                _ => unreachable!("logical ops handled above"),
            };
            v.ok_or_else(|| SqlError::Semantic(format!("integer overflow in {a} {op:?} {b}")))
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(SqlError::Semantic(format!(
                        "cannot apply {} to {l} and {r}",
                        op.symbol()
                    )))
                }
            };
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    #[test]
    fn arithmetic() {
        let r = row![3, 4.0];
        let e = Expr::binary(
            BinOp::Mul,
            Expr::Col(0),
            Expr::binary(BinOp::Add, Expr::Col(1), Expr::Lit(Value::Int(1))),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Float(15.0));
    }

    #[test]
    fn int_arithmetic_stays_int() {
        let r = row![7, 2];
        let e = Expr::binary(BinOp::Div, Expr::Col(0), Expr::Col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_is_null() {
        let r = row![7, 0];
        let e = Expr::binary(BinOp::Div, Expr::Col(0), Expr::Col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagates_and_predicate_treats_as_false() {
        let r = Row::new(vec![Value::Null, Value::Int(1)]);
        let e = Expr::binary(BinOp::Gt, Expr::Col(0), Expr::Col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&r).unwrap());
    }

    #[test]
    fn short_circuit_logic() {
        let r = row![false];
        // false AND <type error> must not evaluate the right side fully.
        let e = Expr::binary(
            BinOp::And,
            Expr::Col(0),
            Expr::binary(
                BinOp::Add,
                Expr::Lit(Value::str("x")),
                Expr::Lit(Value::Int(1)),
            ),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn between_col_and_disjunction() {
        // Sketch rewrite shape: price BETWEEN 1001 AND 1500 OR BETWEEN 1501 AND 10000.
        let e = Expr::disjunction([
            Expr::between_col(0, Value::Int(1001), Value::Int(1500)),
            Expr::between_col(0, Value::Int(1501), Value::Int(10000)),
        ]);
        assert!(e.eval_predicate(&row![1299]).unwrap());
        assert!(e.eval_predicate(&row![9999]).unwrap());
        assert!(!e.eval_predicate(&row![999]).unwrap());
    }

    #[test]
    fn in_list() {
        let e = Expr::InList {
            expr: Box::new(Expr::Col(0)),
            list: vec![Expr::Lit(Value::Int(1)), Expr::Lit(Value::Int(3))],
            negated: false,
        };
        assert!(e.eval_predicate(&row![3]).unwrap());
        assert!(!e.eval_predicate(&row![2]).unwrap());
    }

    #[test]
    fn remap_columns() {
        let e = Expr::binary(BinOp::Add, Expr::Col(0), Expr::Col(2));
        let m = e.remap_columns(&|i| i + 10);
        let mut cols = vec![];
        m.columns(&mut cols);
        assert_eq!(cols, vec![10, 12]);
    }
}
