//! # imp-sql
//!
//! SQL frontend for IMP: "Users send SQL queries and updates to IMP that
//! are parsed using IMP's parser and translated into an intermediate
//! representation (relational algebra with update operations)" (paper §2).
//!
//! * [`lexer`] / [`parser`] — hand-written lexer and recursive-descent
//!   parser for the SQL dialect the paper's workloads use (Appendix A):
//!   SELECT with joins / GROUP BY / HAVING / ORDER BY / LIMIT / BETWEEN,
//!   subqueries in FROM, and INSERT / DELETE / UPDATE / CREATE TABLE.
//! * [`expr`] — resolved scalar expressions with an evaluator (shared by
//!   the backend engine, the capture rewrites, and the incremental engine).
//! * [`plan`] — the logical bag-algebra of paper Fig. 4.
//! * [`resolver`] — binds the AST against a catalog into a [`plan::LogicalPlan`].
//! * [`template`] — query templates: "a version of a query Q where
//!   constants in selection conditions are replaced with placeholders such
//!   that two queries that only differ in these constants have the same
//!   key" (paper §7.1). Used as the sketch-store key.
//! * [`queries`] — the Appendix A workload query texts, validated against
//!   this parser in-crate (the generators in `imp-data` build on them).

pub mod ast;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod queries;
pub mod resolver;
pub mod template;

pub use ast::{AstExpr, BinOp, SelectItem, SelectStmt, Statement, TableRef, UnOp};
pub use error::SqlError;
pub use expr::Expr;
pub use plan::{flatten_join, AggFunc, AggSpec, LogicalPlan, NaryJoin, SortKey};
pub use resolver::{Catalog, Resolver};
pub use template::QueryTemplate;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Parse a sequence of SQL statements separated by `;`.
pub fn parse(sql: &str) -> Result<Vec<Statement>> {
    parser::Parser::new(sql)?.parse_statements()
}

/// Parse exactly one SQL statement.
pub fn parse_one(sql: &str) -> Result<Statement> {
    let mut stmts = parse(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(SqlError::Parse(format!("expected 1 statement, found {n}"))),
    }
}
