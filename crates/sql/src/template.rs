//! Query templates.
//!
//! "IMP stores sketches in a hash-table where the key is a query template
//! for which the sketch was created … a query template refers to a version
//! of a query Q where constants in selection conditions are replaced with
//! placeholders such that two queries that only differ in these constants
//! have the same key. This is done to be able to efficiently prefilter
//! candidate sketches" (paper §7.1).

use crate::ast::{AstExpr, SelectItem, SelectStmt, TableRef};
use std::fmt;
use std::hash::Hash;

/// A canonical, constant-free rendering of a SELECT statement, usable as a
/// hash key for the sketch store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryTemplate(String);

impl QueryTemplate {
    /// Build the template of a statement.
    pub fn of(stmt: &SelectStmt) -> QueryTemplate {
        let mut s = String::new();
        render_select(stmt, &mut s);
        QueryTemplate(s)
    }

    /// The canonical text (placeholders rendered as `?`).
    pub fn text(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for QueryTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn render_select(stmt: &SelectStmt, out: &mut String) {
    out.push_str("SELECT ");
    if stmt.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in stmt.projection.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::Expr { expr, alias } => {
                render_expr(expr, out);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    out.push_str(&a.to_ascii_lowercase());
                }
            }
        }
    }
    out.push_str(" FROM ");
    for (i, t) in stmt.from.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_table_ref(t, out);
    }
    if let Some(w) = &stmt.filter {
        out.push_str(" WHERE ");
        render_expr(w, out);
    }
    if !stmt.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in stmt.group_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_expr(g, out);
        }
    }
    if let Some(h) = &stmt.having {
        out.push_str(" HAVING ");
        render_expr(h, out);
    }
    if !stmt.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, (e, asc)) in stmt.order_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_expr(e, out);
            if !asc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(k) = stmt.limit {
        // LIMIT constant is part of the template: a top-10 sketch is not
        // interchangeable with a top-100 sketch.
        out.push_str(&format!(" LIMIT {k}"));
    }
    if let Some((rhs, all)) = &stmt.except {
        out.push_str(if *all { " EXCEPT ALL " } else { " EXCEPT " });
        render_select(rhs, out);
    }
}

fn render_table_ref(t: &TableRef, out: &mut String) {
    match t {
        TableRef::Table { name, alias } => {
            out.push_str(&name.to_ascii_lowercase());
            if let Some(a) = alias {
                out.push(' ');
                out.push_str(&a.to_ascii_lowercase());
            }
        }
        TableRef::Subquery { query, alias } => {
            out.push('(');
            render_select(query, out);
            out.push_str(") ");
            out.push_str(&alias.to_ascii_lowercase());
        }
        TableRef::Join { left, right, on } => {
            render_table_ref(left, out);
            out.push_str(" JOIN ");
            render_table_ref(right, out);
            out.push_str(" ON ");
            render_expr(on, out);
        }
    }
}

fn render_expr(e: &AstExpr, out: &mut String) {
    match e {
        AstExpr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                out.push_str(&q.to_ascii_lowercase());
                out.push('.');
            }
            out.push_str(&name.to_ascii_lowercase());
        }
        // The whole point: constants become placeholders.
        AstExpr::Literal(_) => out.push('?'),
        AstExpr::Binary { op, left, right } => {
            out.push('(');
            render_expr(left, out);
            out.push_str(op.symbol());
            render_expr(right, out);
            out.push(')');
        }
        AstExpr::Unary { op, expr } => {
            out.push('(');
            out.push_str(match op {
                crate::ast::UnOp::Neg => "-",
                crate::ast::UnOp::Not => "NOT ",
            });
            render_expr(expr, out);
            out.push(')');
        }
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            out.push('(');
            render_expr(expr, out);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            render_expr(low, out);
            out.push_str(" AND ");
            render_expr(high, out);
            out.push(')');
        }
        AstExpr::IsNull { expr, negated } => {
            out.push('(');
            render_expr(expr, out);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            out.push(')');
        }
        AstExpr::InList {
            expr,
            list,
            negated,
        } => {
            out.push('(');
            render_expr(expr, out);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, x) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_expr(x, out);
            }
            out.push_str("))");
        }
        AstExpr::FuncCall { name, args, star } => {
            out.push_str(name);
            out.push('(');
            if *star {
                out.push('*');
            } else {
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_expr(a, out);
                }
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_one, Statement};

    fn tmpl(sql: &str) -> QueryTemplate {
        let Statement::Select(s) = parse_one(sql).unwrap() else {
            panic!()
        };
        QueryTemplate::of(&s)
    }

    #[test]
    fn constants_do_not_matter() {
        let a = tmpl("SELECT a, avg(c) FROM t GROUP BY a HAVING avg(c) > 100");
        let b = tmpl("SELECT a, avg(c) FROM t GROUP BY a HAVING avg(c) > 999");
        assert_eq!(a, b);
    }

    #[test]
    fn structure_matters() {
        let a = tmpl("SELECT a FROM t WHERE b > 1");
        let b = tmpl("SELECT a FROM t WHERE b < 1");
        assert_ne!(a, b);
    }

    #[test]
    fn case_insensitive_idents() {
        let a = tmpl("SELECT A FROM T WHERE B > 1");
        let b = tmpl("select a from t where b > 2");
        assert_eq!(a, b);
    }

    #[test]
    fn limit_is_part_of_template() {
        let a = tmpl("SELECT a FROM t ORDER BY a LIMIT 10");
        let b = tmpl("SELECT a FROM t ORDER BY a LIMIT 20");
        assert_ne!(a, b);
    }

    #[test]
    fn renders_placeholders() {
        let t = tmpl("SELECT a FROM t WHERE b BETWEEN 2 AND 7");
        assert!(t.text().contains("BETWEEN ? AND ?"), "{t}");
    }
}
