//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Keyword, Token};
use crate::Result;
use imp_storage::{DataType, Value};

/// Parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `sql` and build a parser.
    pub fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &Token::Keyword(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {k:?}, found {}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {t}, found {}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    /// Parse a `;`-separated statement list.
    pub fn parse_statements(&mut self) -> Result<Vec<Statement>> {
        let mut stmts = Vec::new();
        loop {
            while self.eat(&Token::Semicolon) {}
            if self.peek() == &Token::Eof {
                break;
            }
            stmts.push(self.parse_statement()?);
        }
        Ok(stmts)
    }

    /// Parse one statement.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Token::Keyword(Keyword::Select) => Ok(Statement::Select(self.parse_select()?)),
            Token::Keyword(Keyword::Insert) => self.parse_insert(),
            Token::Keyword(Keyword::Delete) => self.parse_delete(),
            Token::Keyword(Keyword::Update) => self.parse_update(),
            Token::Keyword(Keyword::Create) => self.parse_create(),
            Token::Keyword(Keyword::Explain) => {
                self.advance();
                Ok(Statement::Explain(self.parse_select()?))
            }
            other => Err(SqlError::Parse(format!("unexpected token {other}"))),
        }
    }

    /// Parse a SELECT statement (entry also used for subqueries).
    pub fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);
        let mut projection = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            projection.push(self.parse_select_item()?);
        }
        self.expect_keyword(Keyword::From)?;
        let mut from = vec![self.parse_table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let e = self.parse_expr()?;
                let mut asc = true;
                if self.eat_keyword(Keyword::Desc) {
                    asc = false;
                } else {
                    self.eat_keyword(Keyword::Asc);
                }
                order_by.push((e, asc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.advance() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )))
                }
            }
        } else {
            None
        };
        // `EXCEPT [ALL] <select>` suffix (set difference).
        let except = if self.eat_keyword(Keyword::Except) {
            let all = self.eat_keyword(Keyword::All);
            Some((Box::new(self.parse_select()?), all))
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            distinct,
            except,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.peek() == &Token::Star {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // implicit alias: `expr name`
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_primary_table_ref()?;
        loop {
            let is_join = match self.peek() {
                Token::Keyword(Keyword::Join) => {
                    self.advance();
                    true
                }
                Token::Keyword(Keyword::Inner) => {
                    self.advance();
                    self.expect_keyword(Keyword::Join)?;
                    true
                }
                _ => false,
            };
            if !is_join {
                break;
            }
            let right = self.parse_primary_table_ref()?;
            self.expect_keyword(Keyword::On)?;
            let on = self.parse_expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn parse_primary_table_ref(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            let query = self.parse_select()?;
            self.expect(&Token::RParen)?;
            self.eat_keyword(Keyword::As);
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        // `t AS alias` or the implicit `t alias` form.
        let alias = if self.eat_keyword(Keyword::As) || matches!(self.peek(), Token::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Insert)?;
        self.expect_keyword(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.peek() == &Token::LParen && matches!(self.peek2(), Token::Ident(_)) {
            self.expect(&Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat(&Token::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Delete)?;
        self.expect_keyword(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_keyword(Keyword::Set)?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let e = self.parse_expr()?;
            sets.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Create)?;
        self.expect_keyword(Keyword::Table)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let dtype = match self.advance() {
                Token::Keyword(Keyword::Int) => DataType::Int,
                Token::Keyword(Keyword::Float) => DataType::Float,
                Token::Keyword(Keyword::Text) => DataType::Str,
                Token::Keyword(Keyword::Bool) => DataType::Bool,
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected column type (INT|FLOAT|TEXT|BOOL), found {other}"
                    )))
                }
            };
            columns.push((col, dtype));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    // ---- expressions: precedence climbing ----

    /// Parse a full expression (lowest precedence: OR).
    pub fn parse_expr(&mut self) -> Result<AstExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = AstExpr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = AstExpr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            return Ok(AstExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<AstExpr> {
        let left = self.parse_additive()?;
        // postfix predicates
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek() == &Token::Keyword(Keyword::Not)
            && matches!(
                self.peek2(),
                Token::Keyword(Keyword::Between) | Token::Keyword(Keyword::In)
            ) {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword(Keyword::In) {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse(
                "expected BETWEEN or IN after NOT".to_string(),
            ));
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::Neq => BinOp::Neq,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(AstExpr::binary(op, left, right))
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = AstExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = AstExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        if self.eat(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(AstExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        match self.advance() {
            Token::Int(i) => Ok(AstExpr::Literal(Value::Int(i))),
            Token::Float(f) => Ok(AstExpr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(AstExpr::Literal(Value::str(s))),
            Token::Keyword(Keyword::Null) => Ok(AstExpr::Literal(Value::Null)),
            Token::Keyword(Keyword::True) => Ok(AstExpr::Literal(Value::Bool(true))),
            Token::Keyword(Keyword::False) => Ok(AstExpr::Literal(Value::Bool(false))),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // function call?
                if self.peek() == &Token::LParen {
                    self.advance();
                    if self.eat(&Token::Star) {
                        self.expect(&Token::RParen)?;
                        return Ok(AstExpr::FuncCall {
                            name: name.to_ascii_lowercase(),
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        args.push(self.parse_expr()?);
                        while self.eat(&Token::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(AstExpr::FuncCall {
                        name: name.to_ascii_lowercase(),
                        args,
                        star: false,
                    });
                }
                // qualified column?
                if self.peek() == &Token::Dot {
                    self.advance();
                    let col = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(AstExpr::col(name))
            }
            other => Err(SqlError::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;

    #[test]
    fn parses_running_example() {
        // Q_top from paper Fig. 1.
        let stmt = parse_one(
            "SELECT brand, SUM(price * numSold) AS rev \
             FROM sales GROUP BY brand \
             HAVING SUM(price * numSold) > 5000",
        )
        .unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert_eq!(s.projection.len(), 2);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_join_with_subquery() {
        // Q_join shape from Appendix A.1.3.
        let stmt = parse_one(
            "SELECT a, avg(b) AS ab FROM ( \
               SELECT a AS a, b AS b, c AS c FROM t1gb50g WHERE b < 10 \
             ) tt JOIN tjoinhelp ON (a = ttid) \
             GROUP BY a HAVING avg(c) < 10",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(s.from[0], TableRef::Join { .. }));
    }

    #[test]
    fn parses_top_k() {
        let stmt =
            parse_one("SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY a LIMIT 10").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1); // ascending
    }

    #[test]
    fn parses_between_and_or() {
        let stmt = parse_one(
            "SELECT * FROM s WHERE (price BETWEEN 1001 AND 1500) \
             OR (price BETWEEN 1501 AND 10000)",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let f = s.filter.unwrap();
        assert!(matches!(f, AstExpr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn parses_insert_delete_update() {
        assert!(matches!(
            parse_one("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap(),
            Statement::Insert { rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse_one("DELETE FROM t WHERE a = 3").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_one("UPDATE t SET a = a + 1 WHERE b < 2").unwrap(),
            Statement::Update { sets, .. } if sets.len() == 1
        ));
    }

    #[test]
    fn parses_create_table() {
        let s = parse_one("CREATE TABLE t (a INT, b FLOAT, c TEXT, d BOOL)").unwrap();
        assert!(matches!(
            s,
            Statement::CreateTable { columns, .. } if columns.len() == 4
        ));
    }

    #[test]
    fn precedence_mul_before_add_before_cmp() {
        let Statement::Select(s) = parse_one("SELECT * FROM t WHERE a + b * 2 > 10").unwrap()
        else {
            panic!()
        };
        assert_eq!(s.filter.unwrap().to_string(), "((a + (b * 2)) > 10)");
    }

    #[test]
    fn not_between() {
        let Statement::Select(s) =
            parse_one("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2").unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            s.filter.unwrap(),
            AstExpr::Between { negated: true, .. }
        ));
    }

    #[test]
    fn count_star() {
        let Statement::Select(s) = parse_one("SELECT count(*) FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert!(matches!(expr, AstExpr::FuncCall { star: true, .. }));
    }

    #[test]
    fn parses_except_and_except_all() {
        let Statement::Select(s) = parse_one("SELECT a FROM t EXCEPT ALL SELECT a FROM u").unwrap()
        else {
            panic!()
        };
        let (rhs, all) = s.except.unwrap();
        assert!(all);
        assert_eq!(rhs.from.len(), 1);
        let Statement::Select(s) = parse_one("SELECT a FROM t EXCEPT SELECT a FROM u").unwrap()
        else {
            panic!()
        };
        assert!(!s.except.unwrap().1);
    }

    #[test]
    fn parses_explain() {
        assert!(matches!(
            parse_one("EXPLAIN SELECT a FROM t").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn multiple_statements() {
        let stmts = crate::parse("SELECT * FROM a; SELECT * FROM b;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_one("SELECT FROM").is_err());
        assert!(parse_one("FROB x").is_err());
    }
}
