//! SQL frontend errors.

use std::fmt;

/// Errors from lexing, parsing, or name resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexer error with byte offset.
    Lex {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// Parser error.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// A column reference matched several in-scope columns.
    AmbiguousColumn(String),
    /// Aggregate used where not allowed, bad arity, etc.
    Semantic(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, offset } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}
