//! Logical plans: the bag relational algebra of paper Fig. 4.
//!
//! Plans are trees of the operators the paper's incremental semantics
//! covers: table access, selection `σ`, projection `Π`, cross product /
//! join `⋈`, aggregation `γ` (SUM / COUNT / AVG / MIN / MAX), duplicate
//! removal `δ`, and top-k `τ_{k,O}` (ORDER BY + LIMIT).

use crate::expr::Expr;
use imp_storage::{DataType, Field, Schema, Value};
use std::fmt;

/// Supported aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `sum(a)`
    Sum,
    /// `count(a)` / `count(*)`
    Count,
    /// `avg(a)`
    Avg,
    /// `min(a)`
    Min,
    /// `max(a)`
    Max,
}

impl AggFunc {
    /// Lowercase SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse a lowercase function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name {
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One aggregation `f(arg) → name` inside an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument expression over the aggregate's input (`None` = `count(*)`).
    pub arg: Option<Expr>,
    /// Output attribute name.
    pub name: String,
}

impl AggSpec {
    /// Output type given the input schema.
    pub fn output_type(&self, input: &Schema) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => self
                .arg
                .as_ref()
                .map(|e| infer_type(e, input))
                .unwrap_or(DataType::Int),
        }
    }
}

/// A sort key: output-column position plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column position in the node's input.
    pub column: usize,
    /// Ascending?
    pub asc: bool,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base table access.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Table schema with fields qualified by the table alias.
        schema: Schema,
    },
    /// Selection `σ_pred`.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Projection `Π_exprs`.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Projection expressions over the input schema.
        exprs: Vec<Expr>,
        /// Output schema (names/aliases recorded here).
        schema: Schema,
    },
    /// Equi-join (empty keys = cross product).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equi-key columns on the left input.
        left_keys: Vec<usize>,
        /// Equi-key columns on the right input (parallel to `left_keys`).
        right_keys: Vec<usize>,
    },
    /// Grouping + aggregation `γ_{aggs; group_by}`.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by expressions over the input schema.
        group_by: Vec<Expr>,
        /// Aggregations.
        aggs: Vec<AggSpec>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
    },
    /// Duplicate removal `δ`.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Top-k `τ_{k,O}`: first `k` tuples in `keys` order (empty keys =
    /// plain LIMIT).
    TopK {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
        /// Row budget.
        k: u64,
    },
    /// Full sort (ORDER BY without LIMIT).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
    },
    /// Set difference `left EXCEPT [ALL] right` (paper §9 future work:
    /// evaluated by the backend, not maintained incrementally).
    Except {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input (same arity).
        right: Box<LogicalPlan>,
        /// Bag semantics (`EXCEPT ALL`) vs set semantics (`EXCEPT`).
        all: bool,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::TopK { input, .. } => input.schema(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Except { left, .. } => left.schema(),
        }
    }

    /// Names of all base tables referenced (used to route updates to the
    /// sketches that may be affected; paper §2 "based on which tables are
    /// referenced by the sketch's query").
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { table, .. } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Sort { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Except { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Number of operators in the plan (`Q^n` in the proof of Thm. 6.1).
    pub fn operator_count(&self) -> usize {
        1 + match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Sort { input, .. } => input.operator_count(),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Except { left, right, .. } => {
                left.operator_count() + right.operator_count()
            }
        }
    }

    /// Pretty indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, .. } => {
                out.push_str(&format!("{pad}Scan {table}\n"));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| format!("{e} AS {}", f.name))
                    .collect();
                out.push_str(&format!("{pad}Project {}\n", cols.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                if left_keys.is_empty() {
                    out.push_str(&format!("{pad}CrossJoin\n"));
                } else {
                    let keys: Vec<String> = left_keys
                        .iter()
                        .zip(right_keys)
                        .map(|(l, r)| format!("#{l}=#{r}"))
                        .collect();
                    out.push_str(&format!("{pad}Join on {}\n", keys.join(" AND ")));
                }
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let g: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|s| match &s.arg {
                        Some(e) => format!("{}({e}) AS {}", s.func.name(), s.name),
                        None => format!("count(*) AS {}", s.name),
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate group=[{}] aggs=[{}]\n",
                    g.join(", "),
                    a.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::TopK { input, keys, k } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|s| format!("#{}{}", s.column, if s.asc { "" } else { " DESC" }))
                    .collect();
                out.push_str(&format!("{pad}TopK k={k} order=[{}]\n", ks.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|s| format!("#{}{}", s.column, if s.asc { "" } else { " DESC" }))
                    .collect();
                out.push_str(&format!("{pad}Sort order=[{}]\n", ks.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Except { left, right, all } => {
                out.push_str(&format!("{pad}Except{}\n", if *all { " ALL" } else { "" }));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
        }
    }
}

/// Infer the value type of an expression over a schema (best effort;
/// execution is dynamically typed, this feeds schema metadata only).
pub fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    use crate::ast::BinOp::*;
    match expr {
        Expr::Col(i) => schema
            .fields()
            .get(*i)
            .map(|f| f.dtype)
            .unwrap_or(DataType::Int),
        Expr::Lit(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Binary { op, left, right } => match op {
            Add | Sub | Mul | Div | Mod => {
                let l = infer_type(left, schema);
                let r = infer_type(right, schema);
                if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            _ => DataType::Bool,
        },
        Expr::Unary { op, expr } => match op {
            crate::ast::UnOp::Neg => infer_type(expr, schema),
            crate::ast::UnOp::Not => DataType::Bool,
        },
        Expr::IsNull { .. } | Expr::InList { .. } => DataType::Bool,
    }
}

/// Derive a reasonable output field for a projection expression.
pub fn field_for_expr(expr: &Expr, input: &Schema, alias: Option<&str>, idx: usize) -> Field {
    let dtype = infer_type(expr, input);
    let name = match alias {
        Some(a) => a.to_string(),
        None => match expr {
            Expr::Col(i) => input.field(*i).name.clone(),
            _ => format!("col{idx}"),
        },
    };
    let mut f = Field::nullable(name, dtype);
    if alias.is_none() {
        if let Expr::Col(i) = expr {
            f.qualifier = input.field(*i).qualifier.clone();
            f.nullable = input.field(*i).nullable;
        }
    }
    f
}

/// A literal ordering helper shared by Sort / TopK implementations.
pub fn compare_rows(
    a: &imp_storage::Row,
    b: &imp_storage::Row,
    keys: &[SortKey],
) -> std::cmp::Ordering {
    for k in keys {
        let ord = a[k.column].cmp(&b[k.column]);
        let ord = if k.asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Extract the order-by key values of a row (used by incremental top-k).
pub fn sort_key_values(row: &imp_storage::Row, keys: &[SortKey]) -> Vec<Value> {
    keys.iter().map(|k| row[k.column].clone()).collect()
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    #[test]
    fn compare_rows_respects_direction() {
        let keys = [
            SortKey {
                column: 0,
                asc: true,
            },
            SortKey {
                column: 1,
                asc: false,
            },
        ];
        let a = row![1, 5];
        let b = row![1, 9];
        assert_eq!(compare_rows(&a, &b, &keys), std::cmp::Ordering::Greater);
        assert_eq!(compare_rows(&a, &a, &keys), std::cmp::Ordering::Equal);
    }

    #[test]
    fn tables_deduplicated() {
        let scan = |t: &str| LogicalPlan::Scan {
            table: t.into(),
            schema: Schema::empty(),
        };
        let p = LogicalPlan::Join {
            left: Box::new(scan("r")),
            right: Box::new(LogicalPlan::Join {
                left: Box::new(scan("s")),
                right: Box::new(scan("r")),
                left_keys: vec![],
                right_keys: vec![],
            }),
            left_keys: vec![],
            right_keys: vec![],
        };
        assert_eq!(p.tables(), vec!["r".to_string(), "s".to_string()]);
        assert_eq!(p.operator_count(), 5);
    }
}
