//! Logical plans: the bag relational algebra of paper Fig. 4.
//!
//! Plans are trees of the operators the paper's incremental semantics
//! covers: table access, selection `σ`, projection `Π`, cross product /
//! join `⋈`, aggregation `γ` (SUM / COUNT / AVG / MIN / MAX), duplicate
//! removal `δ`, and top-k `τ_{k,O}` (ORDER BY + LIMIT).

use crate::expr::Expr;
use imp_storage::{DataType, Field, Schema, Value};
use std::fmt;

/// Supported aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `sum(a)`
    Sum,
    /// `count(a)` / `count(*)`
    Count,
    /// `avg(a)`
    Avg,
    /// `min(a)`
    Min,
    /// `max(a)`
    Max,
}

impl AggFunc {
    /// Lowercase SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse a lowercase function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name {
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One aggregation `f(arg) → name` inside an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument expression over the aggregate's input (`None` = `count(*)`).
    pub arg: Option<Expr>,
    /// Output attribute name.
    pub name: String,
}

impl AggSpec {
    /// Output type given the input schema.
    pub fn output_type(&self, input: &Schema) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => self
                .arg
                .as_ref()
                .map(|e| infer_type(e, input))
                .unwrap_or(DataType::Int),
        }
    }
}

/// A sort key: output-column position plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column position in the node's input.
    pub column: usize,
    /// Ascending?
    pub asc: bool,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base table access.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Table schema with fields qualified by the table alias.
        schema: Schema,
    },
    /// Selection `σ_pred`.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Projection `Π_exprs`.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Projection expressions over the input schema.
        exprs: Vec<Expr>,
        /// Output schema (names/aliases recorded here).
        schema: Schema,
    },
    /// Equi-join (empty keys = cross product).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equi-key columns on the left input.
        left_keys: Vec<usize>,
        /// Equi-key columns on the right input (parallel to `left_keys`).
        right_keys: Vec<usize>,
    },
    /// Grouping + aggregation `γ_{aggs; group_by}`.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by expressions over the input schema.
        group_by: Vec<Expr>,
        /// Aggregations.
        aggs: Vec<AggSpec>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
    },
    /// Duplicate removal `δ`.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Top-k `τ_{k,O}`: first `k` tuples in `keys` order (empty keys =
    /// plain LIMIT).
    TopK {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
        /// Row budget.
        k: u64,
    },
    /// Full sort (ORDER BY without LIMIT).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
    },
    /// Set difference `left EXCEPT [ALL] right` (paper §9 future work:
    /// evaluated by the backend, not maintained incrementally).
    Except {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input (same arity).
        right: Box<LogicalPlan>,
        /// Bag semantics (`EXCEPT ALL`) vs set semantics (`EXCEPT`).
        all: bool,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::TopK { input, .. } => input.schema(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Except { left, .. } => left.schema(),
        }
    }

    /// Names of all base tables referenced (used to route updates to the
    /// sketches that may be affected; paper §2 "based on which tables are
    /// referenced by the sketch's query").
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { table, .. } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Sort { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Except { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Number of operators in the plan (`Q^n` in the proof of Thm. 6.1).
    pub fn operator_count(&self) -> usize {
        1 + match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Sort { input, .. } => input.operator_count(),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Except { left, right, .. } => {
                left.operator_count() + right.operator_count()
            }
        }
    }

    /// Pretty indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, .. } => {
                out.push_str(&format!("{pad}Scan {table}\n"));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| format!("{e} AS {}", f.name))
                    .collect();
                out.push_str(&format!("{pad}Project {}\n", cols.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                if left_keys.is_empty() {
                    out.push_str(&format!("{pad}CrossJoin\n"));
                } else {
                    let keys: Vec<String> = left_keys
                        .iter()
                        .zip(right_keys)
                        .map(|(l, r)| format!("#{l}=#{r}"))
                        .collect();
                    out.push_str(&format!("{pad}Join on {}\n", keys.join(" AND ")));
                }
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let g: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|s| match &s.arg {
                        Some(e) => format!("{}({e}) AS {}", s.func.name(), s.name),
                        None => format!("count(*) AS {}", s.name),
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate group=[{}] aggs=[{}]\n",
                    g.join(", "),
                    a.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::TopK { input, keys, k } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|s| format!("#{}{}", s.column, if s.asc { "" } else { " DESC" }))
                    .collect();
                out.push_str(&format!("{pad}TopK k={k} order=[{}]\n", ks.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|s| format!("#{}{}", s.column, if s.asc { "" } else { " DESC" }))
                    .collect();
                out.push_str(&format!("{pad}Sort order=[{}]\n", ks.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Except { left, right, all } => {
                out.push_str(&format!("{pad}Except{}\n", if *all { " ALL" } else { "" }));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
        }
    }
}

/// Infer the value type of an expression over a schema (best effort;
/// execution is dynamically typed, this feeds schema metadata only).
pub fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    use crate::ast::BinOp::*;
    match expr {
        Expr::Col(i) => schema
            .fields()
            .get(*i)
            .map(|f| f.dtype)
            .unwrap_or(DataType::Int),
        Expr::Lit(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Binary { op, left, right } => match op {
            Add | Sub | Mul | Div | Mod => {
                let l = infer_type(left, schema);
                let r = infer_type(right, schema);
                if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            _ => DataType::Bool,
        },
        Expr::Unary { op, expr } => match op {
            crate::ast::UnOp::Neg => infer_type(expr, schema),
            crate::ast::UnOp::Not => DataType::Bool,
        },
        Expr::IsNull { .. } | Expr::InList { .. } => DataType::Bool,
    }
}

/// Derive a reasonable output field for a projection expression.
pub fn field_for_expr(expr: &Expr, input: &Schema, alias: Option<&str>, idx: usize) -> Field {
    let dtype = infer_type(expr, input);
    let name = match alias {
        Some(a) => a.to_string(),
        None => match expr {
            Expr::Col(i) => input.field(*i).name.clone(),
            _ => format!("col{idx}"),
        },
    };
    let mut f = Field::nullable(name, dtype);
    if alias.is_none() {
        if let Expr::Col(i) = expr {
            f.qualifier = input.field(*i).qualifier.clone();
            f.nullable = input.field(*i).nullable;
        }
    }
    f
}

/// A literal ordering helper shared by Sort / TopK implementations.
pub fn compare_rows(
    a: &imp_storage::Row,
    b: &imp_storage::Row,
    keys: &[SortKey],
) -> std::cmp::Ordering {
    for k in keys {
        let ord = a[k.column].cmp(&b[k.column]);
        let ord = if k.asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Extract the order-by key values of a row (used by incremental top-k).
pub fn sort_key_values(row: &imp_storage::Row, keys: &[SortKey]) -> Vec<Value> {
    keys.iter().map(|k| row[k.column].clone()).collect()
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// A flattened equi-join tree in canonical form.
///
/// Left-deep, right-deep, and bushy parses of the same equi-join set all
/// normalize to the same `NaryJoin`: the leaf inputs in in-order
/// traversal order (which, by the concatenation rule of
/// [`LogicalPlan::schema`] for `Join`, is exactly the output column
/// order) plus the equi-key *equivalence classes* closed over every
/// `ON` pair in the tree. Shapes that express the same equality set with
/// different representative pairs (e.g. `a.x = c.z` instead of
/// `b.y = c.z` when `x = y` already holds) produce identical classes,
/// because classes are the union-find closure, not the literal pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct NaryJoin {
    /// Leaf inputs, in output (in-order traversal) order. A leaf is any
    /// non-equi-join node: scans, filter/project chains, and also cross
    /// products (empty-key joins), which do not flatten.
    pub inputs: Vec<LogicalPlan>,
    /// Join-key equivalence classes over `(input index, column within
    /// that input)`, each sorted ascending; classes sorted by their
    /// first member. Every class has ≥ 2 members.
    pub classes: Vec<Vec<(usize, usize)>>,
}

impl NaryJoin {
    /// Human-readable canonical signature (used by shape-equivalence
    /// tests and `EXPLAIN`-style diagnostics).
    pub fn signature(&self) -> String {
        let inputs: Vec<String> = self
            .inputs
            .iter()
            .map(|p| p.explain().replace('\n', " "))
            .collect();
        format!("nary[{}] classes={:?}", inputs.join(" | "), self.classes)
    }
}

/// Flatten a tree of binary equi-joins into its canonical [`NaryJoin`].
///
/// Returns `None` unless `plan` is itself an equi-join (`Join` with
/// non-empty keys). The recursion descends only through equi-join nodes:
/// anything else — including cross products — becomes one leaf input.
/// Key pairs are rebased to global column positions (the concatenated
/// output schema) and closed under union-find, so every tree shape of
/// the same join set yields byte-identical `inputs` and `classes`.
pub fn flatten_join(plan: &LogicalPlan) -> Option<NaryJoin> {
    let LogicalPlan::Join { left_keys, .. } = plan else {
        return None;
    };
    if left_keys.is_empty() {
        return None;
    }
    let mut inputs = Vec::new();
    let mut pairs = Vec::new();
    let total = collect_join(plan, &mut inputs, &mut pairs, 0);

    // Union-find over global column positions.
    let mut parent: Vec<usize> = (0..total).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b) in &pairs {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            // Root at the smaller id so grouping is deterministic.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    }

    // Per-input global offsets, for mapping globals back to
    // (input, column-within-input).
    let mut offsets = Vec::with_capacity(inputs.len());
    let mut acc = 0usize;
    for p in &inputs {
        offsets.push(acc);
        acc += p.schema().arity();
    }
    let locate = |g: usize| {
        let input = offsets.partition_point(|&o| o <= g) - 1;
        (input, g - offsets[input])
    };

    let mut groups: std::collections::BTreeMap<usize, Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    for col in 0..total {
        let root = find(&mut parent, col);
        groups.entry(root).or_default().push(locate(col));
    }
    let mut classes: Vec<Vec<(usize, usize)>> = groups
        .into_values()
        .filter(|members| members.len() >= 2)
        .collect();
    // Members are already ascending (globals visited in order); order the
    // classes themselves by first member for a canonical listing.
    classes.sort();
    Some(NaryJoin { inputs, classes })
}

/// In-order walk of the equi-join tree: pushes leaves, rebases key pairs
/// to global columns, returns the subtree's output arity.
fn collect_join(
    plan: &LogicalPlan,
    inputs: &mut Vec<LogicalPlan>,
    pairs: &mut Vec<(usize, usize)>,
    base: usize,
) -> usize {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } if !left_keys.is_empty() => {
            let la = collect_join(left, inputs, pairs, base);
            let ra = collect_join(right, inputs, pairs, base + la);
            for (&l, &r) in left_keys.iter().zip(right_keys) {
                pairs.push((base + l, base + la + r));
            }
            la + ra
        }
        other => {
            inputs.push(other.clone());
            other.schema().arity()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    #[test]
    fn compare_rows_respects_direction() {
        let keys = [
            SortKey {
                column: 0,
                asc: true,
            },
            SortKey {
                column: 1,
                asc: false,
            },
        ];
        let a = row![1, 5];
        let b = row![1, 9];
        assert_eq!(compare_rows(&a, &b, &keys), std::cmp::Ordering::Greater);
        assert_eq!(compare_rows(&a, &a, &keys), std::cmp::Ordering::Equal);
    }

    fn scan2(t: &str, a: &str, b: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: t.into(),
            schema: Schema::new(vec![
                Field::new(a, DataType::Int),
                Field::new(b, DataType::Int),
            ]),
        }
    }

    fn join(l: LogicalPlan, r: LogicalPlan, lk: Vec<usize>, rk: Vec<usize>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            left_keys: lk,
            right_keys: rk,
        }
    }

    /// Left-deep, right-deep, and bushy trees of the chain
    /// `a.y=b.u, b.v=c.p, c.q=d.r` flatten to one canonical NaryJoin.
    #[test]
    fn flatten_join_canonicalizes_tree_shapes() {
        let (a, b, c, d) = (
            scan2("a", "x", "y"),
            scan2("b", "u", "v"),
            scan2("c", "p", "q"),
            scan2("d", "r", "s"),
        );
        let left_deep = join(
            join(
                join(a.clone(), b.clone(), vec![1], vec![0]),
                c.clone(),
                vec![3],
                vec![0],
            ),
            d.clone(),
            vec![5],
            vec![0],
        );
        let right_deep = join(
            a.clone(),
            join(
                b.clone(),
                join(c.clone(), d.clone(), vec![1], vec![0]),
                vec![1],
                vec![0],
            ),
            vec![1],
            vec![0],
        );
        let bushy = join(
            join(a.clone(), b.clone(), vec![1], vec![0]),
            join(c.clone(), d.clone(), vec![1], vec![0]),
            vec![3],
            vec![0],
        );
        let flat = flatten_join(&left_deep).unwrap();
        assert_eq!(flat.inputs, vec![a.clone(), b, c, d]);
        assert_eq!(
            flat.classes,
            vec![
                vec![(0, 1), (1, 0)],
                vec![(1, 1), (2, 0)],
                vec![(2, 1), (3, 0)],
            ]
        );
        assert_eq!(flatten_join(&right_deep).unwrap(), flat);
        assert_eq!(flatten_join(&bushy).unwrap(), flat);
        // Non-joins and cross products do not flatten.
        assert!(flatten_join(&a).is_none());
        let cross = join(scan2("a", "x", "y"), scan2("b", "u", "v"), vec![], vec![]);
        assert!(flatten_join(&cross).is_none());
    }

    /// Shapes that express the same equality set through different
    /// representative pairs still canonicalize to identical classes.
    #[test]
    fn flatten_join_closes_equivalences() {
        let (a, b, c) = (
            scan2("a", "x", "y"),
            scan2("b", "u", "v"),
            scan2("c", "p", "q"),
        );
        // a.y = b.u, then c joined via b.u (global 2)...
        let via_b = join(
            join(a.clone(), b.clone(), vec![1], vec![0]),
            c.clone(),
            vec![2],
            vec![0],
        );
        // ...versus c joined via a.y (global 1): same closure.
        let via_a = join(
            join(a.clone(), b.clone(), vec![1], vec![0]),
            c.clone(),
            vec![1],
            vec![0],
        );
        let x = flatten_join(&via_b).unwrap();
        let y = flatten_join(&via_a).unwrap();
        assert_eq!(x, y);
        assert_eq!(x.classes, vec![vec![(0, 1), (1, 0), (2, 0)]]);
    }

    /// A cross-product join below an equi-join stays one (two-column ×
    /// two-column = four-column) leaf input.
    #[test]
    fn flatten_join_keeps_cross_products_as_leaves() {
        let (a, b, c) = (
            scan2("a", "x", "y"),
            scan2("b", "u", "v"),
            scan2("c", "p", "q"),
        );
        let cross = join(b.clone(), c.clone(), vec![], vec![]);
        let plan = join(a.clone(), cross.clone(), vec![1], vec![0]);
        let flat = flatten_join(&plan).unwrap();
        assert_eq!(flat.inputs, vec![a, cross]);
        assert_eq!(flat.classes, vec![vec![(0, 1), (1, 0)]]);
    }

    #[test]
    fn tables_deduplicated() {
        let scan = |t: &str| LogicalPlan::Scan {
            table: t.into(),
            schema: Schema::empty(),
        };
        let p = LogicalPlan::Join {
            left: Box::new(scan("r")),
            right: Box::new(LogicalPlan::Join {
                left: Box::new(scan("s")),
                right: Box::new(scan("r")),
                left_keys: vec![],
                right_keys: vec![],
            }),
            left_keys: vec![],
            right_keys: vec![],
        };
        assert_eq!(p.tables(), vec!["r".to_string(), "s".to_string()]);
        assert_eq!(p.operator_count(), 5);
    }
}
