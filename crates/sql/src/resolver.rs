//! Name resolution: AST → logical plan.
//!
//! The resolver binds column names against a [`Catalog`], expands `*`,
//! splits join conditions into equi-keys, collects aggregate calls from
//! SELECT / HAVING / ORDER BY into a single `Aggregate` node, and rewrites
//! post-aggregation expressions over the aggregate's output — producing
//! plans shaped exactly like the pipelines the incremental engine maintains
//! (paper Fig. 5: access → σ → ⋈ → γ → σ_HAVING → τ).

use crate::ast::{self, AstExpr, BinOp, SelectItem, SelectStmt, TableRef};
use crate::error::SqlError;
use crate::expr::Expr;
use crate::plan::{field_for_expr, AggFunc, AggSpec, LogicalPlan, SortKey};
use crate::Result;
use imp_storage::{Field, Schema};

/// Source of table schemas.
pub trait Catalog {
    /// Schema of `table`, or `None` if it does not exist.
    fn table_schema(&self, table: &str) -> Option<Schema>;
}

/// Resolver bound to a catalog.
pub struct Resolver<'a> {
    catalog: &'a dyn Catalog,
}

impl<'a> Resolver<'a> {
    /// New resolver.
    pub fn new(catalog: &'a dyn Catalog) -> Resolver<'a> {
        Resolver { catalog }
    }

    /// Resolve a SELECT statement into a logical plan.
    pub fn resolve_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        // 1. FROM clause → input plan (+ qualified schema).
        let mut input = self.resolve_from(&stmt.from, stmt.filter.as_ref())?;
        let input_schema = input.plan.schema();

        // 2. Remaining WHERE conjuncts (those not claimed as join keys).
        if !input.residual.is_empty() {
            let predicate = Expr::conjunction(input.residual.drain(..));
            input.plan = LogicalPlan::Filter {
                input: Box::new(input.plan),
                predicate,
            };
        }

        let has_aggregates = !stmt.group_by.is_empty()
            || stmt.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            })
            || stmt
                .having
                .as_ref()
                .is_some_and(AstExpr::contains_aggregate);

        let mut plan = input.plan;

        let projected = if has_aggregates {
            // 3a. Build the Aggregate node.
            let group_exprs: Vec<Expr> = stmt
                .group_by
                .iter()
                .map(|e| self.resolve_expr(e, &input_schema))
                .collect::<Result<_>>()?;

            let mut aggs: Vec<AggSpec> = Vec::new();
            let mut out_items: Vec<(AstExpr, Option<String>)> = Vec::new();
            for item in &stmt.projection {
                match item {
                    SelectItem::Wildcard => {
                        return Err(SqlError::Semantic(
                            "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        out_items.push((expr.clone(), alias.clone()))
                    }
                }
            }

            // Collect aggregate slots from projection and HAVING.
            for (e, _) in &out_items {
                self.collect_aggs(e, &input_schema, &mut aggs)?;
            }
            if let Some(h) = &stmt.having {
                self.collect_aggs(h, &input_schema, &mut aggs)?;
            }
            for (e, _) in &stmt.order_by {
                // ORDER BY may name fresh aggregates too.
                if e.contains_aggregate() {
                    self.collect_aggs(e, &input_schema, &mut aggs)?;
                }
            }
            if aggs.is_empty() {
                // GROUP BY without aggregates == DISTINCT on group exprs;
                // model with a count(*) we simply do not project.
                aggs.push(AggSpec {
                    func: AggFunc::Count,
                    arg: None,
                    name: "__count".into(),
                });
            }

            // Output schema of the Aggregate node.
            let mut fields: Vec<Field> = Vec::new();
            for (i, g) in group_exprs.iter().enumerate() {
                fields.push(field_for_expr(g, &input_schema, None, i));
            }
            for a in &aggs {
                fields.push(Field::nullable(
                    a.name.clone(),
                    a.output_type(&input_schema),
                ));
            }
            let agg_schema = Schema::new(fields);

            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: group_exprs.clone(),
                aggs: aggs.clone(),
                schema: agg_schema.clone(),
            };

            // 3b. HAVING over the aggregate output.
            if let Some(h) = &stmt.having {
                let pred = self.resolve_post_agg(h, &input_schema, &group_exprs, &aggs)?;
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: pred,
                };
            }

            // 3c. Projection over the aggregate output.
            let mut exprs = Vec::new();
            let mut out_fields = Vec::new();
            for (i, (e, alias)) in out_items.iter().enumerate() {
                let re = self.resolve_post_agg(e, &input_schema, &group_exprs, &aggs)?;
                let f = field_for_expr(&re, &agg_schema, alias.as_deref(), i);
                exprs.push(re);
                out_fields.push(f);
            }
            let out_schema = Schema::new(out_fields);
            LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: out_schema,
            }
        } else {
            // 3'. Plain projection.
            let mut exprs = Vec::new();
            let mut out_fields = Vec::new();
            let mut idx = 0usize;
            for item in &stmt.projection {
                match item {
                    SelectItem::Wildcard => {
                        for (i, f) in input_schema.fields().iter().enumerate() {
                            exprs.push(Expr::Col(i));
                            out_fields.push(f.clone());
                            idx += 1;
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let re = self.resolve_expr(expr, &input_schema)?;
                        let f = field_for_expr(&re, &input_schema, alias.as_deref(), idx);
                        exprs.push(re);
                        out_fields.push(f);
                        idx += 1;
                    }
                }
            }
            LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: Schema::new(out_fields),
            }
        };

        let mut plan = projected;
        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        // 4. EXCEPT [ALL] suffix.
        if let Some((rhs, all)) = &stmt.except {
            let right = self.resolve_select(rhs)?;
            if right.schema().arity() != plan.schema().arity() {
                return Err(SqlError::Semantic(format!(
                    "EXCEPT operands have different arities ({} vs {})",
                    plan.schema().arity(),
                    right.schema().arity()
                )));
            }
            plan = LogicalPlan::Except {
                left: Box::new(plan),
                right: Box::new(right),
                all: *all,
            };
        }

        // 5. ORDER BY / LIMIT over the projection output.
        if !stmt.order_by.is_empty() || stmt.limit.is_some() {
            let out_schema = plan.schema();
            let mut keys = Vec::new();
            for (e, asc) in &stmt.order_by {
                let col = self.resolve_output_column(e, &out_schema)?;
                keys.push(SortKey {
                    column: col,
                    asc: *asc,
                });
            }
            plan = match stmt.limit {
                Some(k) => LogicalPlan::TopK {
                    input: Box::new(plan),
                    keys,
                    k,
                },
                None => LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys,
                },
            };
        }

        Ok(plan)
    }

    // ---- FROM clause ----

    fn resolve_from(&self, from: &[TableRef], filter: Option<&AstExpr>) -> Result<FromResult> {
        assert!(!from.is_empty(), "parser guarantees non-empty FROM");
        // Resolve the first item, then fold the rest in as (equi-)joins
        // using WHERE conjuncts as candidate keys (left-deep greedy plan —
        // good enough for the star/chain joins of the paper's workloads).
        let mut acc = self.resolve_table_ref(&from[0])?;
        let mut pending: Vec<AstExpr> = Vec::new();
        if let Some(f) = filter {
            collect_conjuncts(f, &mut pending);
        }
        let mut residual: Vec<Expr> = Vec::new();

        for item in &from[1..] {
            let right = self.resolve_table_ref(item)?;
            let left_schema = acc.schema();
            let right_schema = right.schema();
            let combined = left_schema.join(&right_schema);
            // Claim equi conjuncts that span the two sides.
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut remaining = Vec::new();
            for c in pending.drain(..) {
                if let Some((l, r)) =
                    self.try_equi_key(&c, &left_schema, &right_schema, &combined)?
                {
                    left_keys.push(l);
                    right_keys.push(r);
                } else {
                    remaining.push(c);
                }
            }
            pending = remaining;
            acc = LogicalPlan::Join {
                left: Box::new(acc),
                right: Box::new(right),
                left_keys,
                right_keys,
            };
        }

        // Conjuncts not claimed as join keys become residual filters.
        let schema = acc.schema();
        for c in pending {
            residual.push(self.resolve_expr(&c, &schema)?);
        }
        Ok(FromResult {
            plan: acc,
            residual,
        })
    }

    /// Try to interpret `expr` as `left_col = right_col` across the join.
    fn try_equi_key(
        &self,
        expr: &AstExpr,
        left: &Schema,
        _right: &Schema,
        combined: &Schema,
    ) -> Result<Option<(usize, usize)>> {
        let AstExpr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = expr
        else {
            return Ok(None);
        };
        let (AstExpr::Column { .. }, AstExpr::Column { .. }) = (a.as_ref(), b.as_ref()) else {
            return Ok(None);
        };
        // Both must resolve over the combined schema, one per side.
        let ra = self.resolve_expr(a, combined);
        let rb = self.resolve_expr(b, combined);
        let (Ok(Expr::Col(ia)), Ok(Expr::Col(ib))) = (ra, rb) else {
            return Ok(None);
        };
        let la = left.arity();
        match (ia < la, ib < la) {
            (true, false) => Ok(Some((ia, ib - la))),
            (false, true) => Ok(Some((ib, ia - la))),
            _ => Ok(None),
        }
    }

    fn resolve_table_ref(&self, tref: &TableRef) -> Result<LogicalPlan> {
        match tref {
            TableRef::Table { name, alias } => {
                // Unquoted SQL identifiers are case-insensitive: fold table
                // names to lowercase for catalog lookup and plan identity.
                let name_lc = name.to_ascii_lowercase();
                let schema = self
                    .catalog
                    .table_schema(&name_lc)
                    .ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
                let q = alias.as_deref().unwrap_or(&name_lc);
                Ok(LogicalPlan::Scan {
                    table: name_lc.clone(),
                    schema: schema.with_qualifier(q),
                })
            }
            TableRef::Subquery { query, alias } => {
                let inner = self.resolve_select(query)?;
                let schema = inner.schema().with_qualifier(alias);
                // Re-qualify by wrapping in an identity projection.
                let exprs = (0..schema.arity()).map(Expr::Col).collect();
                Ok(LogicalPlan::Project {
                    input: Box::new(inner),
                    exprs,
                    schema,
                })
            }
            TableRef::Join { left, right, on } => {
                let l = self.resolve_table_ref(left)?;
                let r = self.resolve_table_ref(right)?;
                let ls = l.schema();
                let rs = r.schema();
                let combined = ls.join(&rs);
                let mut conjuncts = Vec::new();
                collect_conjuncts(on, &mut conjuncts);
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                let mut residual = Vec::new();
                for c in conjuncts {
                    if let Some((lk, rk)) = self.try_equi_key(&c, &ls, &rs, &combined)? {
                        left_keys.push(lk);
                        right_keys.push(rk);
                    } else {
                        residual.push(self.resolve_expr(&c, &combined)?);
                    }
                }
                let mut plan = LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys,
                    right_keys,
                };
                if !residual.is_empty() {
                    plan = LogicalPlan::Filter {
                        input: Box::new(plan),
                        predicate: Expr::conjunction(residual),
                    };
                }
                Ok(plan)
            }
        }
    }

    // ---- expressions ----

    /// Resolve a scalar (non-aggregate) expression over a schema.
    pub fn resolve_expr(&self, e: &AstExpr, schema: &Schema) -> Result<Expr> {
        match e {
            AstExpr::Column { qualifier, name } => {
                match schema.resolve(qualifier.as_deref(), name) {
                    Ok(i) => Ok(Expr::Col(i)),
                    Err(true) => Err(SqlError::AmbiguousColumn(name.clone())),
                    Err(false) => Err(SqlError::UnknownColumn(format!(
                        "{}{name}",
                        qualifier
                            .as_deref()
                            .map(|q| format!("{q}."))
                            .unwrap_or_default()
                    ))),
                }
            }
            AstExpr::Literal(v) => Ok(Expr::Lit(v.clone())),
            AstExpr::Binary { op, left, right } => Ok(Expr::binary(
                *op,
                self.resolve_expr(left, schema)?,
                self.resolve_expr(right, schema)?,
            )),
            AstExpr::Unary { op, expr } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(self.resolve_expr(expr, schema)?),
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // Desugar: e BETWEEN a AND b ⇔ a <= e AND e <= b.
                let e = self.resolve_expr(expr, schema)?;
                let lo = self.resolve_expr(low, schema)?;
                let hi = self.resolve_expr(high, schema)?;
                let range = Expr::binary(
                    BinOp::And,
                    Expr::binary(BinOp::Ge, e.clone(), lo),
                    Expr::binary(BinOp::Le, e, hi),
                );
                Ok(if *negated {
                    Expr::Unary {
                        op: ast::UnOp::Not,
                        expr: Box::new(range),
                    }
                } else {
                    range
                })
            }
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.resolve_expr(expr, schema)?),
                negated: *negated,
            }),
            AstExpr::InList {
                expr,
                list,
                negated,
            } => Ok(Expr::InList {
                expr: Box::new(self.resolve_expr(expr, schema)?),
                list: list
                    .iter()
                    .map(|x| self.resolve_expr(x, schema))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            AstExpr::FuncCall { name, .. } => {
                if ast::is_aggregate_name(name) {
                    Err(SqlError::Semantic(format!(
                        "aggregate {name}() not allowed in this context"
                    )))
                } else {
                    Err(SqlError::Semantic(format!("unknown function {name}()")))
                }
            }
        }
    }

    /// Find every aggregate call in `e`, resolving arguments over the
    /// aggregate input schema, and dedupe into `aggs`.
    fn collect_aggs(&self, e: &AstExpr, input: &Schema, aggs: &mut Vec<AggSpec>) -> Result<()> {
        match e {
            AstExpr::FuncCall { name, args, star } if ast::is_aggregate_name(name) => {
                let func = AggFunc::from_name(name).expect("checked above");
                let arg = if *star {
                    None
                } else {
                    if args.len() != 1 {
                        return Err(SqlError::Semantic(format!(
                            "{name}() takes exactly one argument"
                        )));
                    }
                    if args[0].contains_aggregate() {
                        return Err(SqlError::Semantic("nested aggregates".into()));
                    }
                    Some(self.resolve_expr(&args[0], input)?)
                };
                if !aggs.iter().any(|a| a.func == func && a.arg == arg) {
                    let name = format!("{}_{}", func.name(), aggs.len());
                    aggs.push(AggSpec { func, arg, name });
                }
                Ok(())
            }
            AstExpr::FuncCall { args, .. } => {
                for a in args {
                    self.collect_aggs(a, input, aggs)?;
                }
                Ok(())
            }
            AstExpr::Binary { left, right, .. } => {
                self.collect_aggs(left, input, aggs)?;
                self.collect_aggs(right, input, aggs)
            }
            AstExpr::Unary { expr, .. } | AstExpr::IsNull { expr, .. } => {
                self.collect_aggs(expr, input, aggs)
            }
            AstExpr::Between {
                expr, low, high, ..
            } => {
                self.collect_aggs(expr, input, aggs)?;
                self.collect_aggs(low, input, aggs)?;
                self.collect_aggs(high, input, aggs)
            }
            AstExpr::InList { expr, list, .. } => {
                self.collect_aggs(expr, input, aggs)?;
                for x in list {
                    self.collect_aggs(x, input, aggs)?;
                }
                Ok(())
            }
            AstExpr::Column { .. } | AstExpr::Literal(_) => Ok(()),
        }
    }

    /// Rewrite an expression appearing *above* the Aggregate node
    /// (projection / HAVING / ORDER BY) over the aggregate output schema
    /// `[group_by..., aggs...]`.
    fn resolve_post_agg(
        &self,
        e: &AstExpr,
        input: &Schema,
        group_exprs: &[Expr],
        aggs: &[AggSpec],
    ) -> Result<Expr> {
        // Aggregate call → its output slot.
        if let AstExpr::FuncCall { name, args, star } = e {
            if ast::is_aggregate_name(name) {
                let func = AggFunc::from_name(name).expect("checked");
                let arg = if *star {
                    None
                } else {
                    Some(self.resolve_expr(&args[0], input)?)
                };
                let idx = aggs
                    .iter()
                    .position(|a| a.func == func && a.arg == arg)
                    .ok_or_else(|| SqlError::Semantic("aggregate not collected".into()))?;
                return Ok(Expr::Col(group_exprs.len() + idx));
            }
        }
        // Whole expression equals a group-by expression → its slot.
        if let Ok(resolved) = self.resolve_expr(e, input) {
            if let Some(idx) = group_exprs.iter().position(|g| *g == resolved) {
                return Ok(Expr::Col(idx));
            }
            // A bare column that is not grouped is an error (strict mode).
            if matches!(e, AstExpr::Column { .. }) {
                return Err(SqlError::Semantic(format!(
                    "column {e} must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
        // Otherwise recurse structurally.
        match e {
            AstExpr::Literal(v) => Ok(Expr::Lit(v.clone())),
            AstExpr::Binary { op, left, right } => Ok(Expr::binary(
                *op,
                self.resolve_post_agg(left, input, group_exprs, aggs)?,
                self.resolve_post_agg(right, input, group_exprs, aggs)?,
            )),
            AstExpr::Unary { op, expr } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(self.resolve_post_agg(expr, input, group_exprs, aggs)?),
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.resolve_post_agg(expr, input, group_exprs, aggs)?;
                let lo = self.resolve_post_agg(low, input, group_exprs, aggs)?;
                let hi = self.resolve_post_agg(high, input, group_exprs, aggs)?;
                let range = Expr::binary(
                    BinOp::And,
                    Expr::binary(BinOp::Ge, e.clone(), lo),
                    Expr::binary(BinOp::Le, e, hi),
                );
                Ok(if *negated {
                    Expr::Unary {
                        op: ast::UnOp::Not,
                        expr: Box::new(range),
                    }
                } else {
                    range
                })
            }
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.resolve_post_agg(expr, input, group_exprs, aggs)?),
                negated: *negated,
            }),
            AstExpr::InList {
                expr,
                list,
                negated,
            } => Ok(Expr::InList {
                expr: Box::new(self.resolve_post_agg(expr, input, group_exprs, aggs)?),
                list: list
                    .iter()
                    .map(|x| self.resolve_post_agg(x, input, group_exprs, aggs))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            AstExpr::Column { name, .. } => Err(SqlError::Semantic(format!(
                "column {name} must appear in GROUP BY or inside an aggregate"
            ))),
            AstExpr::FuncCall { name, .. } => {
                Err(SqlError::Semantic(format!("unknown function {name}()")))
            }
        }
    }

    /// Resolve an ORDER BY key against the query's output schema (by alias
    /// or column name).
    fn resolve_output_column(&self, e: &AstExpr, out: &Schema) -> Result<usize> {
        match e {
            AstExpr::Column { qualifier, name } => match out.resolve(qualifier.as_deref(), name) {
                Ok(i) => Ok(i),
                Err(true) => Err(SqlError::AmbiguousColumn(name.clone())),
                Err(false) => Err(SqlError::UnknownColumn(name.clone())),
            },
            AstExpr::Literal(imp_storage::Value::Int(i)) if *i >= 1 => {
                // ORDER BY 2 — positional reference.
                let idx = (*i - 1) as usize;
                if idx < out.arity() {
                    Ok(idx)
                } else {
                    Err(SqlError::Semantic(format!(
                        "ORDER BY position {i} out of range"
                    )))
                }
            }
            other => Err(SqlError::Semantic(format!(
                "ORDER BY supports output columns or positions, got {other}"
            ))),
        }
    }
}

/// Split nested ANDs into a conjunct list.
pub fn collect_conjuncts(e: &AstExpr, out: &mut Vec<AstExpr>) {
    if let AstExpr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

struct FromResult {
    plan: LogicalPlan,
    residual: Vec<Expr>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;
    use crate::Statement;
    use imp_storage::DataType;
    use imp_storage::Field;

    struct TestCatalog;

    impl Catalog for TestCatalog {
        fn table_schema(&self, table: &str) -> Option<Schema> {
            match table {
                "sales" => Some(Schema::new(vec![
                    Field::new("sid", DataType::Int),
                    Field::new("brand", DataType::Str),
                    Field::new("productName", DataType::Str),
                    Field::new("price", DataType::Int),
                    Field::new("numSold", DataType::Int),
                ])),
                "r" => Some(Schema::new(vec![
                    Field::new("a", DataType::Int),
                    Field::new("b", DataType::Int),
                ])),
                "s" => Some(Schema::new(vec![
                    Field::new("c", DataType::Int),
                    Field::new("d", DataType::Int),
                ])),
                _ => None,
            }
        }
    }

    fn plan(sql: &str) -> LogicalPlan {
        let Statement::Select(s) = parse_one(sql).unwrap() else {
            panic!()
        };
        Resolver::new(&TestCatalog).resolve_select(&s).unwrap()
    }

    #[test]
    fn qtop_plan_shape() {
        let p = plan(
            "SELECT brand, SUM(price * numSold) AS rev FROM sales \
             GROUP BY brand HAVING SUM(price * numSold) > 5000",
        );
        // Project(Filter(Aggregate(Scan)))
        let LogicalPlan::Project { input, schema, .. } = &p else {
            panic!("{p}")
        };
        assert_eq!(schema.field(1).name, "rev");
        let LogicalPlan::Filter { input, .. } = input.as_ref() else {
            panic!("{p}")
        };
        let LogicalPlan::Aggregate { aggs, .. } = input.as_ref() else {
            panic!("{p}")
        };
        // sum(price*numSold) collected once, shared by SELECT and HAVING.
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn fig5_example_plan() {
        // Query from paper Ex. 5.1.
        let p = plan(
            "SELECT a, sum(c) as sc \
             FROM (SELECT a, b FROM R WHERE a > 3) t JOIN S on (b = d) \
             GROUP BY a HAVING SUM(c) > 5",
        );
        assert_eq!(p.tables(), vec!["r".to_string(), "s".to_string()]);
        let text = p.explain();
        assert!(text.contains("Join"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn comma_join_extracts_keys() {
        let p = plan("SELECT b, d FROM r, s WHERE a = c AND b > 1");
        let text = p.explain();
        assert!(text.contains("Join on #0=#0"), "{text}");
        assert!(text.contains("Filter"), "{text}");
    }

    #[test]
    fn order_by_alias_and_limit() {
        let p = plan("SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY ab DESC LIMIT 10");
        let LogicalPlan::TopK { keys, k, .. } = &p else {
            panic!("{p}")
        };
        assert_eq!(*k, 10);
        assert_eq!(keys[0].column, 1);
        assert!(!keys[0].asc);
    }

    #[test]
    fn ungrouped_column_rejected() {
        let Statement::Select(s) = parse_one("SELECT b, sum(a) FROM r GROUP BY a").unwrap() else {
            panic!()
        };
        assert!(Resolver::new(&TestCatalog).resolve_select(&s).is_err());
    }

    #[test]
    fn unknown_table_and_column() {
        let Statement::Select(s) = parse_one("SELECT x FROM nope").unwrap() else {
            panic!()
        };
        assert!(matches!(
            Resolver::new(&TestCatalog).resolve_select(&s),
            Err(SqlError::UnknownTable(_))
        ));
        let Statement::Select(s) = parse_one("SELECT zzz FROM r").unwrap() else {
            panic!()
        };
        assert!(matches!(
            Resolver::new(&TestCatalog).resolve_select(&s),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn wildcard_expansion() {
        let p = plan("SELECT * FROM sales WHERE price > 100");
        assert_eq!(p.schema().arity(), 5);
    }

    #[test]
    fn between_desugars() {
        let p = plan("SELECT * FROM sales WHERE price BETWEEN 10 AND 20");
        let text = p.explain();
        assert!(text.contains(">= 10"), "{text}");
        assert!(text.contains("<= 20"), "{text}");
    }

    #[test]
    fn having_only_aggregate() {
        // Aggregate referenced only in HAVING still gets a slot.
        let p = plan("SELECT a, avg(b) AS ab FROM r GROUP BY a HAVING avg(a) < 10");
        let LogicalPlan::Project { input, .. } = &p else {
            panic!()
        };
        let LogicalPlan::Filter { input, .. } = input.as_ref() else {
            panic!()
        };
        let LogicalPlan::Aggregate { aggs, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(aggs.len(), 2);
    }
}
