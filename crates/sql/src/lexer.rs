//! SQL lexer.
//!
//! Hand-written tokenizer: identifiers are case-insensitive keywords when
//! they match the keyword table, strings use single quotes with `''`
//! escaping, numbers are i64 or f64 literals.

use crate::error::SqlError;
use crate::Result;
use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case preserved; comparison is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

macro_rules! keywords {
    ($($name:ident => $text:literal),* $(,)?) => {
        /// Reserved words recognized by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($name),*
        }

        impl Keyword {
            fn from_str(s: &str) -> Option<Keyword> {
                let upper = s.to_ascii_uppercase();
                match upper.as_str() {
                    $($text => Some(Keyword::$name),)*
                    _ => None,
                }
            }
        }
    };
}

keywords! {
    Select => "SELECT", From => "FROM", Where => "WHERE", Group => "GROUP",
    By => "BY", Having => "HAVING", Order => "ORDER", Limit => "LIMIT",
    As => "AS", Join => "JOIN", Inner => "INNER", On => "ON", And => "AND",
    Or => "OR", Not => "NOT", Between => "BETWEEN", Is => "IS",
    Null => "NULL", True => "TRUE", False => "FALSE", Insert => "INSERT",
    Into => "INTO", Values => "VALUES", Delete => "DELETE", Update => "UPDATE",
    Set => "SET", Create => "CREATE", Table => "TABLE", Asc => "ASC",
    Desc => "DESC", Distinct => "DISTINCT", In => "IN",
    Int => "INT", Float => "FLOAT", Text => "TEXT", Bool => "BOOL",
    Except => "EXCEPT", All => "ALL", Explain => "EXPLAIN",
}

/// Tokenize `input` into a vector ending with [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        message: "unexpected '!'".into(),
                        offset: i,
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // advance over a full UTF-8 code point
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| SqlError::Lex {
                        message: format!("bad float literal {text}: {e}"),
                        offset: start,
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| SqlError::Lex {
                        message: format!("bad int literal {text}: {e}"),
                        offset: start,
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::from_str(word) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
            }
            other => {
                return Err(SqlError::Lex {
                    message: format!("unexpected character '{other}'"),
                    offset: i,
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents() {
        let t = tokenize("SELECT brand FROM sales").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("brand".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("sales".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn case_insensitive_keywords() {
        let t = tokenize("select SeLeCt").unwrap();
        assert_eq!(t[0], Token::Keyword(Keyword::Select));
        assert_eq!(t[1], Token::Keyword(Keyword::Select));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 1e3 7").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Int(7),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t[0], Token::Str("it's".into()));
    }

    #[test]
    fn operators() {
        let t = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- comment\n 1").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(tokenize("SELECT @"), Err(SqlError::Lex { .. })));
    }
}
