//! Property tests for the SQL frontend: expression display/re-parse
//! stability, template invariance under constant substitution, and
//! precedence laws.

use imp_sql::ast::{AstExpr, BinOp, SelectItem, Statement};
use imp_sql::{parse_one, QueryTemplate};
use proptest::prelude::*;

/// Generate arithmetic/comparison expressions as SQL text.
fn arb_expr_sql() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|i| i.to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            prop::sample::select(vec!["+", "-", "*", "/"]),
            inner,
        )
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Display of a parsed expression re-parses to the same AST.
    #[test]
    fn expr_display_reparses(e in arb_expr_sql(), cmp in prop::sample::select(vec!["<", ">", "="])) {
        let sql = format!("SELECT * FROM t WHERE {e} {cmp} 5");
        let Statement::Select(s1) = parse_one(&sql).unwrap() else { unreachable!() };
        let printed = s1.filter.as_ref().unwrap().to_string();
        let sql2 = format!("SELECT * FROM t WHERE {printed}");
        let Statement::Select(s2) = parse_one(&sql2).unwrap() else { unreachable!() };
        prop_assert_eq!(s1.filter, s2.filter);
    }

    /// Templates are invariant under replacing constants.
    #[test]
    fn template_constant_invariance(c1 in 0i64..10_000, c2 in 0i64..10_000, k in 1u64..100) {
        let q1 = format!(
            "SELECT a, sum(b) AS s FROM t WHERE c > {c1} GROUP BY a \
             HAVING sum(b) < {c2} ORDER BY s LIMIT {k}"
        );
        let q2 = format!(
            "SELECT a, sum(b) AS s FROM t WHERE c > {} GROUP BY a \
             HAVING sum(b) < {} ORDER BY s LIMIT {k}",
            (c1 * 7 + 13) % 10_000,
            (c2 * 3 + 7) % 10_000,
        );
        let Statement::Select(s1) = parse_one(&q1).unwrap() else { unreachable!() };
        let Statement::Select(s2) = parse_one(&q2).unwrap() else { unreachable!() };
        prop_assert_eq!(QueryTemplate::of(&s1), QueryTemplate::of(&s2));
    }

    /// Multiplication binds tighter than addition, which binds tighter
    /// than comparison.
    #[test]
    fn precedence_structure(a in 1i64..50, b in 1i64..50, c in 1i64..50) {
        let sql = format!("SELECT * FROM t WHERE {a} + {b} * {c} > 0");
        let Statement::Select(s) = parse_one(&sql).unwrap() else { unreachable!() };
        let AstExpr::Binary { op: BinOp::Gt, left, .. } = s.filter.unwrap() else {
            return Err(TestCaseError::fail("expected comparison at top"));
        };
        let AstExpr::Binary { op: BinOp::Add, right, .. } = *left else {
            return Err(TestCaseError::fail("expected + below comparison"));
        };
        let is_mul = matches!(*right, AstExpr::Binary { op: BinOp::Mul, .. });
        prop_assert!(is_mul);
    }

    /// Parsing never panics on fuzzed ASCII input.
    #[test]
    fn parser_total_on_ascii(s in "[ -~]{0,80}") {
        let _ = imp_sql::parse(&s);
    }

    /// String literal escaping round-trips through the lexer.
    #[test]
    fn string_literal_roundtrip(s in "[a-zA-Z0-9' ]{0,20}") {
        let escaped = s.replace('\'', "''");
        let sql = format!("SELECT * FROM t WHERE x = '{escaped}'");
        let Statement::Select(sel) = parse_one(&sql).unwrap() else { unreachable!() };
        let Some(AstExpr::Binary { right, .. }) = sel.filter else {
            return Err(TestCaseError::fail("expected filter"));
        };
        let AstExpr::Literal(imp_storage::Value::Str(lit)) = *right else {
            return Err(TestCaseError::fail("expected string literal"));
        };
        prop_assert_eq!(lit.as_ref(), s.as_str());
    }
}

#[test]
fn select_items_preserved_in_order() {
    let Statement::Select(s) = parse_one("SELECT z, y AS why, x + 1 ex FROM t").unwrap() else {
        unreachable!()
    };
    let names: Vec<Option<String>> = s
        .projection
        .iter()
        .map(|i| match i {
            SelectItem::Expr { alias, .. } => alias.clone(),
            SelectItem::Wildcard => None,
        })
        .collect();
    assert_eq!(names, vec![None, Some("why".into()), Some("ex".into())]);
}
