//! The `annotate` operator (Def. 4.4) applied to deltas.
//!
//! `annotate(R, Φ)` tags each tuple with the singleton set containing the
//! range its partition-attribute value belongs to. Annotated deltas
//! `Δ𝒟 = annotate(ΔR, Φ)` are the input of the incremental maintenance
//! procedure (Def. 4.5).
//!
//! Annotations are issued as pooled [`AnnotId`]s: a base table's delta
//! rows carry singleton annotations drawn from the pool's per-fragment
//! cache, so annotating a delta allocates no bitvectors at all after each
//! fragment's first sighting. Row payloads go through a [`RowInterner`]
//! so repeated updates of the same tuple share one allocation.

use crate::partition::PartitionSet;
use imp_storage::{
    AnnotId, AnnotPool, BitVec, DeltaBatch, DeltaColumns, DeltaRecord, Row, RowInterner,
    COLUMNAR_CHUNK,
};

/// Deltas at or above this many records are annotated through the
/// columnar kernel ([`annotation_ids_for_rows`]); smaller ones keep the
/// row-at-a-time path.
pub const ANNOTATE_COLUMNAR_MIN: usize = 32;

/// Annotation bits for one base-table row (materialised form; the delta
/// pipeline uses the pooled [`annotation_id_for_row`] instead).
pub fn annotation_for_row(pset: &PartitionSet, table: &str, row: &Row) -> BitVec {
    let mut bits = BitVec::new(pset.total_fragments());
    if let Some((idx, offset, p)) = pset.for_table(table) {
        debug_assert!(idx < pset.len());
        let frag = p.fragment_of(&row[p.column]);
        bits.set(offset + frag, true);
    }
    bits
}

/// Pooled annotation id for one base-table row: a cached singleton for
/// partitioned tables, the pool's empty id otherwise.
pub fn annotation_id_for_row(
    pool: &mut AnnotPool,
    pset: &PartitionSet,
    table: &str,
    row: &Row,
) -> AnnotId {
    match pset.for_table(table) {
        Some((_, offset, p)) => pool.singleton(offset + p.fragment_of(&row[p.column])),
        None => pool.empty_id(),
    }
}

/// Columnar annotate kernel: pooled annotation ids for a contiguous run
/// of rows. The rows are walked in [`COLUMNAR_CHUNK`]-sized windows; each
/// window's partition-column values are reduced to fragment indexes in a
/// tight key-extraction scan over a scratch array, then mapped to cached
/// singleton ids in a second pass. Unpartitioned tables short-circuit to
/// the pool's empty id.
pub fn annotation_ids_for_rows(
    pool: &mut AnnotPool,
    pset: &PartitionSet,
    table: &str,
    rows: &[Row],
) -> Vec<AnnotId> {
    let Some((_, offset, p)) = pset.for_table(table) else {
        return vec![pool.empty_id(); rows.len()];
    };
    let mut out = Vec::with_capacity(rows.len());
    let mut frags: Vec<usize> = Vec::with_capacity(COLUMNAR_CHUNK.min(rows.len()));
    for chunk in rows.chunks(COLUMNAR_CHUNK) {
        frags.clear();
        frags.extend(
            chunk
                .iter()
                .map(|row| offset + p.fragment_of(&row[p.column])),
        );
        out.extend(frags.iter().map(|&f| pool.singleton(f)));
    }
    out
}

/// Annotate a table's delta records (`Δℛ = annotate(ΔR, Φ)`) with the
/// default columnar crossover of [`ANNOTATE_COLUMNAR_MIN`] records.
pub fn annotate_delta(
    pool: &mut AnnotPool,
    rows: &mut RowInterner,
    pset: &PartitionSet,
    table: &str,
    records: &[DeltaRecord],
) -> DeltaBatch {
    annotate_delta_with(pool, rows, pset, table, records, ANNOTATE_COLUMNAR_MIN)
}

/// Annotate a table's delta records with an explicit columnar crossover.
///
/// Batches of `columnar_min` records or more run through the columnar
/// kernel ([`annotation_ids_for_rows`] over a [`DeltaColumns`] build);
/// smaller batches keep the per-record path. Both produce the identical
/// annotated batch.
pub fn annotate_delta_with(
    pool: &mut AnnotPool,
    rows: &mut RowInterner,
    pset: &PartitionSet,
    table: &str,
    records: &[DeltaRecord],
    columnar_min: usize,
) -> DeltaBatch {
    if records.len() >= columnar_min {
        let mut cols = DeltaColumns::with_capacity(records.len());
        let interned: Vec<Row> = records.iter().map(|r| rows.intern(r.row.clone())).collect();
        let annots = annotation_ids_for_rows(pool, pset, table, &interned);
        for ((rec, row), annot) in records.iter().zip(interned).zip(annots) {
            cols.push(row, annot, rec.op.sign() * rec.mult as i64);
        }
        return cols.into_batch();
    }
    records
        .iter()
        .map(|r| imp_storage::DeltaEntry {
            annot: annotation_id_for_row(pool, pset, table, &r.row),
            row: rows.intern(r.row.clone()),
            mult: r.op.sign() * r.mult as i64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartition;
    use imp_storage::{row, DeltaOp, Value};

    fn pset() -> PartitionSet {
        PartitionSet::new(vec![RangePartition::new(
            "sales",
            "price",
            2,
            vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
        )
        .unwrap()])
        .unwrap()
    }

    #[test]
    fn example_4_2() {
        // Δ+s8 = (8, HP, 1299, 1) annotated with {ρ3} (price 1299 ∈ ρ3).
        let ps = pset();
        let mut pool = AnnotPool::new(ps.total_fragments());
        let mut rows = RowInterner::new();
        let mut rec = imp_storage::DeltaLog::new();
        rec.append(2, DeltaOp::Insert, row![8, "HP", 1299, 1], 1);
        let ann = annotate_delta(&mut pool, &mut rows, &ps, "sales", rec.all());
        assert_eq!(ann.len(), 1);
        assert_eq!(ann[0].mult, 1);
        assert_eq!(
            pool.get(ann[0].annot).iter_ones().collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn deletions_get_negative_multiplicity() {
        let ps = pset();
        let mut pool = AnnotPool::new(ps.total_fragments());
        let mut rows = RowInterner::new();
        let mut rec = imp_storage::DeltaLog::new();
        rec.append(2, DeltaOp::Delete, row![3, "Apple", 1199, 1], 2);
        let ann = annotate_delta(&mut pool, &mut rows, &ps, "sales", rec.all());
        assert_eq!(ann[0].mult, -2);
    }

    #[test]
    fn unpartitioned_table_gets_empty_annotation() {
        let ps = pset();
        let r = row![1, 2];
        let bits = annotation_for_row(&ps, "other", &r);
        assert!(bits.is_zero());
        let mut pool = AnnotPool::new(ps.total_fragments());
        assert_eq!(
            annotation_id_for_row(&mut pool, &ps, "other", &r),
            pool.empty_id()
        );
    }

    #[test]
    fn repeated_deltas_share_annotations_and_rows() {
        let ps = pset();
        let mut pool = AnnotPool::new(ps.total_fragments());
        let mut rows = RowInterner::new();
        let mut rec = imp_storage::DeltaLog::new();
        rec.append(1, DeltaOp::Insert, row![8, "HP", 1299, 1], 1);
        rec.append(2, DeltaOp::Delete, row![8, "HP", 1299, 1], 1);
        rec.append(3, DeltaOp::Insert, row![9, "HP", 1300, 1], 1);
        let ann = annotate_delta(&mut pool, &mut rows, &ps, "sales", rec.all());
        // Same fragment ⇒ same pooled id; same tuple ⇒ same allocation.
        assert_eq!(ann[0].annot, ann[1].annot);
        assert_eq!(ann[0].annot, ann[2].annot);
        assert_eq!(ann[0].row.ptr_id(), ann[1].row.ptr_id());
        assert_ne!(ann[0].row.ptr_id(), ann[2].row.ptr_id());
        // One singleton interned, the rest cache hits.
        assert_eq!(pool.stats().interned, 1);
    }
}
