//! The `annotate` operator (Def. 4.4) applied to deltas.
//!
//! `annotate(R, Φ)` tags each tuple with the singleton set containing the
//! range its partition-attribute value belongs to. Annotated deltas
//! `Δ𝒟 = annotate(ΔR, Φ)` are the input of the incremental maintenance
//! procedure (Def. 4.5).

use crate::partition::PartitionSet;
use imp_storage::{BitVec, DeltaRecord, Row};

/// One annotated delta tuple `Δ±⟨t, P⟩ⁿ` with signed multiplicity
/// (`mult > 0` ⇔ `Δ+`, `mult < 0` ⇔ `Δ-`).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedDeltaRow {
    /// The tuple.
    pub row: Row,
    /// Its sketch annotation over the global fragment space.
    pub annot: BitVec,
    /// Signed multiplicity.
    pub mult: i64,
}

/// Annotation bits for one base-table row.
pub fn annotation_for_row(pset: &PartitionSet, table: &str, row: &Row) -> BitVec {
    let mut bits = BitVec::new(pset.total_fragments());
    if let Some((idx, offset, p)) = pset.for_table(table) {
        debug_assert!(idx < pset.len());
        let frag = p.fragment_of(&row[p.column]);
        bits.set(offset + frag, true);
    }
    bits
}

/// Annotate a table's delta records (`Δℛ = annotate(ΔR, Φ)`).
pub fn annotate_delta(
    pset: &PartitionSet,
    table: &str,
    records: &[DeltaRecord],
) -> Vec<AnnotatedDeltaRow> {
    records
        .iter()
        .map(|r| AnnotatedDeltaRow {
            annot: annotation_for_row(pset, table, &r.row),
            row: r.row.clone(),
            mult: r.op.sign() * r.mult as i64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartition;
    use imp_storage::{row, DeltaOp, Value};

    fn pset() -> PartitionSet {
        PartitionSet::new(vec![RangePartition::new(
            "sales",
            "price",
            2,
            vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
        )
        .unwrap()])
        .unwrap()
    }

    #[test]
    fn example_4_2() {
        // Δ+s8 = (8, HP, 1299, 1) annotated with {ρ3} (price 1299 ∈ ρ3).
        let ps = pset();
        let mut rec = imp_storage::DeltaLog::new();
        rec.append(2, DeltaOp::Insert, row![8, "HP", 1299, 1], 1);
        let ann = annotate_delta(&ps, "sales", rec.all());
        assert_eq!(ann.len(), 1);
        assert_eq!(ann[0].mult, 1);
        assert_eq!(ann[0].annot.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn deletions_get_negative_multiplicity() {
        let ps = pset();
        let mut rec = imp_storage::DeltaLog::new();
        rec.append(2, DeltaOp::Delete, row![3, "Apple", 1199, 1], 2);
        let ann = annotate_delta(&ps, "sales", rec.all());
        assert_eq!(ann[0].mult, -2);
    }

    #[test]
    fn unpartitioned_table_gets_empty_annotation() {
        let ps = pset();
        let r = row![1, 2];
        let bits = annotation_for_row(&ps, "other", &r);
        assert!(bits.is_zero());
    }
}
