//! Provenance sketches and sketch deltas.

use crate::partition::PartitionSet;
use imp_storage::{BitVec, Value};
use std::sync::Arc;

/// A provenance sketch over a [`PartitionSet`]'s global fragment space
/// (Def. 4.2). Covers *all* partitioned tables of the query at once; the
/// per-table sketch is the slice of bits belonging to that table's
/// partition.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSet {
    pset: Arc<PartitionSet>,
    bits: BitVec,
}

impl SketchSet {
    /// Empty sketch (no fragment marked).
    pub fn empty(pset: Arc<PartitionSet>) -> SketchSet {
        let bits = BitVec::new(pset.total_fragments());
        SketchSet { pset, bits }
    }

    /// Sketch from raw bits.
    pub fn from_bits(pset: Arc<PartitionSet>, bits: BitVec) -> SketchSet {
        assert_eq!(bits.len(), pset.total_fragments());
        SketchSet { pset, bits }
    }

    /// The partition set.
    pub fn partitions(&self) -> &Arc<PartitionSet> {
        &self.pset
    }

    /// Raw bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of fragments in the sketch.
    pub fn fragment_count(&self) -> usize {
        self.bits.count_ones()
    }

    /// Is `other` (same pset) fully contained in `self`? Over-approximation
    /// check of Thm. 6.1.
    pub fn covers(&self, other: &SketchSet) -> bool {
        other.bits.is_subset(&self.bits)
    }

    /// Mark a fragment.
    pub fn insert(&mut self, global_fragment: usize) {
        self.bits.set(global_fragment, true);
    }

    /// Unmark a fragment.
    pub fn remove(&mut self, global_fragment: usize) {
        self.bits.set(global_fragment, false);
    }

    /// Is the fragment marked?
    pub fn contains(&self, global_fragment: usize) -> bool {
        self.bits.get(global_fragment)
    }

    /// Apply a delta (`P ∪• ΔP`, §4.2): deletions first, then insertions.
    pub fn apply_delta(&mut self, delta: &SketchDelta) {
        for &f in &delta.removed {
            self.bits.set(f, false);
        }
        for &f in &delta.added {
            self.bits.set(f, true);
        }
    }

    /// Marked fragments of one partition, as local fragment indices.
    pub fn fragments_of_partition(&self, partition: usize) -> Vec<usize> {
        let off = self.pset.global_id(partition, 0);
        let n = self.pset.partition(partition).fragment_count();
        (0..n).filter(|f| self.bits.get(off + f)).collect()
    }

    /// Merged value ranges of one partition's marked fragments — adjacent
    /// fragments coalesce into one range (paper §1 fn. 2: "the conditions
    /// for adjacent ranges in a sketch can be merged"). Each range is
    /// `(inclusive lo, exclusive hi)`, `None` = unbounded.
    pub fn merged_ranges(&self, partition: usize) -> Vec<(Option<Value>, Option<Value>)> {
        let frags = self.fragments_of_partition(partition);
        let p = self.pset.partition(partition);
        let mut out: Vec<(Option<Value>, Option<Value>)> = Vec::new();
        let mut run_start: Option<usize> = None;
        let mut prev: Option<usize> = None;
        let flush = |start: usize, end: usize, out: &mut Vec<_>| {
            let (lo, _) = p.fragment_bounds(start);
            let (_, hi) = p.fragment_bounds(end);
            out.push((lo.cloned(), hi.cloned()));
        };
        for f in frags {
            match (run_start, prev) {
                (None, _) => {
                    run_start = Some(f);
                }
                (Some(_), Some(pv)) if f == pv + 1 => {}
                (Some(s), Some(pv)) => {
                    flush(s, pv, &mut out);
                    run_start = Some(f);
                }
                _ => unreachable!(),
            }
            prev = Some(f);
        }
        if let (Some(s), Some(pv)) = (run_start, prev) {
            flush(s, pv, &mut out);
        }
        out
    }

    /// Fraction of all fragments the sketch marks, in `[0, 1]` (1.0 for a
    /// fragment-less sketch: nothing can be skipped). The lower the
    /// selectivity, the more backend data a USE rewrite prunes — the
    /// benefit signal of the `imp_core::advisor` cost model.
    pub fn selectivity(&self) -> f64 {
        if self.bits.is_empty() {
            return 1.0;
        }
        self.fragment_count() as f64 / self.bits.len() as f64
    }

    /// Selectivity restricted to one partition's fragments (per-table
    /// skipping estimates; same conventions as [`Self::selectivity`]).
    pub fn partition_selectivity(&self, partition: usize) -> f64 {
        let n = self.pset.partition(partition).fragment_count();
        if n == 0 {
            return 1.0;
        }
        self.fragments_of_partition(partition).len() as f64 / n as f64
    }

    /// Heap footprint of the bitvector — the "memory of sketches" quantity
    /// of Fig. 18.
    pub fn heap_size(&self) -> usize {
        self.bits.heap_size()
    }
}

/// A sketch delta `ΔP` (§4.2): fragments to insert / remove, in global ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SketchDelta {
    /// `Δ+ρ` fragments.
    pub added: Vec<usize>,
    /// `Δ-ρ` fragments.
    pub removed: Vec<usize>,
}

impl SketchDelta {
    /// No change.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of changed fragments.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartition;

    fn price_pset() -> Arc<PartitionSet> {
        Arc::new(
            PartitionSet::new(vec![RangePartition::new(
                "sales",
                "price",
                2,
                vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
            )
            .unwrap()])
            .unwrap(),
        )
    }

    #[test]
    fn example_1_1_sketch() {
        // P = {ρ3, ρ4} for Q_top.
        let mut s = SketchSet::empty(price_pset());
        s.insert(2);
        s.insert(3);
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.fragments_of_partition(0), vec![2, 3]);
        // Adjacent ρ3,ρ4 merge into [1001, ∞) — i.e. BETWEEN 1001 AND 10000
        // in the paper's bounded-domain rendering.
        let ranges = s.merged_ranges(0);
        assert_eq!(ranges, vec![(Some(Value::Int(1001)), None)]);
    }

    #[test]
    fn non_adjacent_ranges_stay_separate() {
        let mut s = SketchSet::empty(price_pset());
        s.insert(0);
        s.insert(2);
        let ranges = s.merged_ranges(0);
        assert_eq!(
            ranges,
            vec![
                (None, Some(Value::Int(601))),
                (Some(Value::Int(1001)), Some(Value::Int(1501))),
            ]
        );
    }

    #[test]
    fn apply_delta_ex_5_2() {
        // Ex. 5.2: count of ρ1 drops to 0 → ΔP = {Δ-ρ1}.
        let mut s = SketchSet::empty(price_pset());
        s.insert(0);
        s.insert(1);
        s.apply_delta(&SketchDelta {
            added: vec![],
            removed: vec![0],
        });
        assert_eq!(s.fragments_of_partition(0), vec![1]);
    }

    #[test]
    fn selectivity_is_marked_fraction() {
        let mut s = SketchSet::empty(price_pset());
        assert_eq!(s.selectivity(), 0.0);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.selectivity(), 0.5);
        assert_eq!(s.partition_selectivity(0), 0.5);
    }

    #[test]
    fn covers_checks_subset() {
        let mut big = SketchSet::empty(price_pset());
        big.insert(1);
        big.insert(2);
        let mut small = SketchSet::empty(price_pset());
        small.insert(2);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
    }
}
