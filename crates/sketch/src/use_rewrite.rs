//! The *use rewrite*: instrument a query to skip data outside a sketch.
//!
//! "To skip irrelevant data, we create a disjunction of conditions testing
//! that each tuple passing the WHERE clause belongs to the sketch"
//! (paper §1). Adjacent ranges are merged first (fn. 2), so the injected
//! predicate is minimal. The engine's scan recognizes the injected range
//! disjunction and prunes chunks through zone maps.

use crate::sketch::SketchSet;
use crate::Result;
use imp_sql::ast::BinOp;
use imp_sql::{Expr, LogicalPlan};
use imp_storage::Value;

/// Rewrite `plan` so every scan of a sketched table filters to the
/// sketch's ranges. Returns the instrumented plan.
pub fn apply_sketch_filter(plan: &LogicalPlan, sketch: &SketchSet) -> Result<LogicalPlan> {
    Ok(rewrite(plan, sketch))
}

fn rewrite(plan: &LogicalPlan, sketch: &SketchSet) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            let scan = LogicalPlan::Scan {
                table: table.clone(),
                schema: schema.clone(),
            };
            match sketch.partitions().for_table(table) {
                None => scan,
                Some((pidx, _, partition)) => {
                    let n = partition.fragment_count();
                    let marked = sketch.fragments_of_partition(pidx).len();
                    if marked == n {
                        // Sketch covers everything: no filtering needed.
                        return scan;
                    }
                    let predicate = ranges_predicate(partition.column, &sketch.merged_ranges(pidx));
                    LogicalPlan::Filter {
                        input: Box::new(scan),
                        predicate,
                    }
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            // Merge the sketch predicate into an existing filter-over-scan
            // so both end up in one conjunction above the scan (the scan
            // pruning still finds the range disjunct).
            if let LogicalPlan::Scan { table, .. } = input.as_ref() {
                if let Some((pidx, _, partition)) = sketch.partitions().for_table(table) {
                    let n = partition.fragment_count();
                    if sketch.fragments_of_partition(pidx).len() < n {
                        let skp = ranges_predicate(partition.column, &sketch.merged_ranges(pidx));
                        return LogicalPlan::Filter {
                            input: input.clone(),
                            predicate: Expr::binary(BinOp::And, skp, predicate.clone()),
                        };
                    }
                }
                return plan.clone();
            }
            LogicalPlan::Filter {
                input: Box::new(rewrite(input, sketch)),
                predicate: predicate.clone(),
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(rewrite(input, sketch)),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => LogicalPlan::Join {
            left: Box::new(rewrite(left, sketch)),
            right: Box::new(rewrite(right, sketch)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(input, sketch)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(input, sketch)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(input, sketch)),
            keys: keys.clone(),
        },
        LogicalPlan::TopK { input, keys, k } => LogicalPlan::TopK {
            input: Box::new(rewrite(input, sketch)),
            keys: keys.clone(),
            k: *k,
        },
        LogicalPlan::Except { left, right, all } => LogicalPlan::Except {
            left: Box::new(rewrite(left, sketch)),
            right: Box::new(rewrite(right, sketch)),
            all: *all,
        },
    }
}

/// Build `col ∈ range₁ ∨ … ∨ col ∈ rangeₙ` (lo inclusive, hi exclusive).
fn ranges_predicate(col: usize, ranges: &[(Option<Value>, Option<Value>)]) -> Expr {
    let mut preds = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        let mut parts = Vec::new();
        if let Some(lo) = lo {
            parts.push(Expr::binary(
                BinOp::Ge,
                Expr::Col(col),
                Expr::Lit(lo.clone()),
            ));
        }
        if let Some(hi) = hi {
            parts.push(Expr::binary(
                BinOp::Lt,
                Expr::Col(col),
                Expr::Lit(hi.clone()),
            ));
        }
        preds.push(Expr::conjunction(parts));
    }
    Expr::disjunction(preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionSet, RangePartition};
    use imp_engine::Database;
    use imp_storage::{row, DataType, Field, Schema};
    use std::sync::Arc;

    fn db_and_pset() -> (Database, Arc<PartitionSet>) {
        let mut db = Database::new();
        db.create_table(
            "sales",
            Schema::new(vec![
                Field::new("sid", DataType::Int),
                Field::new("brand", DataType::Str),
                Field::new("price", DataType::Int),
                Field::new("numsold", DataType::Int),
            ]),
        )
        .unwrap();
        let rows = [
            row![1, "Lenovo", 349, 1],
            row![2, "Lenovo", 449, 2],
            row![3, "Apple", 1199, 1],
            row![4, "Apple", 3875, 1],
            row![5, "Dell", 1345, 1],
            row![6, "HP", 999, 4],
            row![7, "HP", 899, 1],
        ];
        db.table_mut("sales").unwrap().bulk_load(rows).unwrap();
        let pset = Arc::new(
            PartitionSet::new(vec![RangePartition::new(
                "sales",
                "price",
                2,
                vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
            )
            .unwrap()])
            .unwrap(),
        );
        (db, pset)
    }

    #[test]
    fn rewritten_query_equals_full_query_for_safe_sketch() {
        let (db, pset) = db_and_pset();
        let plan = db
            .plan_sql(
                "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                 GROUP BY brand HAVING SUM(price * numsold) > 5000",
            )
            .unwrap();
        let cap = crate::capture::capture(&plan, &db, &pset).unwrap();
        let rewritten = apply_sketch_filter(&plan, &cap.sketch).unwrap();
        let full = db.execute_plan(&plan).unwrap();
        let skipped = db.execute_plan(&rewritten).unwrap();
        assert_eq!(full.canonical(), skipped.canonical());
    }

    #[test]
    fn injected_predicate_uses_merged_ranges() {
        let (db, pset) = db_and_pset();
        let plan = db.plan_sql("SELECT price FROM sales").unwrap();
        let mut sk = crate::sketch::SketchSet::empty(Arc::clone(&pset));
        sk.insert(2);
        sk.insert(3); // ρ3, ρ4 adjacent → one merged range [1001, ∞)
        let rewritten = apply_sketch_filter(&plan, &sk).unwrap();
        let text = rewritten.explain();
        assert!(text.contains(">= 1001"), "{text}");
        // Merged: no second disjunct boundary at 1501.
        assert!(!text.contains("1501"), "{text}");
    }

    #[test]
    fn full_coverage_skips_filter() {
        let (db, pset) = db_and_pset();
        let plan = db.plan_sql("SELECT price FROM sales").unwrap();
        let mut sk = crate::sketch::SketchSet::empty(Arc::clone(&pset));
        for f in 0..4 {
            sk.insert(f);
        }
        let rewritten = apply_sketch_filter(&plan, &sk).unwrap();
        assert_eq!(&rewritten, &plan);
    }

    #[test]
    fn empty_sketch_filters_everything() {
        let (db, pset) = db_and_pset();
        let plan = db.plan_sql("SELECT price FROM sales").unwrap();
        let sk = crate::sketch::SketchSet::empty(pset);
        let rewritten = apply_sketch_filter(&plan, &sk).unwrap();
        let res = db.execute_plan(&rewritten).unwrap();
        assert!(res.rows.is_empty());
    }

    #[test]
    fn existing_where_clause_is_conjoined() {
        let (db, pset) = db_and_pset();
        let plan = db
            .plan_sql("SELECT price FROM sales WHERE numsold > 1")
            .unwrap();
        let mut sk = crate::sketch::SketchSet::empty(pset);
        sk.insert(1); // ρ2 = [601, 1001)
        let rewritten = apply_sketch_filter(&plan, &sk).unwrap();
        let res = db.execute_plan(&rewritten).unwrap();
        // Only HP 999 (numsold 4, price ∈ ρ2).
        assert_eq!(res.canonical(), vec![(row![999], 1)]);
    }
}
