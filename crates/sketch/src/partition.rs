//! Range partitions (Def. 4.1) and global fragment-id spaces.

use crate::error::SketchError;
use crate::Result;
use imp_engine::{equi_depth_cuts, Database};
use imp_storage::Value;
use std::sync::Arc;

/// A range partition `F_{φ,a}(R)` of one table on one attribute.
///
/// The partition is represented by strictly increasing *cut points*
/// `c₁ < … < c_{n−1}`; fragment `i` covers `[cᵢ, cᵢ₊₁)` with the first and
/// last fragments unbounded toward the domain limits, so the fragments
/// cover the *whole* domain, not just its active part (paper §7.4 — this
/// is what keeps future inserts inside some fragment).
#[derive(Debug, Clone, PartialEq)]
pub struct RangePartition {
    /// Partitioned table.
    pub table: String,
    /// Partition attribute name.
    pub attribute: String,
    /// Position of the attribute in the base-table schema.
    pub column: usize,
    cuts: Vec<Value>,
}

impl RangePartition {
    /// Build from explicit cut points (must be strictly increasing and
    /// non-NULL).
    pub fn new(
        table: impl Into<String>,
        attribute: impl Into<String>,
        column: usize,
        cuts: Vec<Value>,
    ) -> Result<RangePartition> {
        for w in cuts.windows(2) {
            if w[0] >= w[1] {
                return Err(SketchError::InvalidPartition(format!(
                    "cut points must be strictly increasing: {} !< {}",
                    w[0], w[1]
                )));
            }
        }
        if cuts.iter().any(Value::is_null) {
            return Err(SketchError::InvalidPartition(
                "cut points must be non-NULL".into(),
            ));
        }
        Ok(RangePartition {
            table: table.into().to_ascii_lowercase(),
            attribute: attribute.into(),
            column,
            cuts,
        })
    }

    /// Build a partition with `fragments` equi-depth fragments from the
    /// current contents of `table.attribute` (paper §7.4: "we use the
    /// bounds of equi-depth histograms … as ranges").
    pub fn equi_depth(
        db: &Database,
        table: &str,
        attribute: &str,
        fragments: usize,
    ) -> Result<RangePartition> {
        let schema = db.table(table)?.schema().clone();
        let column = schema.index_of(attribute).ok_or_else(|| {
            SketchError::InvalidPartition(format!("unknown attribute {table}.{attribute}"))
        })?;
        let cuts = equi_depth_cuts(db, table, attribute, fragments)?;
        RangePartition::new(table, attribute, column, cuts)
    }

    /// Number of fragments (`|φ|`).
    pub fn fragment_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Fragment a value belongs to. NULLs land in fragment 0 by convention.
    pub fn fragment_of(&self, v: &Value) -> usize {
        if v.is_null() {
            return 0;
        }
        // Number of cut points <= v.
        self.cuts.partition_point(|c| c <= v)
    }

    /// Bounds of fragment `i`: inclusive lower, exclusive upper; `None`
    /// means unbounded (domain edge).
    pub fn fragment_bounds(&self, i: usize) -> (Option<&Value>, Option<&Value>) {
        let lo = if i == 0 {
            None
        } else {
            Some(&self.cuts[i - 1])
        };
        let hi = self.cuts.get(i);
        (lo, hi)
    }

    /// The raw cut points.
    pub fn cuts(&self) -> &[Value] {
        &self.cuts
    }

    /// Heap footprint of the boundary list — the "memory of ranges"
    /// quantity of paper Fig. 18.
    pub fn heap_size(&self) -> usize {
        self.cuts.capacity() * std::mem::size_of::<Value>()
            + self.cuts.iter().map(Value::heap_size).sum::<usize>()
            + self.table.len()
            + self.attribute.len()
    }
}

/// The partitions `Φ` of every table a query touches, with a contiguous
/// global fragment-id space (partition `p`'s fragment `f` maps to
/// `offset(p) + f`). Tuple annotations and merge-operator state are
/// bitvectors / counters over this space.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSet {
    partitions: Vec<Arc<RangePartition>>,
    offsets: Vec<usize>,
    total: usize,
}

impl PartitionSet {
    /// Build from partitions (at most one per table).
    pub fn new(partitions: Vec<RangePartition>) -> Result<PartitionSet> {
        for (i, p) in partitions.iter().enumerate() {
            for q in &partitions[i + 1..] {
                if p.table == q.table {
                    return Err(SketchError::InvalidPartition(format!(
                        "duplicate partition for table {}",
                        p.table
                    )));
                }
            }
        }
        let mut offsets = Vec::with_capacity(partitions.len());
        let mut total = 0usize;
        for p in &partitions {
            offsets.push(total);
            total += p.fragment_count();
        }
        Ok(PartitionSet {
            partitions: partitions.into_iter().map(Arc::new).collect(),
            offsets,
            total,
        })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True iff no table is partitioned.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Total fragments across all partitions (`p` in the complexity
    /// analysis, §5.3).
    pub fn total_fragments(&self) -> usize {
        self.total
    }

    /// All partitions with their global offsets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Arc<RangePartition>)> {
        self.offsets.iter().copied().zip(self.partitions.iter())
    }

    /// Partition (index, offset, partition) for a table, if any.
    pub fn for_table(&self, table: &str) -> Option<(usize, usize, &Arc<RangePartition>)> {
        let t = table.to_ascii_lowercase();
        self.partitions
            .iter()
            .enumerate()
            .find(|(_, p)| p.table == t)
            .map(|(i, p)| (i, self.offsets[i], p))
    }

    /// Global fragment id for `(partition index, fragment)`.
    pub fn global_id(&self, partition: usize, fragment: usize) -> usize {
        debug_assert!(fragment < self.partitions[partition].fragment_count());
        self.offsets[partition] + fragment
    }

    /// Map a global fragment id back to `(partition index, fragment)`.
    pub fn locate(&self, global: usize) -> (usize, usize) {
        debug_assert!(global < self.total);
        let p = self.offsets.partition_point(|&o| o <= global) - 1;
        (p, global - self.offsets[p])
    }

    /// Partition by index.
    pub fn partition(&self, i: usize) -> &Arc<RangePartition> {
        &self.partitions[i]
    }

    /// Heap footprint of all boundary lists (Fig. 18 "memory of ranges").
    pub fn heap_size(&self) -> usize {
        self.partitions.iter().map(|p| p.heap_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example partition φ_price of Ex. 1.1:
    /// ρ1=[1,600], ρ2=[601,1000], ρ3=[1001,1500], ρ4=[1501,10000].
    pub fn phi_price() -> RangePartition {
        RangePartition::new(
            "sales",
            "price",
            2,
            vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
        )
        .unwrap()
    }

    #[test]
    fn fragment_lookup_matches_example() {
        let p = phi_price();
        assert_eq!(p.fragment_count(), 4);
        assert_eq!(p.fragment_of(&Value::Int(349)), 0); // ρ1: Lenovo 349
        assert_eq!(p.fragment_of(&Value::Int(999)), 1); // ρ2: HP 999
        assert_eq!(p.fragment_of(&Value::Int(1199)), 2); // ρ3: MacBook Air
        assert_eq!(p.fragment_of(&Value::Int(3875)), 3); // ρ4: MacBook Pro
        assert_eq!(p.fragment_of(&Value::Int(601)), 1); // boundary: inclusive lower
        assert_eq!(p.fragment_of(&Value::Int(600)), 0);
    }

    #[test]
    fn whole_domain_covered() {
        let p = phi_price();
        assert_eq!(p.fragment_of(&Value::Int(i64::MIN)), 0);
        assert_eq!(p.fragment_of(&Value::Int(i64::MAX)), 3);
        assert_eq!(p.fragment_of(&Value::Null), 0);
    }

    #[test]
    fn bounds() {
        let p = phi_price();
        assert_eq!(p.fragment_bounds(0), (None, Some(&Value::Int(601))));
        assert_eq!(
            p.fragment_bounds(2),
            (Some(&Value::Int(1001)), Some(&Value::Int(1501)))
        );
        assert_eq!(p.fragment_bounds(3), (Some(&Value::Int(1501)), None));
    }

    #[test]
    fn rejects_bad_cuts() {
        assert!(RangePartition::new("t", "a", 0, vec![Value::Int(5), Value::Int(5)]).is_err());
        assert!(RangePartition::new("t", "a", 0, vec![Value::Int(5), Value::Int(1)]).is_err());
        assert!(RangePartition::new("t", "a", 0, vec![Value::Null]).is_err());
    }

    #[test]
    fn partition_set_global_ids() {
        // Fig. 5: φ_a has 2 fragments (f1,f2), φ_c has 2 (g1,g2).
        let pa = RangePartition::new("r", "a", 0, vec![Value::Int(6)]).unwrap();
        let pc = RangePartition::new("s", "c", 0, vec![Value::Int(7)]).unwrap();
        let ps = PartitionSet::new(vec![pa, pc]).unwrap();
        assert_eq!(ps.total_fragments(), 4);
        assert_eq!(ps.global_id(0, 1), 1); // f2
        assert_eq!(ps.global_id(1, 0), 2); // g1
        assert_eq!(ps.locate(3), (1, 1)); // g2
        let (idx, off, p) = ps.for_table("s").unwrap();
        assert_eq!((idx, off), (1, 2));
        assert_eq!(p.attribute, "c");
    }

    #[test]
    fn duplicate_table_rejected() {
        let pa = RangePartition::new("r", "a", 0, vec![]).unwrap();
        let pb = RangePartition::new("r", "b", 1, vec![]).unwrap();
        assert!(PartitionSet::new(vec![pa, pb]).is_err());
    }
}
