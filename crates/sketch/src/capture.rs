//! Sketch capture: batch annotated evaluation.
//!
//! To create a sketch for a query `Q`, the paper executes an instrumented
//! *capture query* `Q_{R,F}` that propagates coarse-grained provenance and
//! returns a sketch (§1). Our backend evaluates the plan natively under
//! annotated semantics: every tuple carries a fragment annotation,
//! operators union the annotations of the inputs that justify each
//! output, and the final sketch is `S(F(Q(𝒟)))` — the union of all result
//! annotations (§6.1). Re-running capture on the current database is
//! exactly the **full maintenance (FM)** baseline of the evaluation (§8).
//!
//! Annotations flow as pooled [`AnnotId`]s against an [`AnnotPool`]:
//! scans emit cached singletons, joins and aggregates combine them with
//! memoized pool unions, so no per-row bitvector is ever allocated.
//!
//! This evaluator is deliberately independent from the incremental engine
//! in `imp-core`; property tests cross-validate the two implementations.

use crate::partition::PartitionSet;
use crate::sketch::SketchSet;
use crate::Result;
use imp_engine::eval::extract_prune_ranges;
use imp_engine::{Bag, Database, EngineError};
use imp_sql::plan::compare_rows;
use imp_sql::{AggFunc, AggSpec, Expr, LogicalPlan};
use imp_storage::{AnnotId, AnnotPool, BitVec, DeltaBatch, FxHashMap, Row, Value};
use std::sync::Arc;

/// A bag of annotated tuples `⟨t, P⟩ⁿ` with pooled annotations.
pub type AnnotBag = DeltaBatch;

/// Output of capture: the accurate sketch plus the (plain) query result,
/// so a capture run also answers the query (paper Fig. 2, blue pipeline).
#[derive(Debug, Clone)]
pub struct CaptureResult {
    /// Accurate sketch `P[Q, Φ, D]`.
    pub sketch: SketchSet,
    /// Query result as a plain bag.
    pub result: Bag,
    /// Rows read from base tables during capture (cost accounting).
    pub rows_scanned: u64,
}

/// Capture the accurate sketch of `plan` over `db` wrt. `pset`.
pub fn capture(
    plan: &LogicalPlan,
    db: &Database,
    pset: &Arc<PartitionSet>,
) -> Result<CaptureResult> {
    let mut rows_scanned = 0u64;
    let mut pool = AnnotPool::new(pset.total_fragments());
    let annotated = eval_annot(plan, db, pset, &mut pool, &mut rows_scanned)?;
    let mut result = Vec::with_capacity(annotated.len());
    let mut bits = BitVec::new(pset.total_fragments());
    for e in annotated {
        debug_assert!(e.mult > 0, "capture output must be a plain bag");
        bits.union_with(pool.get(e.annot));
        result.push((e.row, e.mult));
    }
    let sketch = SketchSet::from_bits(Arc::clone(pset), bits);
    Ok(CaptureResult {
        sketch,
        result,
        rows_scanned,
    })
}

/// Evaluate a plan under annotated semantics against `pool`.
pub fn eval_annot(
    plan: &LogicalPlan,
    db: &Database,
    pset: &PartitionSet,
    pool: &mut AnnotPool,
    rows_scanned: &mut u64,
) -> Result<AnnotBag> {
    match plan {
        LogicalPlan::Scan { table, .. } => scan_annot(db, table, None, pset, pool, rows_scanned),
        LogicalPlan::Filter { input, predicate } => {
            let rows = if let LogicalPlan::Scan { table, .. } = input.as_ref() {
                let prune = extract_prune_ranges(predicate);
                scan_annot(db, table, prune.as_ref(), pset, pool, rows_scanned)?
            } else {
                eval_annot(input, db, pset, pool, rows_scanned)?
            };
            let mut out = DeltaBatch::new();
            for e in rows {
                if predicate
                    .eval_predicate(&e.row)
                    .map_err(EngineError::from)?
                {
                    out.push(e);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = eval_annot(input, db, pset, pool, rows_scanned)?;
            let mut out = DeltaBatch::with_capacity(rows.len());
            for e in rows {
                let vals = exprs
                    .iter()
                    .map(|ex| ex.eval(&e.row))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(EngineError::from)?;
                out.push_entry(Row::new(vals), e.annot, e.mult);
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = eval_annot(left, db, pset, pool, rows_scanned)?;
            let r = eval_annot(right, db, pset, pool, rows_scanned)?;
            join_annot(l, r, left_keys, right_keys, pool)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let rows = eval_annot(input, db, pset, pool, rows_scanned)?;
            aggregate_annot(rows, group_by, aggs, pool)
        }
        LogicalPlan::Distinct { input } => {
            let rows = eval_annot(input, db, pset, pool, rows_scanned)?;
            let mut groups: std::collections::BTreeMap<Row, AnnotId> = Default::default();
            for e in rows {
                match groups.entry(e.row) {
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        let merged = pool.union(*o.get(), e.annot);
                        *o.get_mut() = merged;
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(e.annot);
                    }
                }
            }
            Ok(groups
                .into_iter()
                .map(|(row, annot)| imp_storage::DeltaEntry {
                    row,
                    annot,
                    mult: 1,
                })
                .collect())
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rows = eval_annot(input, db, pset, pool, rows_scanned)?;
            rows.sort_by(|a, b| compare_rows(&a.row, &b.row, keys).then_with(|| a.row.cmp(&b.row)));
            Ok(rows)
        }
        LogicalPlan::Except { .. } => Err(crate::SketchError::Unsupported(
            "set difference is not sketch-maintainable (paper §9 future work); \
             IMP answers such queries through the no-sketch path"
                .into(),
        )),
        LogicalPlan::TopK { input, keys, k } => {
            let mut rows = eval_annot(input, db, pset, pool, rows_scanned)?;
            {
                let pool = &*pool;
                rows.sort_by(|a, b| {
                    compare_rows(&a.row, &b.row, keys)
                        .then_with(|| a.row.cmp(&b.row))
                        .then_with(|| pool.get(a.annot).cmp(pool.get(b.annot)))
                });
            }
            let mut out = DeltaBatch::new();
            let mut remaining = *k as i64;
            for e in rows {
                if remaining <= 0 {
                    break;
                }
                let take = e.mult.min(remaining);
                out.push_entry(e.row, e.annot, take);
                remaining -= take;
            }
            Ok(out)
        }
    }
}

fn scan_annot(
    db: &Database,
    table: &str,
    prune: Option<&imp_engine::eval::PruneRanges>,
    pset: &PartitionSet,
    pool: &mut AnnotPool,
    rows_scanned: &mut u64,
) -> Result<AnnotBag> {
    let t = db.table(table)?;
    let mut out = DeltaBatch::with_capacity(t.row_count());
    let part = pset.for_table(table);
    let mut emit = |row: Row| {
        let annot = match &part {
            Some((_, offset, p)) => pool.singleton(offset + p.fragment_of(&row[p.column])),
            None => pool.empty_id(),
        };
        out.push_entry(row, annot, 1);
    };
    match prune {
        Some(p) => t.scan(Some((p.column, &p.ranges)), &mut emit, |_| {}),
        None => t.scan(None, &mut emit, |_| {}),
    }
    *rows_scanned += out.len() as u64;
    Ok(out)
}

fn join_annot(
    left: AnnotBag,
    right: AnnotBag,
    left_keys: &[usize],
    right_keys: &[usize],
    pool: &mut AnnotPool,
) -> Result<AnnotBag> {
    let mut out = DeltaBatch::new();
    if left_keys.is_empty() {
        for l in &left {
            for r in &right {
                out.push_entry(
                    l.row.concat(&r.row),
                    pool.union(l.annot, r.annot),
                    l.mult * r.mult,
                );
            }
        }
        return Ok(out);
    }
    let mut table: FxHashMap<Vec<Value>, Vec<imp_storage::DeltaEntry>> = FxHashMap::default();
    for e in right {
        if let Some(k) = join_key(&e.row, right_keys) {
            table.entry(k).or_default().push(e);
        }
    }
    for l in left {
        let Some(k) = join_key(&l.row, left_keys) else {
            continue;
        };
        if let Some(matches) = table.get(&k) {
            for r in matches {
                out.push_entry(
                    l.row.concat(&r.row),
                    pool.union(l.annot, r.annot),
                    l.mult * r.mult,
                );
            }
        }
    }
    Ok(out)
}

fn join_key(row: &Row, keys: &[usize]) -> Option<Vec<Value>> {
    let mut k = Vec::with_capacity(keys.len());
    for &i in keys {
        let v = row[i].clone();
        if v.is_null() {
            return None;
        }
        k.push(v);
    }
    Some(k)
}

/// Batch annotated aggregation: the group's sketch is the union of the
/// annotations of every tuple in the group (cf. state `ℱ_g`, §5.2.5).
fn aggregate_annot(
    rows: AnnotBag,
    group_by: &[Expr],
    aggs: &[AggSpec],
    pool: &mut AnnotPool,
) -> Result<AnnotBag> {
    struct GroupState {
        annot: AnnotId,
        accs: Vec<BatchAcc>,
    }
    let empty = pool.empty_id();
    let mut groups: FxHashMap<Row, GroupState> = FxHashMap::default();
    for e in rows {
        let key: Row = group_by
            .iter()
            .map(|g| g.eval(&e.row))
            .collect::<std::result::Result<_, _>>()
            .map_err(EngineError::from)?;
        let st = groups.entry(key).or_insert_with(|| GroupState {
            annot: empty,
            accs: aggs.iter().map(|a| BatchAcc::new(a.func)).collect(),
        });
        st.annot = pool.union(st.annot, e.annot);
        for (acc, spec) in st.accs.iter_mut().zip(aggs) {
            let arg = match &spec.arg {
                Some(ex) => Some(ex.eval(&e.row).map_err(EngineError::from)?),
                None => None,
            };
            acc.update(arg.as_ref(), e.mult);
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Row::new(vec![]),
            GroupState {
                annot: empty,
                accs: aggs.iter().map(|a| BatchAcc::new(a.func)).collect(),
            },
        );
    }
    let mut out = DeltaBatch::with_capacity(groups.len());
    for (key, st) in groups {
        let mut vals: Vec<Value> = key.values().to_vec();
        for acc in &st.accs {
            vals.push(acc.finish());
        }
        out.push_entry(Row::new(vals), st.annot, 1);
    }
    Ok(out)
}

/// Minimal batch accumulator (independent of the engine's, by design).
#[derive(Debug, Clone)]
enum BatchAcc {
    Sum {
        int: i64,
        float: f64,
        is_float: bool,
        n: i64,
    },
    Count {
        n: i64,
    },
    Avg {
        int: i64,
        float: f64,
        is_float: bool,
        n: i64,
    },
    Min {
        cur: Option<Value>,
    },
    Max {
        cur: Option<Value>,
    },
}

impl BatchAcc {
    fn new(f: AggFunc) -> BatchAcc {
        match f {
            AggFunc::Sum => BatchAcc::Sum {
                int: 0,
                float: 0.0,
                is_float: false,
                n: 0,
            },
            AggFunc::Count => BatchAcc::Count { n: 0 },
            AggFunc::Avg => BatchAcc::Avg {
                int: 0,
                float: 0.0,
                is_float: false,
                n: 0,
            },
            AggFunc::Min => BatchAcc::Min { cur: None },
            AggFunc::Max => BatchAcc::Max { cur: None },
        }
    }

    fn update(&mut self, arg: Option<&Value>, mult: i64) {
        fn add(int: &mut i64, float: &mut f64, is_float: &mut bool, v: &Value, m: i64) {
            match v {
                Value::Int(i) => {
                    if *is_float {
                        *float += (*i as f64) * m as f64;
                    } else {
                        *int += i * m;
                    }
                }
                Value::Float(f) => {
                    if !*is_float {
                        *float = *int as f64;
                        *is_float = true;
                    }
                    *float += f * m as f64;
                }
                _ => {}
            }
        }
        match self {
            BatchAcc::Count { n } => match arg {
                None => *n += mult,
                Some(v) if !v.is_null() => *n += mult,
                _ => {}
            },
            BatchAcc::Sum {
                int,
                float,
                is_float,
                n,
            }
            | BatchAcc::Avg {
                int,
                float,
                is_float,
                n,
            } => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        add(int, float, is_float, v, mult);
                        *n += mult;
                    }
                }
            }
            BatchAcc::Min { cur } => {
                if let Some(v) = arg {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            BatchAcc::Max { cur } => {
                if let Some(v) = arg {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            BatchAcc::Count { n } => Value::Int(*n),
            BatchAcc::Sum {
                int,
                float,
                is_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *is_float {
                    Value::Float(*float)
                } else {
                    Value::Int(*int)
                }
            }
            BatchAcc::Avg {
                int,
                float,
                is_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else {
                    let s = if *is_float { *float } else { *int as f64 };
                    Value::Float(s / *n as f64)
                }
            }
            BatchAcc::Min { cur } | BatchAcc::Max { cur } => cur.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartition;
    use imp_storage::{row, DataType, Field, Schema};

    fn sales_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "sales",
            Schema::new(vec![
                Field::new("sid", DataType::Int),
                Field::new("brand", DataType::Str),
                Field::new("price", DataType::Int),
                Field::new("numsold", DataType::Int),
            ]),
        )
        .unwrap();
        let rows = [
            row![1, "Lenovo", 349, 1],
            row![2, "Lenovo", 449, 2],
            row![3, "Apple", 1199, 1],
            row![4, "Apple", 3875, 1],
            row![5, "Dell", 1345, 1],
            row![6, "HP", 999, 4],
            row![7, "HP", 899, 1],
        ];
        let t = db.table_mut("sales").unwrap();
        t.bulk_load(rows).unwrap();
        db
    }

    fn price_pset() -> Arc<PartitionSet> {
        Arc::new(
            PartitionSet::new(vec![RangePartition::new(
                "sales",
                "price",
                2,
                vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
            )
            .unwrap()])
            .unwrap(),
        )
    }

    #[test]
    fn capture_example_1_1() {
        // Accurate sketch of Q_top is {ρ3, ρ4} (fragments 2 and 3).
        let db = sales_db();
        let plan = db
            .plan_sql(
                "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                 GROUP BY brand HAVING SUM(price * numsold) > 5000",
            )
            .unwrap();
        let cap = capture(&plan, &db, &price_pset()).unwrap();
        assert_eq!(cap.sketch.fragments_of_partition(0), vec![2, 3]);
        assert_eq!(cap.result, vec![(row!["Apple", 5074], 1)]);
    }

    #[test]
    fn capture_example_1_2_after_insert() {
        // After inserting s8 the HP group passes; sketch gains ρ2.
        let mut db = sales_db();
        db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
            .unwrap();
        let plan = db
            .plan_sql(
                "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                 GROUP BY brand HAVING SUM(price * numsold) > 5000",
            )
            .unwrap();
        let cap = capture(&plan, &db, &price_pset()).unwrap();
        assert_eq!(cap.sketch.fragments_of_partition(0), vec![1, 2, 3]);
        let mut rows = cap.result.clone();
        rows.sort();
        assert_eq!(rows, vec![(row!["Apple", 5074], 1), (row!["HP", 6194], 1)]);
    }

    #[test]
    fn capture_result_matches_plain_execution() {
        let db = sales_db();
        let plan = db
            .plan_sql("SELECT brand, price FROM sales WHERE price > 900")
            .unwrap();
        let cap = capture(&plan, &db, &price_pset()).unwrap();
        let direct = db.execute_plan(&plan).unwrap();
        let mut a = cap.result.clone();
        a.sort();
        let mut b = direct.rows.clone();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn topk_capture_annotates_only_topk() {
        let db = sales_db();
        let plan = db
            .plan_sql("SELECT price FROM sales ORDER BY price DESC LIMIT 2")
            .unwrap();
        let cap = capture(&plan, &db, &price_pset()).unwrap();
        // Top-2 prices 3875 (ρ4) and 1345 (ρ3).
        assert_eq!(cap.sketch.fragments_of_partition(0), vec![2, 3]);
    }

    #[test]
    fn scan_annotations_are_pooled_singletons() {
        // 7 scanned rows, but only as many interned annotations as there
        // are distinct fragments touched.
        let db = sales_db();
        let pset = price_pset();
        let mut pool = AnnotPool::new(pset.total_fragments());
        let mut scanned = 0;
        let plan = db.plan_sql("SELECT price FROM sales").unwrap();
        let bag = eval_annot(&plan, &db, &pset, &mut pool, &mut scanned).unwrap();
        assert_eq!(bag.len(), 7);
        let distinct: std::collections::BTreeSet<_> = bag.iter().map(|e| e.annot).collect();
        assert_eq!(pool.stats().interned as usize, distinct.len());
        assert!(pool.stats().intern_hits > 0, "singleton cache must fire");
    }
}
