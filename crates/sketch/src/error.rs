//! Sketch-layer errors.

use imp_engine::EngineError;
use std::fmt;

/// Errors from partitioning, capture, or rewriting.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// Underlying engine failure.
    Engine(EngineError),
    /// Partition cut points not strictly increasing, empty attribute, etc.
    InvalidPartition(String),
    /// Attribute failed the safety test and safety was not overridden.
    UnsafeAttribute {
        /// Table of the attribute.
        table: String,
        /// Attribute name.
        attribute: String,
    },
    /// The query shape is outside what sketches support.
    Unsupported(String),
    /// Persisted sketch state could not be decoded.
    Corrupt(String),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::Engine(e) => write!(f, "{e}"),
            SketchError::InvalidPartition(m) => write!(f, "invalid partition: {m}"),
            SketchError::UnsafeAttribute { table, attribute } => {
                write!(f, "attribute {table}.{attribute} is not safe for sketching")
            }
            SketchError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SketchError::Corrupt(m) => write!(f, "corrupt sketch state: {m}"),
        }
    }
}

impl std::error::Error for SketchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SketchError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for SketchError {
    fn from(e: EngineError) -> Self {
        SketchError::Engine(e)
    }
}

impl From<imp_sql::SqlError> for SketchError {
    fn from(e: imp_sql::SqlError) -> Self {
        SketchError::Engine(EngineError::Sql(e))
    }
}

impl From<imp_storage::StorageError> for SketchError {
    fn from(e: imp_storage::StorageError) -> Self {
        SketchError::Engine(EngineError::Storage(e))
    }
}
