//! # imp-sketch
//!
//! Provenance-based data skipping (PBDS) — the substrate from Niu et al.,
//! "Provenance-based Data Skipping" (PVLDB'21, cited as \[37\]) that the IMP
//! paper builds on:
//!
//! * [`partition`] — range partitions `F_{φ,a}(R)` (Def. 4.1) and
//!   [`partition::PartitionSet`]s assigning a global fragment-id space to
//!   the partitions of all tables a query touches.
//! * [`sketch`] — provenance sketches as bitvectors over fragments
//!   (Def. 4.2), with deltas (`ΔP`, §4.2) and merged-range extraction.
//! * [`capture`](mod@capture) — batch *annotated* evaluation of a query, producing its
//!   accurate sketch `S(F(Q(𝒟)))`. Re-running capture is exactly the
//!   "full maintenance" baseline of §8. Annotations flow as pooled
//!   [`imp_storage::AnnotId`]s (hash-consed, memoized unions) rather than
//!   per-row bitvectors.
//! * [`use_rewrite`] — instrument a query to skip data outside a sketch
//!   (the `WHERE … BETWEEN … OR … BETWEEN …` rewrite of §1, with adjacent
//!   ranges merged per footnote 2).
//! * [`safety`] — conservative safe-attribute analysis (§4.4, §7.4).

pub mod annotate;
pub mod capture;
pub mod error;
pub mod partition;
pub mod safety;
pub mod sketch;
pub mod use_rewrite;

pub use annotate::{
    annotate_delta, annotate_delta_with, annotation_for_row, annotation_id_for_row,
    annotation_ids_for_rows, ANNOTATE_COLUMNAR_MIN,
};
pub use capture::{capture, AnnotBag, CaptureResult};
pub use error::SketchError;
pub use partition::{PartitionSet, RangePartition};
pub use safety::{safe_attributes, SafeAttribute};
pub use sketch::{SketchDelta, SketchSet};
pub use use_rewrite::apply_sketch_filter;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SketchError>;
