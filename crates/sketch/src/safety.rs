//! Safe-attribute analysis.
//!
//! An attribute `a` is *safe* for a query `Q` if every sketch based on some
//! range partition on `a` is safe — i.e. `Q(D_P) = Q(D)` (Def. 4.2, §4.4).
//! The paper defers to the test of \[37\]; we implement the conservative core
//! of that test:
//!
//! * **Monotone SPJ queries** (no aggregation / top-k): every base column
//!   is safe — the provenance of each output tuple is the set of input
//!   tuples joining into it, and evaluating over any superset of those
//!   inputs reproduces the output (extra tuples only add output tuples that
//!   the full query also produces).
//! * **Aggregation (with HAVING) / top-k over aggregation**: the group-by
//!   attributes *of the grouped table* are safe. Fragments of a partition
//!   on a group-by attribute contain whole groups, so the sketch's data
//!   never contains a partial group whose re-aggregated value could
//!   (in)correctly pass HAVING or reorder top-k.
//! * **Top-k without aggregation**: every base column is safe — all true
//!   top-k rows are in the sketch data and still beat any extra rows.
//!
//! Attributes outside these rules (e.g. the aggregated attribute of a
//! joined table, as in paper Fig. 5's `φ_c`) are reported as
//! `assumed_only`: the caller may still build a sketch on them, matching
//! the paper's "we assume that all attributes used in Φ are safe" (§4.4),
//! but has to opt in explicitly.

use imp_sql::{Expr, LogicalPlan};

/// One attribute judged safe for sketching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafeAttribute {
    /// Base table.
    pub table: String,
    /// Attribute name in the base table schema.
    pub attribute: String,
    /// Column position in the base table schema.
    pub column: usize,
}

/// Compute the provably safe attributes of a plan.
pub fn safe_attributes(plan: &LogicalPlan) -> Vec<SafeAttribute> {
    if contains_except(plan) {
        // Set difference is non-monotone: adding tuples can *remove*
        // results, so no attribute is provably safe.
        return Vec::new();
    }
    let mut out = Vec::new();
    analyze(plan, &mut out);
    out.sort_by(|a, b| (&a.table, &a.attribute).cmp(&(&b.table, &b.attribute)));
    out.dedup();
    out
}

fn contains_except(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Except { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. } => contains_except(input),
        LogicalPlan::Join { left, right, .. } => contains_except(left) || contains_except(right),
    }
}

/// Is `table.attribute` provably safe for `plan`?
pub fn is_safe(plan: &LogicalPlan, table: &str, attribute: &str) -> bool {
    let t = table.to_ascii_lowercase();
    safe_attributes(plan)
        .iter()
        .any(|s| s.table == t && s.attribute.eq_ignore_ascii_case(attribute))
}

fn analyze(plan: &LogicalPlan, out: &mut Vec<SafeAttribute>) {
    match find_aggregate(plan) {
        Some((agg_input, group_by)) => {
            // Group-by attributes traced to base columns are safe.
            for g in group_by {
                if let Expr::Col(c) = g {
                    trace_column(agg_input, *c, out);
                }
            }
        }
        None => {
            // Monotone SPJ / plain top-k: every base column is safe.
            collect_all_base_columns(plan, out);
        }
    }
}

/// Locate the (topmost) Aggregate node reachable through unary operators.
fn find_aggregate(plan: &LogicalPlan) -> Option<(&LogicalPlan, &[Expr])> {
    match plan {
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => Some((input.as_ref(), group_by.as_slice())),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. } => find_aggregate(input),
        LogicalPlan::Join { .. } | LogicalPlan::Scan { .. } | LogicalPlan::Except { .. } => None,
    }
}

/// Trace output column `col` of `plan` back to a base-table column, if the
/// mapping is the identity through the operators on the way.
fn trace_column(plan: &LogicalPlan, col: usize, out: &mut Vec<SafeAttribute>) {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            if col < schema.arity() {
                out.push(SafeAttribute {
                    table: table.clone(),
                    attribute: schema.field(col).name.clone(),
                    column: col,
                });
            }
        }
        LogicalPlan::Except { .. } => {
            // unreachable: contains_except short-circuits, kept defensive.
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. } => trace_column(input, col, out),
        LogicalPlan::Project { input, exprs, .. } => {
            if let Some(Expr::Col(c)) = exprs.get(col) {
                trace_column(input, *c, out);
            }
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let la = left.schema().arity();
            if col < la {
                trace_column(left, col, out);
                // A join key is equated with its partner on the other
                // side: partitioning the other table on the partner
                // attribute aligns fragments with groups too.
                for (lk, rk) in left_keys.iter().zip(right_keys) {
                    if *lk == col {
                        trace_column(right, *rk, out);
                    }
                }
            } else {
                let rcol = col - la;
                trace_column(right, rcol, out);
                for (lk, rk) in left_keys.iter().zip(right_keys) {
                    if *rk == rcol {
                        trace_column(left, *lk, out);
                    }
                }
            }
        }
        LogicalPlan::Aggregate { .. } => {
            // Nested aggregation below the traced column: stop (not safe
            // to claim).
        }
    }
}

fn collect_all_base_columns(plan: &LogicalPlan, out: &mut Vec<SafeAttribute>) {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            for (i, f) in schema.fields().iter().enumerate() {
                out.push(SafeAttribute {
                    table: table.clone(),
                    attribute: f.name.clone(),
                    column: i,
                });
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. } => collect_all_base_columns(input, out),
        LogicalPlan::Join { left, right, .. } => {
            collect_all_base_columns(left, out);
            collect_all_base_columns(right, out);
        }
        LogicalPlan::Except { .. } => {
            // unreachable: contains_except short-circuits, kept defensive.
        }
        LogicalPlan::Aggregate { .. } => unreachable!("handled by analyze"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_engine::Database;
    use imp_storage::{DataType, Field, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "sales",
            Schema::new(vec![
                Field::new("sid", DataType::Int),
                Field::new("brand", DataType::Str),
                Field::new("price", DataType::Int),
            ]),
        )
        .unwrap();
        db.create_table(
            "r",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        )
        .unwrap();
        db.create_table(
            "s",
            Schema::new(vec![
                Field::new("c", DataType::Int),
                Field::new("d", DataType::Int),
            ]),
        )
        .unwrap();
        db
    }

    #[test]
    fn group_by_attribute_is_safe_for_having_query() {
        let db = db();
        let plan = db
            .plan_sql(
                "SELECT brand, sum(price) FROM sales GROUP BY brand \
                 HAVING sum(price) > 100",
            )
            .unwrap();
        assert!(is_safe(&plan, "sales", "brand"));
        assert!(!is_safe(&plan, "sales", "price"));
    }

    #[test]
    fn spj_query_all_attributes_safe() {
        let db = db();
        let plan = db
            .plan_sql("SELECT a, d FROM r JOIN s ON (b = c) WHERE a > 1")
            .unwrap();
        for attr in ["a", "b"] {
            assert!(is_safe(&plan, "r", attr), "{attr}");
        }
        for attr in ["c", "d"] {
            assert!(is_safe(&plan, "s", attr), "{attr}");
        }
    }

    #[test]
    fn join_key_transfers_safety() {
        // Group by r.a over r ⋈ s on b = c: b safe (on r), and its join
        // partner c safe on s — but only if b is group-by... b is not
        // group-by here, so only a is safe.
        let db = db();
        let plan = db
            .plan_sql(
                "SELECT a, sum(d) FROM r JOIN s ON (b = c) GROUP BY a \
                 HAVING sum(d) > 5",
            )
            .unwrap();
        assert!(is_safe(&plan, "r", "a"));
        assert!(!is_safe(&plan, "r", "b"));
        assert!(!is_safe(&plan, "s", "c"));
        assert!(!is_safe(&plan, "s", "d"));
    }

    #[test]
    fn group_by_join_key_covers_both_sides() {
        let db = db();
        let plan = db
            .plan_sql(
                "SELECT b, sum(d) FROM r JOIN s ON (b = c) GROUP BY b \
                 HAVING sum(d) > 5",
            )
            .unwrap();
        assert!(is_safe(&plan, "r", "b"));
        assert!(is_safe(&plan, "s", "c")); // partner of the group-by key
    }

    #[test]
    fn topk_without_aggregation_all_safe() {
        let db = db();
        let plan = db
            .plan_sql("SELECT price FROM sales ORDER BY price DESC LIMIT 3")
            .unwrap();
        assert!(is_safe(&plan, "sales", "price"));
        assert!(is_safe(&plan, "sales", "brand"));
    }

    #[test]
    fn topk_over_aggregation_only_group_by_safe() {
        let db = db();
        let plan = db
            .plan_sql(
                "SELECT brand, sum(price) AS t FROM sales GROUP BY brand \
                 ORDER BY t DESC LIMIT 2",
            )
            .unwrap();
        assert!(is_safe(&plan, "sales", "brand"));
        assert!(!is_safe(&plan, "sales", "price"));
    }
}
