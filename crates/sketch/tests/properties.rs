//! Property tests for the sketch layer: partition totality, annotate
//! consistency, merged-range equivalence, and capture/use safety on safe
//! attributes.

use imp_engine::Database;
use imp_sketch::{apply_sketch_filter, capture, PartitionSet, RangePartition, SketchSet};
use imp_storage::{row, BitVec, DataType, Field, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every value lands in exactly one fragment, and fragments tile the
    /// domain in order.
    #[test]
    fn partition_is_total_and_monotone(
        cuts in prop::collection::btree_set(-1000i64..1000, 0..20),
        probes in prop::collection::vec(-2000i64..2000, 1..50),
    ) {
        let p = RangePartition::new(
            "t", "a", 0,
            cuts.iter().copied().map(Value::Int).collect(),
        ).unwrap();
        let mut sorted = probes.clone();
        sorted.sort();
        let mut last_frag = 0usize;
        for v in sorted {
            let f = p.fragment_of(&Value::Int(v));
            prop_assert!(f < p.fragment_count());
            prop_assert!(f >= last_frag, "fragments must be monotone in the value");
            last_frag = f;
            // The value lies within its fragment's bounds.
            let (lo, hi) = p.fragment_bounds(f);
            if let Some(lo) = lo {
                prop_assert!(Value::Int(v) >= *lo);
            }
            if let Some(hi) = hi {
                prop_assert!(Value::Int(v) < *hi);
            }
        }
    }

    /// `merged_ranges` covers exactly the marked fragments: a value matches
    /// some merged range iff its fragment is in the sketch.
    #[test]
    fn merged_ranges_equivalent_to_fragments(
        cuts in prop::collection::btree_set(-100i64..100, 1..12),
        marked in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
        probes in prop::collection::vec(-150i64..150, 1..60),
    ) {
        let p = RangePartition::new(
            "t", "a", 0,
            cuts.iter().copied().map(Value::Int).collect(),
        ).unwrap();
        let n = p.fragment_count();
        let pset = Arc::new(PartitionSet::new(vec![p]).unwrap());
        let mut sketch = SketchSet::empty(Arc::clone(&pset));
        for m in &marked {
            sketch.insert(m.index(n));
        }
        let ranges = sketch.merged_ranges(0);
        for v in probes {
            let val = Value::Int(v);
            let frag = pset.partition(0).fragment_of(&val);
            let in_sketch = sketch.contains(frag);
            let in_ranges = ranges.iter().any(|(lo, hi)| {
                lo.as_ref().is_none_or(|l| val >= *l)
                    && hi.as_ref().is_none_or(|h| val < *h)
            });
            prop_assert_eq!(in_sketch, in_ranges, "value {} disagrees", v);
        }
    }

    /// Capture on a safe (group-by) attribute always yields a safe sketch:
    /// the rewritten query equals the full query.
    #[test]
    fn capture_yields_safe_sketch(
        rows in prop::collection::vec((0i64..10, -30i64..30), 1..80),
        cuts in prop::collection::btree_set(1i64..10, 0..4),
        threshold in -50i64..80,
    ) {
        let mut db = Database::new();
        db.create_table("t", Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ])).unwrap();
        db.table_mut("t").unwrap()
            .bulk_load(rows.iter().map(|(g, v)| row![*g, *v])).unwrap();
        let plan = db.plan_sql(&format!(
            "SELECT g, sum(v) AS sv FROM t GROUP BY g HAVING sum(v) > {threshold}"
        )).unwrap();
        let pset = Arc::new(PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, cuts.into_iter().map(Value::Int).collect()).unwrap(),
        ]).unwrap());
        let cap = capture(&plan, &db, &pset).unwrap();
        // Capture result == direct evaluation.
        let direct = db.execute_plan(&plan).unwrap();
        prop_assert_eq!(
            imp_engine::database::canonical_bag(&cap.result),
            direct.canonical()
        );
        // Safety of the use rewrite.
        let rewritten = apply_sketch_filter(&plan, &cap.sketch).unwrap();
        prop_assert_eq!(
            db.execute_plan(&rewritten).unwrap().canonical(),
            direct.canonical()
        );
    }

    /// Any over-approximation of a safe sketch is safe (Niu et al., used
    /// by Thm. 6.1): adding arbitrary fragments never changes the result.
    #[test]
    fn over_approximation_preserves_safety(
        rows in prop::collection::vec((0i64..10, -30i64..30), 1..60),
        extra in prop::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let mut db = Database::new();
        db.create_table("t", Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ])).unwrap();
        db.table_mut("t").unwrap()
            .bulk_load(rows.iter().map(|(g, v)| row![*g, *v])).unwrap();
        let plan = db.plan_sql(
            "SELECT g, count(v) AS c FROM t GROUP BY g HAVING count(v) > 2"
        ).unwrap();
        let pset = Arc::new(PartitionSet::new(vec![
            RangePartition::new("t", "g", 0,
                vec![Value::Int(3), Value::Int(6)]).unwrap(),
        ]).unwrap());
        let cap = capture(&plan, &db, &pset).unwrap();
        let mut bits = cap.sketch.bits().clone();
        for e in &extra {
            bits.set(e.index(bits.len()), true);
        }
        let bigger = SketchSet::from_bits(Arc::clone(&pset), bits);
        let rewritten = apply_sketch_filter(&plan, &bigger).unwrap();
        prop_assert_eq!(
            db.execute_plan(&rewritten).unwrap().canonical(),
            db.execute_plan(&plan).unwrap().canonical()
        );
    }
}

#[test]
fn annotation_matches_partition_lookup() {
    let pset = PartitionSet::new(vec![
        RangePartition::new("r", "a", 0, vec![Value::Int(5)]).unwrap(),
        RangePartition::new("s", "c", 1, vec![Value::Int(0)]).unwrap(),
    ])
    .unwrap();
    // r row with a = 7 → fragment 1 of partition 0 → global 1.
    let bits = imp_sketch::annotate::annotation_for_row(&pset, "r", &row![7, 0]);
    assert_eq!(bits, BitVec::singleton(4, 1));
    // s row with c (column 1) = -3 → fragment 0 of partition 1 → global 2.
    let bits = imp_sketch::annotate::annotation_for_row(&pset, "s", &row![0, -3]);
    assert_eq!(bits, BitVec::singleton(4, 2));
}
