//! Property tests for the columnar delta kernels: on any random batch —
//! duplicate rows, mixed signs, exact zero-multiplicity cancellations —
//! the columnar sort-then-run-length paths must produce byte-identical
//! results to the row-at-a-time fallbacks they replace.

use imp_core::delta::{normalize_delta, normalize_delta_rowwise};
use imp_sketch::{annotate_delta, annotation_id_for_row, PartitionSet, RangePartition};
use imp_storage::{
    key_runs, row, sort_keys_stable, AnnotPool, DeltaBatch, DeltaColumns, DeltaLog, DeltaOp,
    RowInterner, Value,
};
use proptest::prelude::*;

const POOL_WIDTH: usize = 8;

/// Random batch over a tiny row/annotation space so duplicate
/// `(row, annot)` keys — and exact cancellations — are common.
fn arb_batch() -> impl Strategy<Value = DeltaBatch> {
    prop::collection::vec((0i64..4, 0i64..3, 0usize..4, -2i64..3), 0..96).prop_map(|entries| {
        let mut pool = AnnotPool::new(POOL_WIDTH);
        let mut batch = DeltaBatch::with_capacity(entries.len());
        for (k, v, frag, mult) in entries {
            batch.push_entry(row![k, v], pool.singleton(frag), mult);
        }
        batch
    })
}

fn pset() -> PartitionSet {
    PartitionSet::new(vec![RangePartition::new(
        "t",
        "k",
        0,
        vec![Value::Int(2), Value::Int(4)],
    )
    .unwrap()])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The columnar merge kernel equals the row-wise hash-fold oracle on
    /// any batch — including sub-threshold sizes the dispatcher would
    /// route row-wise.
    #[test]
    fn columnar_merge_matches_rowwise_oracle(batch in arb_batch()) {
        let columnar = DeltaColumns::from_owned(batch.clone()).merged();
        let rowwise = normalize_delta_rowwise(batch);
        prop_assert_eq!(columnar, rowwise);
    }

    /// The size-dispatched entry point agrees with the oracle whichever
    /// path it picks.
    #[test]
    fn normalize_dispatch_is_path_independent(batch in arb_batch()) {
        prop_assert_eq!(
            normalize_delta(batch.clone()),
            normalize_delta_rowwise(batch)
        );
    }

    /// Decomposing a batch into columns and back is the identity.
    #[test]
    fn column_roundtrip_is_identity(batch in arb_batch()) {
        prop_assert_eq!(DeltaColumns::from_batch(&batch).into_batch(), batch.clone());
        prop_assert_eq!(DeltaColumns::from_owned(batch.clone()).into_batch(), batch);
    }

    /// `sort_keys_stable` yields a permutation that sorts the keys and
    /// preserves input order within equal keys (the property the
    /// order-sensitive aggregate accumulators rely on).
    #[test]
    fn key_sort_is_a_stable_permutation(keys in prop::collection::vec(0u8..5, 0..64)) {
        let order = sort_keys_stable(&keys);
        let mut seen = vec![false; keys.len()];
        for &i in &order {
            prop_assert!(!seen[i as usize], "index {} repeated", i);
            seen[i as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "not a permutation");
        for w in order.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            prop_assert!(keys[a] <= keys[b], "keys out of order");
            if keys[a] == keys[b] {
                prop_assert!(a < b, "equal keys reordered: {} before {}", a, b);
            }
        }
    }

    /// `key_runs` partitions the sorted order into maximal equal-key
    /// runs, covering every index exactly once.
    #[test]
    fn key_runs_partition_the_order(keys in prop::collection::vec(0u8..5, 0..64)) {
        let order = sort_keys_stable(&keys);
        let mut covered = 0usize;
        let mut prev_key: Option<u8> = None;
        for run in key_runs(&keys, &order) {
            prop_assert!(!run.is_empty());
            let k = keys[run[0] as usize];
            for &i in run {
                prop_assert_eq!(keys[i as usize], k, "mixed keys within a run");
            }
            prop_assert!(prev_key != Some(k), "run not maximal: {} repeated", k);
            prev_key = Some(k);
            covered += run.len();
        }
        prop_assert_eq!(covered, keys.len());
    }

    /// The columnar annotate kernel assigns every record the same pooled
    /// annotation (and the same batch) as the per-record path. Both sides
    /// run against fresh pools; id sequences coincide because both
    /// request singletons in record order.
    #[test]
    fn columnar_annotate_matches_per_record_path(
        // ≥ 32 records force the dispatcher onto the columnar kernel.
        records in prop::collection::vec((0i64..6, 0i64..4, any::<bool>(), 1u64..3), 32..80)
    ) {
        let ps = pset();
        let mut log = DeltaLog::new();
        for (i, &(k, v, delete, mult)) in records.iter().enumerate() {
            let op = if delete { DeltaOp::Delete } else { DeltaOp::Insert };
            log.append(i as u64 + 1, op, row![k, v], mult);
        }

        let mut pool_col = AnnotPool::new(ps.total_fragments());
        let mut rows_col = RowInterner::new();
        let columnar = annotate_delta(&mut pool_col, &mut rows_col, &ps, "t", log.all());

        let mut pool_row = AnnotPool::new(ps.total_fragments());
        let mut rows_row = RowInterner::new();
        let rowwise: DeltaBatch = log
            .all()
            .iter()
            .map(|r| imp_storage::DeltaEntry {
                annot: annotation_id_for_row(&mut pool_row, &ps, "t", &r.row),
                row: rows_row.intern(r.row.clone()),
                mult: r.op.sign() * r.mult as i64,
            })
            .collect();

        prop_assert_eq!(&columnar, &rowwise);
        // Ids agree by construction order; the pooled *contents* must too.
        for (c, r) in columnar.iter().zip(rowwise.iter()) {
            prop_assert_eq!(
                pool_col.get(c.annot).iter_ones().collect::<Vec<_>>(),
                pool_row.get(r.annot).iter_ones().collect::<Vec<_>>()
            );
        }
    }
}
