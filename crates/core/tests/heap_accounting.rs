//! Heap-accounting consistency property: `Imp::store_heap_size()` must
//! equal the sum of per-sketch `state_bytes` in `describe_sketches()`,
//! on both backends, across capture / update / evict / restore /
//! pool-flush / advisor cycles. The two numbers travel different paths
//! (the heap total sums shard inspection reports; the summaries are
//! built per sketch), so this guards the accounting against drift.

use imp_core::middleware::{Imp, ImpConfig};
use imp_engine::Database;
use imp_sql::{QueryTemplate, Statement};
use imp_storage::{row, DataType, Field, Schema};
use proptest::prelude::*;

const TABLES: [&str; 2] = ["ha", "hb"];

fn seed_db() -> Database {
    let mut db = Database::new();
    for name in TABLES {
        db.create_table(
            name,
            Schema::new(vec![
                Field::new("g", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        )
        .unwrap();
        db.table_mut(name)
            .unwrap()
            .bulk_load((0..40).map(|i| row![i % 5, i]))
            .unwrap();
    }
    db
}

/// Three templates over two tables (the third marks everything — a
/// zero-benefit sketch the advisor demotes quickly).
fn queries() -> [String; 3] {
    [
        "SELECT g, sum(v) AS s FROM ha GROUP BY g HAVING sum(v) > 100".into(),
        "SELECT g, sum(v) AS s FROM hb GROUP BY g HAVING sum(v) > 120".into(),
        "SELECT g, sum(v) AS s FROM hb GROUP BY g HAVING sum(v) > 0".into(),
    ]
}

fn template_of(sql: &str) -> QueryTemplate {
    let Statement::Select(sel) = imp_sql::parse_one(sql).unwrap() else {
        panic!("not a select: {sql}")
    };
    QueryTemplate::of(&sel)
}

fn assert_consistent(imp: &Imp, context: &str) -> Result<(), TestCaseError> {
    let total = imp.store_heap_size();
    let summed: usize = imp.describe_sketches().iter().map(|s| s.state_bytes).sum();
    prop_assert_eq!(
        total,
        summed,
        "store_heap_size {} != Σ describe_sketches state_bytes {} after {}",
        total,
        summed,
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn store_heap_equals_per_sketch_sum(
        // (op selector, argument) — ops cover capture/use, updates,
        // whole-store and single-template eviction, pool flushes, stale
        // sweeps, and advisor passes.
        ops in prop::collection::vec((0usize..7, 0usize..3), 1..24,
        ),
        workers in 0usize..3,
    ) {
        let qs = queries();
        let mut imp = Imp::new(seed_db(), ImpConfig {
            fragments: 5,
            sched_workers: workers,
            // Tight enough that advisor passes exercise evict/drop paths.
            sketch_memory_budget: Some(48 * 1024),
            ..ImpConfig::default()
        });
        for (step, &(op, arg)) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    imp.execute(&qs[arg]).unwrap();
                }
                2 => {
                    let table = TABLES[arg % TABLES.len()];
                    imp.execute(&format!("INSERT INTO {table} VALUES ({}, {step})", arg))
                        .unwrap();
                }
                3 => {
                    imp.evict_all_states().unwrap();
                }
                4 => {
                    imp.evict_state(&template_of(&qs[arg])).unwrap();
                }
                5 => {
                    imp.flush_pool_caches();
                }
                _ => {
                    imp.advise().unwrap();
                }
            }
            // Settle async routed maintenance (sharded backend) so both
            // accounting paths observe the same quiescent store.
            imp.maintain_all_stale().unwrap();
            assert_consistent(&imp, &format!("op {op}({arg}) at step {step}, workers {workers}"))?;
        }
    }
}
