//! Flight-recorder concurrency and allocation guards (ISSUE 10
//! acceptance). Two properties of [`imp_core::FlightRecorder`]:
//!
//! 1. **No torn slots.** N writer threads hammer the ring while a reader
//!    dumps it mid-write. Every event a writer records carries payload
//!    words derived from one seed by fixed functions, so a dump that
//!    mixed words from two different writes is detectable — the seqlock
//!    must instead have *skipped* the slot.
//! 2. **Zero-allocation hot path.** This test binary installs a counting
//!    `#[global_allocator]` (each integration test compiles to its own
//!    binary, so the swap is contained) and asserts `record()` allocates
//!    nothing — the flight recorder is always on, even with obs disabled,
//!    so its write cost must stay a `fetch_add` plus a few stores.

use imp_core::{FlightEvent, FlightRecorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The self-consistency relation every stress write obeys: all four
/// payload words of a `Maintained` event are fixed functions of one
/// seed, so any cross-write mixture violates at least one equation.
fn stress_event(seed: u64) -> FlightEvent {
    FlightEvent::Maintained {
        template: seed.rotate_left(7) ^ 0x00d1_5ea5_e0b5_e55e,
        versions: seed.rotate_left(17),
        rows: seed,
        dur_ns: seed ^ 0x5a5a_5a5a_5a5a_5a5a,
    }
}

fn check_stress_event(event: &FlightEvent) {
    let FlightEvent::Maintained {
        template,
        versions,
        rows,
        dur_ns,
    } = *event
    else {
        panic!("unexpected event kind in stress ring: {event:?}");
    };
    let seed = rows;
    assert_eq!(
        template,
        seed.rotate_left(7) ^ 0x00d1_5ea5_e0b5_e55e,
        "torn: template"
    );
    assert_eq!(versions, seed.rotate_left(17), "torn: versions");
    assert_eq!(dur_ns, seed ^ 0x5a5a_5a5a_5a5a_5a5a, "torn: dur_ns");
}

#[test]
fn concurrent_writers_and_mid_write_reader_see_no_torn_slots() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 40_000;

    let fr = Arc::new(FlightRecorder::new(256));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let fr = Arc::clone(&fr);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scans = 0u64;
            let mut seen = 0u64;
            while !stop.load(Ordering::Acquire) {
                let events = fr.events(u64::MAX);
                assert!(events.len() <= fr.capacity());
                let mut last_ticket = None;
                for rec in &events {
                    if let Some(prev) = last_ticket {
                        assert!(rec.ticket > prev, "tickets out of order");
                    }
                    last_ticket = Some(rec.ticket);
                    check_stress_event(&rec.event);
                }
                scans += 1;
                seen += events.len() as u64;
            }
            (scans, seen)
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let fr = Arc::clone(&fr);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    fr.record(stress_event((w << 48) | i));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let (scans, seen) = reader.join().unwrap();

    assert_eq!(fr.recorded(), WRITERS * PER_WRITER);
    assert!(scans > 0 && seen > 0, "reader never observed live traffic");

    // Quiescent ring: every retained slot is fully formed and valid.
    let settled = fr.events(u64::MAX);
    assert_eq!(settled.len(), fr.capacity());
    for rec in &settled {
        check_stress_event(&rec.event);
    }
}

#[test]
fn record_hot_path_allocates_nothing() {
    let fr = FlightRecorder::new(1024);
    // Warm up: first touch of anything lazy.
    for i in 0..64u64 {
        fr.record(stress_event(i));
    }

    let before = allocations();
    for i in 0..10_000u64 {
        fr.record(stress_event(i));
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "flight record() performed {delta} allocations over 10k events"
    );

    // Sanity: the guard can fail — dumping does allocate.
    let before = allocations();
    let _ = fr.dump_json(u64::MAX);
    assert!(allocations() > before, "counting allocator inert");
}
