//! Zero-allocation guard for the disabled observability hot path
//! (ISSUE 9 acceptance). This test binary installs a counting
//! `#[global_allocator]` (each integration test compiles to its own
//! binary, so the allocator swap is contained) and asserts that with obs
//! off, the instrumented call sites — span open/close, probe emission,
//! maintain/query observation, scheduler counter updates — allocate
//! **nothing**: their cost is a branch or a relaxed atomic.

use imp_core::metrics::SchedMetrics;
use imp_core::Obs;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_obs_hot_path_allocates_nothing() {
    let obs = Obs::off();
    let metrics = SchedMetrics::new(2);

    // Warm up every call site once: lazy thread-locals, the probe hub's
    // fast-path load, anything the first call touches.
    let exercise = |n: u64| {
        for i in 0..n {
            let _span = obs.span("maintain_routed");
            obs.emit(|| unreachable!("no subscribers registered"));
            obs.maintain_observed("SELECT g, sum(v) FROM t GROUP BY g", 1234 + i, 10, false);
            obs.query_observed("fresh", 777 + i);
            metrics.routed_batches.inc();
            metrics.routed_rows.add(3);
            metrics.enqueued(i as usize % 2);
            metrics.dequeued(i as usize % 2);
        }
    };
    exercise(8);

    let before = allocations();
    exercise(10_000);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "disabled obs hot path performed {delta} allocations over 10k iterations"
    );

    // Sanity: the guard can fail — an enabled hub on the same path does
    // allocate (histogram registration, span records).
    let on = Obs::new(&imp_core::ObsConfig::on());
    let before = allocations();
    let _s = on.span("x");
    on.maintain_observed("q", 1, 1, false);
    assert!(allocations() > before, "counting allocator inert");
}
