//! Observability must be a pure observer: running the *same* workload
//! with `ImpConfig::obs` fully enabled (histograms + tracing + a probe
//! subscriber) and fully disabled must produce byte-identical sketch
//! states and identical query answers, on both the in-line and the
//! sharded backend (the PR 4/8 differential pattern). The enabled sides
//! double-check that observation actually happened — non-empty latency
//! histograms, recorded spans, delivered probe events — so this can't
//! pass vacuously.

use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_core::{ObsConfig, ObsEvent, Probe};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const KEYS: i64 = 6;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "ta",
        Schema::new(vec![
            Field::new("ka", DataType::Int),
            Field::new("va", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tb",
        Schema::new(vec![
            Field::new("kb", DataType::Int),
            Field::new("vb", DataType::Int),
        ]),
    )
    .unwrap();
    for k in 0..KEYS {
        db.table_mut("ta")
            .unwrap()
            .bulk_load([row![k, k * 10], row![k, 5]])
            .unwrap();
        db.table_mut("tb")
            .unwrap()
            .bulk_load([row![k, (k + 1) % KEYS]])
            .unwrap();
    }
    db
}

fn config(workers: usize, obs: ObsConfig) -> ImpConfig {
    ImpConfig {
        fragments: 4,
        topk_buffer: Some(4),
        sched_workers: workers,
        coalesce_budget: 8,
        obs,
        ..ImpConfig::default()
    }
}

const QUERIES: [&str; 3] = [
    "SELECT ka, sum(va) AS s FROM ta GROUP BY ka HAVING sum(va) > 40",
    "SELECT kb, sum(va) AS s FROM ta JOIN tb ON (ka = kb) GROUP BY kb HAVING sum(va) > 10",
    "SELECT ka, sum(va) AS s FROM ta GROUP BY ka ORDER BY s DESC LIMIT 2",
];

fn run_query(imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
    let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
        panic!("expected rows for {sql}")
    };
    result.canonical()
}

/// A counting probe subscriber: proves typed events flow on the enabled
/// sides without perturbing anything.
#[derive(Default)]
struct CountingProbe {
    maintains: AtomicU64,
    queries: AtomicU64,
}

impl Probe for CountingProbe {
    fn on_event(&self, event: &ObsEvent) {
        match event {
            ObsEvent::MaintainRun { .. } => {
                self.maintains.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::QueryAnswered { .. } => {
                self.queries.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// The deterministic workload: interleaved inserts/deletes across both
/// tables, periodic convergence, queries through the USE path each round.
fn run_workload(imp: &mut Imp) -> Vec<Vec<(imp_storage::Row, i64)>> {
    let mut answers = Vec::new();
    for sql in QUERIES {
        answers.push(run_query(imp, sql));
    }
    for round in 0..6 {
        for k in 0..KEYS {
            let v = (round * 13 + k * 7) % 60;
            imp.execute(&format!("INSERT INTO ta VALUES ({k}, {v})"))
                .unwrap();
            if (round + k) % 3 == 0 {
                imp.execute(&format!("DELETE FROM tb WHERE kb = {k}"))
                    .unwrap();
                imp.execute(&format!(
                    "INSERT INTO tb VALUES ({k}, {})",
                    (k + round) % KEYS
                ))
                .unwrap();
            }
        }
        if round % 2 == 1 {
            imp.evict_all_states().unwrap();
        }
        imp.maintain_all_stale().unwrap();
        for sql in QUERIES {
            answers.push(run_query(imp, sql));
        }
    }
    answers
}

#[test]
fn obs_on_and_off_agree_on_both_backends() {
    // Four systems, one workload: in-line and sharded, obs off and on.
    let mut inline_off = Imp::new(seed_db(), config(0, ObsConfig::default()));
    let mut inline_on = Imp::new(seed_db(), config(0, ObsConfig::on()));
    let mut sharded_off = Imp::new(seed_db(), config(3, ObsConfig::default()));
    let mut sharded_on = Imp::new(seed_db(), config(3, ObsConfig::on()));

    let probe = Arc::new(CountingProbe::default());
    inline_on.subscribe_probe(probe.clone());
    sharded_on.subscribe_probe(probe.clone());

    let base = run_workload(&mut inline_off);
    for (name, imp) in [
        ("inline+obs", &mut inline_on),
        ("sharded", &mut sharded_off),
        ("sharded+obs", &mut sharded_on),
    ] {
        let answers = run_workload(imp);
        assert_eq!(base, answers, "query answers diverged on {name}");
    }

    let states = inline_off.sketch_states();
    assert!(!states.is_empty());
    for (name, imp) in [
        ("inline+obs", &inline_on),
        ("sharded", &sharded_off),
        ("sharded+obs", &sharded_on),
    ] {
        assert_eq!(
            states,
            imp.sketch_states(),
            "sketch states diverged on {name}"
        );
    }

    // The observed sides actually observed: per-template maintain
    // histograms, mode-labeled query histograms, spans, probe events.
    for (name, imp) in [("inline+obs", &inline_on), ("sharded+obs", &sharded_on)] {
        let maint = imp
            .obs()
            .maintain_latency()
            .unwrap_or_else(|| panic!("{name}: no maintain latency recorded"));
        assert!(maint.count > 0, "{name}: empty maintain histogram");
        assert!(maint.p99() >= maint.p50());
        let text = imp.metrics_text();
        assert!(
            text.contains("imp_maintain_latency_ns_count"),
            "{name}: maintain histogram missing from exposition"
        );
        assert!(
            text.contains("imp_query_latency_ns_count{mode=\"fresh\"}")
                || text.contains("imp_query_latency_ns_count{mode=\"maintained\"}"),
            "{name}: USE-path latency missing from exposition"
        );
        let trace = imp.trace_export();
        assert!(
            trace.contains("\"traceEvents\""),
            "{name}: trace export malformed"
        );
    }
    // The sharded+obs side routes through the scheduler pipeline, so its
    // counters must be live in the unified registry too.
    let text = sharded_on.metrics_text();
    assert!(text.contains("imp_sched_routed_batches"));
    assert!(text.contains("imp_sched_maintain_runs"));
    assert!(probe.maintains.load(Ordering::Relaxed) > 0);
    assert!(probe.queries.load(Ordering::Relaxed) > 0);
    // The disabled sides recorded nothing.
    assert!(inline_off.obs().maintain_latency().is_none());
    assert!(inline_off.trace_export().contains("\"traceEvents\":[]"));
}
