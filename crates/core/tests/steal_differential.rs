//! Differential property test for work stealing and async ingest: a
//! randomized, *skewed* insert/delete workload (most updates hammer one
//! hot table, so one shard's inbox backs up while others idle) runs
//! through the sequential in-line store and through a steal-enabled
//! 2–4-worker pool with a tiny staging queue and coalesce budget —
//! claims split small, steals interleave with owner drains, and staging
//! overflows onto the inline-ingest fallback. After every round both
//! sides must hold byte-identical sketch sets and maintained versions,
//! and answer queries identically. Updates land while the pool is paused
//! so backlogs deterministically exist for thieves to find on resume.

use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};
use proptest::prelude::*;

const KEYS: i64 = 6;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "hot",
        Schema::new(vec![
            Field::new("kh", DataType::Int),
            Field::new("vh", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "warm",
        Schema::new(vec![
            Field::new("kw", DataType::Int),
            Field::new("vw", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "cold",
        Schema::new(vec![
            Field::new("kc", DataType::Int),
            Field::new("vc", DataType::Int),
        ]),
    )
    .unwrap();
    for k in 0..KEYS {
        db.table_mut("hot")
            .unwrap()
            .bulk_load([row![k, k * 10], row![k, 3]])
            .unwrap();
        db.table_mut("warm")
            .unwrap()
            .bulk_load([row![k, (k + 1) % KEYS]])
            .unwrap();
        db.table_mut("cold")
            .unwrap()
            .bulk_load([row![k, k * 100]])
            .unwrap();
    }
    db
}

fn config(workers: usize) -> ImpConfig {
    ImpConfig {
        fragments: 4,
        sched_workers: workers,
        // Tiny budget: every claim covers at most a couple of batches, so
        // a backlog takes many claims to drain — steal opportunities.
        coalesce_budget: 2,
        // Tiny staging queue: routed updates exercise both the async
        // staging path and the full-queue inline fallback.
        ingest_queue_cap: 2,
        work_stealing: true,
        ..ImpConfig::default()
    }
}

/// Three templates over overlapping tables; the workload skews toward
/// `hot`, which both of the first two templates reference.
const QUERIES: [&str; 3] = [
    "SELECT kh, sum(vh) AS s FROM hot GROUP BY kh HAVING sum(vh) > 20",
    "SELECT kw, sum(vh) AS s FROM hot JOIN warm ON (kh = kw) GROUP BY kw HAVING sum(vh) > 5",
    "SELECT kc, sum(vc) AS s FROM cold GROUP BY kc HAVING sum(vc) > 150",
];

/// Skewed table pick: indexes 0..6 → `hot`, 6 → `warm`, 7 → `cold`.
const TABLES: [(&str, &str); 3] = [("hot", "kh"), ("warm", "kw"), ("cold", "kc")];

fn pick_table(skewed: usize) -> (&'static str, &'static str) {
    match skewed {
        0..=5 => TABLES[0],
        6 => TABLES[1],
        _ => TABLES[2],
    }
}

fn run_query(imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
    let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
        panic!("expected rows for {sql}")
    };
    result.canonical()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn stealing_pool_matches_sequential_store(
        // (skewed table pick, key, delete?, value), chunked into rounds
        // applied against a paused pool so inboxes hold real backlogs.
        ops in prop::collection::vec(
            (0usize..8, 0i64..KEYS, any::<bool>(), 0i64..60),
            1..48,
        ),
        workers in 2usize..5,
    ) {
        let mut seq = Imp::new(seed_db(), config(0));
        let mut par = Imp::new(seed_db(), config(workers));
        for sql in QUERIES {
            let a = run_query(&mut seq, sql);
            let b = run_query(&mut par, sql);
            prop_assert_eq!(a, b, "capture results diverged for {}", sql);
        }
        prop_assert_eq!(seq.sketch_count(), 3);
        prop_assert_eq!(par.sketch_count(), 3);

        for (round, batch) in ops.chunks(6).enumerate() {
            // Updates land against a paused pool: the hot shard's inbox
            // accumulates the whole round before any worker may claim,
            // so on resume idle workers find a backlog to steal from.
            let paused = par.scheduler().unwrap().pause();
            for &(skewed, key, delete, val) in batch {
                let (table, key_col) = pick_table(skewed);
                let sql = if delete {
                    format!("DELETE FROM {table} WHERE {key_col} = {key}")
                } else {
                    format!("INSERT INTO {table} VALUES ({key}, {val})")
                };
                seq.execute(&sql).unwrap();
                par.execute(&sql).unwrap();
            }
            paused.resume();
            // Converge both sides: the pool drains staging and inboxes
            // (owners and thieves racing) behind the control barrier.
            seq.maintain_all_stale().unwrap();
            par.maintain_all_stale().unwrap();
            prop_assert_eq!(
                seq.sketch_states(),
                par.sketch_states(),
                "sketch sets/versions diverged at round {} (workers {})",
                round,
                workers
            );
            let sql = QUERIES[round % QUERIES.len()];
            let a = run_query(&mut seq, sql);
            let b = run_query(&mut par, sql);
            prop_assert_eq!(a, b, "query answers diverged at round {}", round);
            prop_assert_eq!(seq.sketch_states(), par.sketch_states());
        }

        // Every staged update was either drained or inlined — the
        // accounting must cover the round trips exactly.
        let stats = par.scheduler().unwrap().stats();
        prop_assert!(
            stats.staged_updates + stats.backpressure_stalls > 0
                || stats.routed_batches == 0,
            "updates must flow through staging or the inline fallback: {:?}",
            stats
        );
    }
}
