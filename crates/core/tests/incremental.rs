//! End-to-end tests of the incremental maintenance engine against the
//! paper's running examples (Ex. 1.1, 1.2, 4.2, 5.1, 5.2) and against full
//! recapture on randomized updates.

use imp_core::maintain::SketchMaintainer;
use imp_core::middleware::{Imp, ImpConfig, ImpResponse, QueryMode};
use imp_core::ops::OpConfig;
use imp_core::MaintenanceStrategy;
use imp_engine::Database;
use imp_sketch::{capture, PartitionSet, RangePartition};
use imp_storage::{row, DataType, Field, Schema, Value};
use std::sync::Arc;

const QTOP: &str = "SELECT brand, SUM(price * numsold) AS rev FROM sales \
                    GROUP BY brand HAVING SUM(price * numsold) > 5000";

fn sales_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "sales",
        Schema::new(vec![
            Field::new("sid", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("price", DataType::Int),
            Field::new("numsold", DataType::Int),
        ]),
    )
    .unwrap();
    let rows = [
        row![1, "Lenovo", 349, 1],
        row![2, "Lenovo", 449, 2],
        row![3, "Apple", 1199, 1],
        row![4, "Apple", 3875, 1],
        row![5, "Dell", 1345, 1],
        row![6, "HP", 999, 4],
        row![7, "HP", 899, 1],
    ];
    db.table_mut("sales").unwrap().bulk_load(rows).unwrap();
    db
}

/// φ_price of Ex. 1.1 (brand is the group-by/safe attribute, but the
/// paper's example partitions on price — allowed via override semantics).
fn price_pset() -> Arc<PartitionSet> {
    Arc::new(
        PartitionSet::new(vec![RangePartition::new(
            "sales",
            "price",
            2,
            vec![Value::Int(601), Value::Int(1001), Value::Int(1501)],
        )
        .unwrap()])
        .unwrap(),
    )
}

#[test]
fn capture_bootstrap_matches_batch_capture() {
    // Two independent implementations must agree: incremental-from-empty
    // (maintainer bootstrap) vs. batch annotated evaluation.
    let db = sales_db();
    let plan = db.plan_sql(QTOP).unwrap();
    let pset = price_pset();
    let (m, result) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
    assert_eq!(m.sketch().fragments_of_partition(0), vec![2, 3]); // {ρ3, ρ4}
    assert_eq!(result, vec![(row!["Apple", 5074], 1)]);
}

#[test]
fn example_1_2_insert_makes_sketch_gain_rho2() {
    // Inserting s8 pushes HP over the threshold: sketch gains ρ2.
    let mut db = sales_db();
    let plan = db.plan_sql(QTOP).unwrap();
    let pset = price_pset();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    assert!(m.is_stale(&db));
    let report = m.maintain(&db).unwrap();
    assert!(!report.recaptured);
    // ρ2 (fragment 1) newly added; HP tuples live in ρ2 (999, 899) and the
    // new one in ρ3 which was already present.
    assert_eq!(report.sketch_delta.added, vec![1]);
    assert_eq!(m.sketch().fragments_of_partition(0), vec![1, 2, 3]);
    // Must equal a from-scratch capture of the updated database.
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
}

#[test]
fn deletion_shrinks_sketch() {
    let mut db = sales_db();
    let plan = db.plan_sql(QTOP).unwrap();
    let pset = price_pset();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // Delete the expensive MacBook: Apple's revenue falls below 5000,
    // leaving no result tuples → sketch becomes empty.
    db.execute_sql("DELETE FROM sales WHERE sid = 4").unwrap();
    let report = m.maintain(&db).unwrap();
    assert_eq!(report.sketch_delta.removed, vec![2, 3]);
    assert_eq!(m.sketch().fragment_count(), 0);
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
}

#[test]
fn fig5_two_table_join_example() {
    // Paper Ex. 5.1 / Fig. 5, verbatim.
    let mut db = Database::new();
    db.create_table(
        "r",
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "s",
        Schema::new(vec![
            Field::new("c", DataType::Int),
            Field::new("d", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("r")
        .unwrap()
        .bulk_load([row![1, 7], row![9, 9]])
        .unwrap();
    db.table_mut("s")
        .unwrap()
        .bulk_load([row![6, 9], row![7, 8]])
        .unwrap();
    // φ_a = {f1=[1,5], f2=[6,10]}, φ_c = {g1=[1,6], g2=[7,15]}.
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("r", "a", 0, vec![Value::Int(6)]).unwrap(),
            RangePartition::new("s", "c", 0, vec![Value::Int(7)]).unwrap(),
        ])
        .unwrap(),
    );
    let sql = "SELECT a, sum(c) AS sc \
               FROM (SELECT a, b FROM r WHERE a > 3) t JOIN s ON (b = d) \
               GROUP BY a HAVING SUM(c) > 5";
    let plan = db.plan_sql(sql).unwrap();
    let (mut m, result) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // Before the delta: only group 9 qualifies (9 joins 6 via b=d=9,
    // sum(c)=6 > 5); sketch = {f2, g1} = global fragments {1, 2}.
    assert_eq!(result, vec![(row![9, 6], 1)]);
    assert_eq!(
        m.sketch().bits().iter_ones().collect::<Vec<_>>(),
        vec![1, 2]
    );
    // Δ+ (5,8) into R: new group 5 with sum(c)=7 > 5 → Δ+{f1, g2}.
    db.execute_sql("INSERT INTO r VALUES (5, 8)").unwrap();
    let report = m.maintain(&db).unwrap();
    assert_eq!(report.sketch_delta.added, vec![0, 3]); // f1, g2
    assert!(report.sketch_delta.removed.is_empty());
    assert_eq!(
        m.sketch().bits().iter_ones().collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    // Cross-check against batch capture.
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
}

#[test]
fn middleware_lifecycle_capture_use_maintain() {
    let mut imp = Imp::new(
        sales_db(),
        ImpConfig {
            partition_overrides: vec![("sales".into(), "price".into())],
            allow_unsafe_attributes: true,
            fragments: 4,
            ..ImpConfig::default()
        },
    );
    // First query captures.
    let ImpResponse::Rows { result, mode } = imp.execute(QTOP).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Captured));
    assert_eq!(result.canonical(), vec![(row!["Apple", 5074], 1)]);
    // Second identical query uses the fresh sketch.
    let ImpResponse::Rows { result, mode } = imp.execute(QTOP).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::UsedFresh));
    assert_eq!(result.canonical(), vec![(row!["Apple", 5074], 1)]);
    // Update, then the next query maintains and still answers correctly
    // (Ex. 1.2: HP joins the result).
    imp.execute("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    let ImpResponse::Rows { result, mode } = imp.execute(QTOP).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Maintained(_)));
    assert_eq!(
        result.canonical(),
        vec![(row!["Apple", 5074], 1), (row!["HP", 6194], 1)]
    );
}

#[test]
fn middleware_eager_strategy_maintains_on_update() {
    let mut imp = Imp::new(
        sales_db(),
        ImpConfig {
            strategy: MaintenanceStrategy::Eager { batch_size: 1 },
            partition_overrides: vec![("sales".into(), "price".into())],
            allow_unsafe_attributes: true,
            fragments: 4,
            ..ImpConfig::default()
        },
    );
    imp.execute(QTOP).unwrap();
    let ImpResponse::Affected { maintenance, .. } = imp
        .execute("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(maintenance.len(), 1);
    // Query now finds a fresh sketch.
    let ImpResponse::Rows { mode, .. } = imp.execute(QTOP).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::UsedFresh));
}

#[test]
fn middleware_reuses_sketch_for_more_selective_constant() {
    // A sketch for HAVING > 5000 may answer HAVING > 6000 (subsumption).
    let mut imp = Imp::new(
        sales_db(),
        ImpConfig {
            partition_overrides: vec![("sales".into(), "price".into())],
            allow_unsafe_attributes: true,
            fragments: 4,
            ..ImpConfig::default()
        },
    );
    imp.execute(QTOP).unwrap();
    let q6000 = QTOP.replace("5000", "6000");
    let ImpResponse::Rows { result, mode } = imp.execute(&q6000).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::UsedFresh), "{mode:?}");
    assert!(result.rows.is_empty()); // Apple's 5074 < 6000
                                     // A *less* selective constant must NOT reuse (captures a new sketch
                                     // under the same template — replacing the old entry).
    let q4000 = QTOP.replace("5000", "4000");
    let ImpResponse::Rows { mode, .. } = imp.execute(&q4000).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Captured), "{mode:?}");
}

#[test]
fn state_persistence_roundtrip() {
    // Save state, restore into a fresh maintainer, continue maintaining:
    // result must equal uninterrupted maintenance.
    let mut db = sales_db();
    let plan = db.plan_sql(QTOP).unwrap();
    let pset = price_pset();
    let (mut live, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let saved = imp_core::state_codec::save_state(&live);

    db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    live.maintain(&db).unwrap();

    // Restore: fresh maintainer from the same plan (bootstrap runs on the
    // *updated* db, but load_state overwrites everything).
    let (mut restored, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    imp_core::state_codec::load_state(&mut restored, saved).unwrap();
    assert!(restored.is_stale(&db));
    restored.maintain(&db).unwrap();
    assert_eq!(restored.sketch(), live.sketch());
}

#[test]
fn unsupported_plan_shapes_rejected() {
    // Aggregation below a join is outside the supported fragment.
    let mut db = sales_db();
    db.create_table("t2", Schema::new(vec![Field::new("brand", DataType::Str)]))
        .unwrap();
    let plan = db
        .plan_sql(
            "SELECT x.brand, cnt FROM \
             (SELECT brand, count(sid) AS cnt FROM sales GROUP BY brand) x \
             JOIN t2 ON (x.brand = t2.brand)",
        )
        .unwrap();
    let err = SketchMaintainer::capture(&plan, &db, price_pset(), OpConfig::default(), true);
    assert!(err.is_err());
}

#[test]
fn topk_incremental_maintenance() {
    let mut db = sales_db();
    let sql = "SELECT brand, price FROM sales ORDER BY price DESC LIMIT 2";
    let plan = db.plan_sql(sql).unwrap();
    let pset = price_pset();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // Top-2 = 3875 (ρ4), 1345 (ρ3).
    assert_eq!(m.sketch().fragments_of_partition(0), vec![2, 3]);
    // Insert a new maximum in ρ4, delete old #2.
    db.execute_sql("INSERT INTO sales VALUES (9, 'Asus', 9000, 1)")
        .unwrap();
    db.execute_sql("DELETE FROM sales WHERE sid = 5").unwrap();
    m.maintain(&db).unwrap();
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
    // Top-2 now 9000 (ρ4) and 3875 (ρ4) → sketch = {ρ4} only.
    assert_eq!(m.sketch().fragments_of_partition(0), vec![3]);
}

#[test]
fn topk_incremental_diff_regression() {
    // The cached-old/merge-diff top-k path (incremental `compute_topk`
    // diff): batches entirely beyond the boundary of a full top-k emit an
    // empty sketch delta, batches crossing it emit the exact delta, and
    // the cache survives eviction/restore (it is rebuilt, not persisted).
    let mut db = sales_db();
    let sql = "SELECT brand, price FROM sales ORDER BY price DESC LIMIT 2";
    let plan = db.plan_sql(sql).unwrap();
    let pset = price_pset();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // Top-2 = 3875 (ρ4), 1345 (ρ3).
    assert_eq!(m.sketch().fragments_of_partition(0), vec![2, 3]);

    // (1) Inserts strictly beyond the boundary (price < 1345, DESC order)
    // cannot enter the top-2: the clean-batch fast path emits no delta.
    db.execute_sql("INSERT INTO sales VALUES (20, 'Acer', 500, 1)")
        .unwrap();
    db.execute_sql("INSERT INTO sales VALUES (21, 'Acer', 700, 1)")
        .unwrap();
    let report = m.maintain(&db).unwrap();
    assert!(report.sketch_delta.added.is_empty() && report.sketch_delta.removed.is_empty());
    assert_eq!(m.sketch(), &capture(&plan, &db, &pset).unwrap().sketch);

    // (2) Deleting beyond the boundary is also clean.
    db.execute_sql("DELETE FROM sales WHERE sid = 20").unwrap();
    let report = m.maintain(&db).unwrap();
    assert!(report.sketch_delta.added.is_empty() && report.sketch_delta.removed.is_empty());

    // (3) A new maximum crosses the boundary: the merge-diff emits the
    // change and the sketch tracks a fresh recapture. 1600 lands in ρ4;
    // old #2 (1345, ρ3) falls out → ρ3 removed.
    db.execute_sql("INSERT INTO sales VALUES (22, 'Asus', 1600, 1)")
        .unwrap();
    let report = m.maintain(&db).unwrap();
    assert_eq!(report.sketch_delta.removed, vec![2]);
    assert_eq!(m.sketch(), &capture(&plan, &db, &pset).unwrap().sketch);

    // (4) Evict + restore drops the cache; the next batch rebuilds the
    // old top-k from the restored state and stays exact.
    let saved = imp_core::state_codec::save_state(&m);
    m.drop_state();
    imp_core::state_codec::load_state(&mut m, saved).unwrap();
    db.execute_sql("DELETE FROM sales WHERE sid = 22").unwrap();
    db.execute_sql("INSERT INTO sales VALUES (23, 'Dell', 2000, 1)")
        .unwrap();
    m.maintain(&db).unwrap();
    assert_eq!(m.sketch(), &capture(&plan, &db, &pset).unwrap().sketch);
}

#[test]
fn min_max_aggregates_maintained() {
    let mut db = sales_db();
    let sql = "SELECT brand, min(price) AS mn, max(price) AS mx FROM sales \
               GROUP BY brand HAVING min(price) < 1000";
    let plan = db.plan_sql(sql).unwrap();
    let pset = price_pset();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    db.execute_sql("DELETE FROM sales WHERE sid = 1").unwrap();
    db.execute_sql("INSERT INTO sales VALUES (10, 'Apple', 450, 3)")
        .unwrap();
    m.maintain(&db).unwrap();
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
}

#[test]
fn bounded_minmax_triggers_recapture() {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load((0..20).map(|i| row![i % 2, i]))
        .unwrap();
    let plan = db
        .plan_sql("SELECT g, min(v) AS mv FROM t GROUP BY g HAVING min(v) < 100")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, vec![Value::Int(1)]).unwrap()
        ])
        .unwrap(),
    );
    let config = OpConfig {
        minmax_buffer: Some(3),
        ..OpConfig::default()
    };
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), config, true).unwrap();
    // Delete the 4 smallest even values: exhausts the 3-value buffer of
    // group 0 → recapture.
    db.execute_sql("DELETE FROM t WHERE g = 0 AND v < 8")
        .unwrap();
    let report = m.maintain(&db).unwrap();
    assert!(report.recaptured);
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
    // And the maintainer keeps working afterwards.
    db.execute_sql("DELETE FROM t WHERE v = 8").unwrap();
    m.maintain(&db).unwrap();
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
}

#[test]
fn default_minmax_buffer_is_bounded_with_recapture_fallback() {
    // Satellite of paper §7.2: MIN/MAX state is bounded *by default*;
    // when deletions exhaust a buffer, the maintainer falls back to a
    // full recapture and stays exact.
    let default_buffer = OpConfig::default().minmax_buffer;
    assert_eq!(default_buffer, Some(imp_core::ops::DEFAULT_MINMAX_BUFFER));
    assert_eq!(
        ImpConfig::default().minmax_buffer,
        default_buffer,
        "middleware default must match the operator default"
    );

    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    // One group with more distinct values than the default buffer holds.
    let n = imp_core::ops::DEFAULT_MINMAX_BUFFER as i64 + 10;
    db.table_mut("t")
        .unwrap()
        .bulk_load((0..n).map(|i| row![0, i]))
        .unwrap();
    let plan = db
        .plan_sql("SELECT g, min(v) AS mv FROM t GROUP BY g HAVING min(v) < 1000000")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, vec![Value::Int(1)]).unwrap()
        ])
        .unwrap(),
    );
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    // Deleting every buffered (smallest) value exhausts the bounded state:
    // the evicted tail is unknown, so a recapture must be reported.
    db.execute_sql(&format!(
        "DELETE FROM t WHERE v < {}",
        imp_core::ops::DEFAULT_MINMAX_BUFFER
    ))
    .unwrap();
    let report = m.maintain(&db).unwrap();
    assert!(report.recaptured, "exhausted default buffer must recapture");
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
    // The maintainer keeps working incrementally afterwards.
    db.execute_sql("INSERT INTO t VALUES (0, 7)").unwrap();
    let report = m.maintain(&db).unwrap();
    assert!(!report.recaptured);
    let batch = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &batch.sketch);
}

#[test]
fn background_maintainer_tick_driven_convergence() {
    // The eager/background strategy thread: inject updates, let ticks
    // fire, and assert the stored sketch converges to the recaptured
    // ground truth without any foreground query triggering maintenance.
    use imp_core::strategy::BackgroundMaintainer;
    use parking_lot::Mutex;
    use std::time::{Duration, Instant};

    let mut imp = Imp::new(
        sales_db(),
        ImpConfig {
            partition_overrides: vec![("sales".into(), "price".into())],
            allow_unsafe_attributes: true,
            fragments: 4,
            ..ImpConfig::default()
        },
    );
    imp.execute(QTOP).unwrap(); // capture
    let imp = Arc::new(Mutex::new(imp));
    let bg = BackgroundMaintainer::spawn(Arc::clone(&imp), Duration::from_millis(2));

    // Inject updates through the middleware (lazy strategy: nothing is
    // maintained in the foreground).
    {
        let mut guard = imp.lock();
        guard
            .execute("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
            .unwrap();
        guard
            .execute("INSERT INTO sales VALUES (9, 'Asus', 250, 2)")
            .unwrap();
    }

    // Let ticks advance until the sketch is fresh again (bounded wait;
    // each poll yields the lock so the worker can take it).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        {
            let guard = imp.lock();
            let all_fresh = guard.describe_sketches().iter().all(|s| !s.stale);
            if all_fresh {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "background maintainer never converged"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    bg.stop();

    // Ground truth: a from-scratch capture on the current database.
    let guard = imp.lock();
    let imp_sql::Statement::Select(sel) = imp_sql::parse_one(QTOP).unwrap() else {
        panic!()
    };
    let template = imp_sql::QueryTemplate::of(&sel);
    let entry = guard.sketch_entry(&template).expect("sketch stored");
    assert!(!entry.maintainer.is_stale(&guard.db()));
    let truth = capture(
        entry.maintainer.plan(),
        &guard.db(),
        entry.maintainer.partitions(),
    )
    .unwrap();
    assert_eq!(entry.maintainer.sketch(), &truth.sketch);
    // HP joined the result via the tick-driven maintenance: ρ2 + ρ3 marked.
    assert_eq!(
        entry.maintainer.sketch().fragments_of_partition(0),
        vec![1, 2, 3]
    );
}

#[test]
fn shared_ownership_accounting_counts_annot_contents_once() {
    // Fig. 13e/f / 17 memory columns: annotation contents held by
    // top-k / join-index `Arc<BitVec>` handles must be counted exactly
    // once — by the pool while it owns the allocations (no double count),
    // and by the state after a between-runs pool flush leaves the handles
    // as sole owners (no zero count).
    let mut db = sales_db();
    db.create_table(
        "brands",
        Schema::new(vec![Field::new("bname", DataType::Str)]),
    )
    .unwrap();
    db.table_mut("brands")
        .unwrap()
        .bulk_load([row!["Apple"], row!["HP"], row!["Dell"]])
        .unwrap();
    let queries = [
        "SELECT brand, price FROM sales ORDER BY price DESC LIMIT 3",
        "SELECT price, bname FROM sales JOIN brands ON (brand = bname)",
    ];
    for sql in queries {
        let plan = db.plan_sql(sql).unwrap();
        let pset = price_pset();
        let (mut m, _) =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
                .unwrap();
        // Run one real maintenance so join-side indexes exist.
        db.execute_sql("INSERT INTO sales VALUES (30, 'HP', 1250, 1)")
            .unwrap();
        m.maintain(&db).unwrap();
        let (topk_entries, _) = m.topk_state().unwrap_or((0, 0));
        let (idx_entries, _) = m.join_index_state();
        assert!(
            topk_entries > 0 || idx_entries > 0,
            "state must hold annotation handles for {sql}"
        );

        // While the pool owns the allocations the state contributes no
        // extra annotation bytes (no double count).
        assert_eq!(m.unpooled_annot_bytes(), 0, "double count for {sql}");

        // Between-runs pool flush: the handles become sole owners and the
        // accounting attributes their contents to the state (no zero
        // count), exactly once per distinct allocation.
        let total_before = m.state_heap_size();
        let pool_before = m.pool().heap_size();
        m.flush_pool_caches();
        let unpooled = m.unpooled_annot_bytes();
        assert!(unpooled > 0, "zero count after pool flush for {sql}");
        // The flush may only shed bytes the pool alone held: the drop in
        // the total must not exceed the pool's own shrinkage (the state's
        // handle contents did not vanish from the accounting).
        let total_after = m.state_heap_size();
        let pool_shrunk = pool_before - m.pool().heap_size();
        assert!(
            total_before - total_after <= pool_shrunk,
            "state-held annotation contents vanished from the accounting for {sql}"
        );

        // Eviction round trip re-interns the state's annotations: the
        // pool owns them again and the extra attribution returns to zero.
        let saved = imp_core::state_codec::save_state(&m);
        m.drop_state();
        imp_core::state_codec::load_state(&mut m, saved).unwrap();
        assert_eq!(
            m.unpooled_annot_bytes(),
            0,
            "double count after restore for {sql}"
        );

        // And maintenance stays exact across the whole exercise.
        db.execute_sql("DELETE FROM sales WHERE sid = 30").unwrap();
        m.maintain(&db).unwrap();
        assert_eq!(m.sketch(), &capture(&plan, &db, &pset).unwrap().sketch);
    }
}

#[test]
fn eviction_clears_pool_and_roundtrips() {
    // drop_state flushes the annotation pool / row interner; load_state
    // re-interns what the persisted state needs, and maintenance over the
    // rebuilt pool must match uninterrupted maintenance.
    let mut db = sales_db();
    let sql = "SELECT brand, price FROM sales ORDER BY price DESC LIMIT 3";
    let plan = db.plan_sql(sql).unwrap();
    let pset = price_pset();
    let (mut live, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let (mut evicted, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let saved = imp_core::state_codec::save_state(&evicted);
    evicted.drop_state();

    db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    db.execute_sql("DELETE FROM sales WHERE sid = 4").unwrap();

    imp_core::state_codec::load_state(&mut evicted, saved).unwrap();
    live.maintain(&db).unwrap();
    evicted.maintain(&db).unwrap();
    assert_eq!(live.sketch(), evicted.sketch());
    let truth = capture(&plan, &db, &pset).unwrap();
    assert_eq!(evicted.sketch(), &truth.sketch);
}

/// Two tables joined on their first column, two keys each, partitioned
/// with key 2 in its own fragment (global frags: r → {0, 1}, s → {2, 3}).
fn two_key_join_db() -> (Database, Arc<PartitionSet>) {
    let mut db = Database::new();
    db.create_table(
        "r",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "s",
        Schema::new(vec![
            Field::new("k2", DataType::Int),
            Field::new("w", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("r")
        .unwrap()
        .bulk_load([row![1, 10], row![2, 20]])
        .unwrap();
    db.table_mut("s")
        .unwrap()
        .bulk_load([row![1, 100], row![2, 200]])
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("r", "k", 0, vec![Value::Int(2)]).unwrap(),
            RangePartition::new("s", "k2", 0, vec![Value::Int(2)]).unwrap(),
        ])
        .unwrap(),
    );
    (db, pset)
}

#[test]
fn bloom_delete_keys_preserve_delta_delta_cancellation() {
    // Regression: r and s each hold the only partner of key 2. After a
    // state eviction (bloom filters are not persisted and are rebuilt
    // lazily), deleting both partners in one batch means the rebuilt
    // blooms — scans of the *post-update* sides — no longer contain
    // key 2. The delta sync must insert *delete* keys into the blooms
    // too, or both deltas are pruned and the Term 3 cancellation
    // (−ΔQ₁ ⋈ ΔQ₂, here del×del → the removal itself) is silently lost,
    // leaving the sketch with fragments a recapture would drop.
    let (mut db, pset) = two_key_join_db();
    let plan = db
        .plan_sql("SELECT v, w FROM r JOIN s ON (k = k2)")
        .unwrap();
    // Index off: this pins the bloom + outsourced-evaluation path.
    let cfg = OpConfig {
        join_index_budget: None,
        ..OpConfig::default()
    };
    let (mut m, _) = SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
    assert_eq!(
        m.sketch().bits().iter_ones().collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    let saved = imp_core::state_codec::save_state(&m);
    m.drop_state();

    db.execute_sql("DELETE FROM r WHERE k = 2").unwrap();
    db.execute_sql("DELETE FROM s WHERE k2 = 2").unwrap();

    imp_core::state_codec::load_state(&mut m, saved).unwrap();
    m.maintain(&db).unwrap();
    let truth = capture(&plan, &db, &pset).unwrap();
    assert_eq!(
        m.sketch(),
        &truth.sketch,
        "lost Δ⋈Δ cancellation: delete keys must be inserted into the blooms"
    );
    assert_eq!(
        m.sketch().bits().iter_ones().collect::<Vec<_>>(),
        vec![0, 2]
    );
}

#[test]
fn join_index_eliminates_steady_state_roundtrips() {
    // With the side indexes on (default), the bootstrap builds both
    // sides once; every subsequent batch is answered in memory — zero
    // backend round trips, probes and avoided-trips counted instead.
    let (mut db, pset) = two_key_join_db();
    let plan = db
        .plan_sql("SELECT v, w FROM r JOIN s ON (k = k2)")
        .unwrap();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let mut avoided = 0u64;
    for i in 0..5 {
        db.execute_sql(&format!("INSERT INTO r VALUES ({}, {})", 1 + i % 2, 30 + i))
            .unwrap();
        if i % 2 == 0 {
            db.execute_sql(&format!("DELETE FROM s WHERE w = {}", 100 + i))
                .unwrap();
        }
        let report = m.maintain(&db).unwrap();
        assert_eq!(
            report.metrics.db_roundtrips, 0,
            "steady-state join maintenance must not outsource (batch {i})"
        );
        assert_eq!(report.metrics.rows_sent_to_db, 0);
        assert!(report.metrics.join_index_probes > 0);
        avoided += report.metrics.db_roundtrips_avoided;
        let truth = capture(&plan, &db, &pset).unwrap();
        assert_eq!(m.sketch(), &truth.sketch, "diverged at batch {i}");
    }
    assert!(avoided > 0, "index must report the avoided round trips");
    let (entries, bytes) = m.join_index_state();
    assert!(entries > 0 && bytes > 0, "index state must be accounted");
    assert!(m.state_heap_size() >= bytes);
}

#[test]
fn join_index_budget_falls_back_to_reevaluation() {
    // A side over budget is dropped: maintenance stays correct but pays
    // the per-batch outsourced evaluation again.
    let (mut db, pset) = two_key_join_db();
    let plan = db
        .plan_sql("SELECT v, w FROM r JOIN s ON (k = k2)")
        .unwrap();
    let cfg = OpConfig {
        join_index_budget: Some(1), // both sides hold 2 entries
        ..OpConfig::default()
    };
    let (mut m, _) = SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
    assert_eq!(m.join_index_state(), (0, 0), "over-budget sides not kept");
    for i in 0..3 {
        db.execute_sql(&format!("INSERT INTO r VALUES (2, {})", 40 + i))
            .unwrap();
        let report = m.maintain(&db).unwrap();
        assert!(
            report.metrics.db_roundtrips > 0,
            "fallback must outsource per batch (batch {i})"
        );
        assert_eq!(report.metrics.join_index_probes, 0);
        let truth = capture(&plan, &db, &pset).unwrap();
        assert_eq!(m.sketch(), &truth.sketch, "diverged at batch {i}");
    }
}

#[test]
fn join_index_persistence_roundtrip_avoids_rebuild() {
    // Eviction + restore must re-intern the indexed annotations and keep
    // the zero-round-trip steady state: the restored index answers the
    // next batch and the blooms are rebuilt from its keys, not a scan.
    let (mut db, pset) = two_key_join_db();
    let plan = db
        .plan_sql("SELECT v, w FROM r JOIN s ON (k = k2)")
        .unwrap();
    let (mut live, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let saved = imp_core::state_codec::save_state(&live);
    live.drop_state();

    db.execute_sql("INSERT INTO r VALUES (2, 21)").unwrap();
    db.execute_sql("DELETE FROM s WHERE k2 = 1").unwrap();

    imp_core::state_codec::load_state(&mut live, saved).unwrap();
    let report = live.maintain(&db).unwrap();
    assert_eq!(
        report.metrics.db_roundtrips, 0,
        "restored index must avoid the rebuild round trip"
    );
    assert!(report.metrics.db_roundtrips_avoided > 0);
    let truth = capture(&plan, &db, &pset).unwrap();
    assert_eq!(live.sketch(), &truth.sketch);

    // Uninterrupted maintenance agrees.
    let (entries, _) = live.join_index_state();
    assert!(entries > 0);
}

#[test]
fn recapture_reports_bootstrap_work() {
    // The recapture fallback and the FM baseline both run the bootstrap
    // pipeline; its cost counters must reach the returned report instead
    // of being dropped (Fig. 13/14 recapture costs).
    let mut db = sales_db();
    let plan = db.plan_sql(QTOP).unwrap();
    let pset = price_pset();
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    db.execute_sql("INSERT INTO sales VALUES (8, 'HP', 1299, 1)")
        .unwrap();
    let report = m.full_maintain(&db).unwrap();
    assert!(report.recaptured);
    assert!(
        report.metrics.rows_processed > 0,
        "full maintenance must report the bootstrap's work"
    );

    // Bounded MIN/MAX recapture path: same requirement.
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load((0..20).map(|i| row![i % 2, i]))
        .unwrap();
    let plan = db
        .plan_sql("SELECT g, min(v) AS mv FROM t GROUP BY g HAVING min(v) < 100")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("t", "g", 0, vec![Value::Int(1)]).unwrap()
        ])
        .unwrap(),
    );
    let cfg = OpConfig {
        minmax_buffer: Some(3),
        ..OpConfig::default()
    };
    let (mut m, _) = SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true).unwrap();
    let before_rows = {
        // Work done by the *delta* alone is small; the recapture must add
        // the bootstrap's full-table pass on top.
        db.execute_sql("DELETE FROM t WHERE g = 0 AND v < 8")
            .unwrap();
        let report = m.maintain(&db).unwrap();
        assert!(report.recaptured);
        report.metrics.rows_processed
    };
    assert!(
        before_rows >= 12,
        "recapture report must include bootstrap work, got {before_rows} rows"
    );
}

#[test]
fn pool_memoizes_unions_across_runs() {
    // Join maintenance over repeating fragment combinations must be
    // answered by the pool's union memo table, and the pooled delta heap
    // accounting can never exceed the flat baseline.
    let mut db = Database::new();
    for t in ["r", "s"] {
        db.create_table(
            t,
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        )
        .unwrap();
    }
    db.table_mut("r")
        .unwrap()
        .bulk_load((0..40).map(|i| row![i % 4, i]))
        .unwrap();
    db.table_mut("s")
        .unwrap()
        .bulk_load((0..8).map(|i| row![i % 4, i * 10]))
        .unwrap();
    let plan = db
        .plan_sql("SELECT r.v, s.v FROM r JOIN s ON (r.k = s.k)")
        .unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("r", "k", 0, vec![Value::Int(2)]).unwrap(),
            RangePartition::new("s", "k", 0, vec![Value::Int(2)]).unwrap(),
        ])
        .unwrap(),
    );
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let mut memo_hits = 0u64;
    for i in 0..5 {
        db.execute_sql(&format!("INSERT INTO r VALUES ({}, {})", i % 4, 100 + i))
            .unwrap();
        let report = m.maintain(&db).unwrap();
        assert!(report.metrics.delta_bytes_pooled <= report.metrics.delta_bytes_flat);
        memo_hits += report.metrics.pool_union_memo_hits;
    }
    assert!(
        memo_hits > 0,
        "repeated fragment combinations must hit the union memo"
    );
    let truth = capture(&plan, &db, &pset).unwrap();
    assert_eq!(m.sketch(), &truth.sketch);
}

#[test]
fn randomized_updates_match_recapture() {
    // Mini stress: random inserts/deletes; after every maintenance the
    // sketch must equal (here: exactly, since counters are exact) a fresh
    // batch capture, and the rewritten query must produce the full result.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load((0..200).map(|i| row![i % 10, (i * 37) % 100]))
        .unwrap();
    let sql = "SELECT g, sum(v) AS sv FROM t GROUP BY g HAVING sum(v) > 900";
    let plan = db.plan_sql(sql).unwrap();
    let pset = Arc::new(
        PartitionSet::new(vec![RangePartition::equi_depth(&db, "t", "g", 5).unwrap()]).unwrap(),
    );
    let (mut m, _) =
        SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), OpConfig::default(), true)
            .unwrap();
    let mut next_id = 1000;
    for step in 0..30 {
        // Random batch of 1-5 updates.
        for _ in 0..rng.gen_range(1..=5) {
            if rng.gen_bool(0.6) {
                let g = rng.gen_range(0..10);
                let v = rng.gen_range(0..100);
                db.execute_sql(&format!("INSERT INTO t VALUES ({g}, {v})"))
                    .unwrap();
                next_id += 1;
            } else {
                let v = rng.gen_range(0..100);
                db.execute_sql(&format!("DELETE FROM t WHERE v = {v}"))
                    .unwrap();
            }
        }
        m.maintain(&db).unwrap();
        let batch = capture(&plan, &db, &pset).unwrap();
        assert_eq!(m.sketch(), &batch.sketch, "diverged at step {step}");
        // Safety: rewritten query over the sketch == full query.
        let rewritten = imp_sketch::apply_sketch_filter(&plan, m.sketch()).unwrap();
        assert_eq!(
            db.execute_plan(&rewritten).unwrap().canonical(),
            db.execute_plan(&plan).unwrap().canonical(),
            "safety violated at step {step}"
        );
    }
    let _ = next_id;
}
