//! Differential property tests for the n-ary join circuit.
//!
//! 1. `nary_matches_binary_oracle` — random insert/delete workloads over
//!    a 4-table chain join, maintained side-by-side on the n-ary circuit
//!    (`nary_join: true`, the default) and on the binary-tree oracle
//!    (`nary_join: false`). Every batch must produce byte-identical
//!    sketch deltas and the same final sketch as a fresh recapture,
//!    through periodic state eviction/restore cycles (the persisted
//!    n-ary indexes face in-flight deletes and the codec round trip).
//! 2. `tree_shapes_maintain_identically` — left-deep, right-deep, and
//!    bushy parses of the same equi-join set must compile to the same
//!    canonical `NaryJoinOp` (equal signatures) and maintain
//!    byte-identically batch by batch.
//! 3. `nary_pool_matches_sequential_store` — the 4-input circuit under
//!    the sharded scheduler: a 2–4-worker stealing pool must stay
//!    byte-identical to the sequential in-line store while maintaining a
//!    4-table join template, proving the per-table version closure keeps
//!    all n inputs at one version frontier.

use imp_core::maintain::SketchMaintainer;
use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_core::ops::OpConfig;
use imp_core::state_codec::{load_state, save_state};
use imp_engine::Database;
use imp_sketch::{capture, PartitionSet, RangePartition};
use imp_sql::{flatten_join, LogicalPlan};
use imp_storage::{row, DataType, Field, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

const KEYS: i64 = 5;

/// 4-table chain: ta(ka,va) ⋈ tb(kb1,kb2) ⋈ tc(kc1,kc2) ⋈ td(kd,wd)
/// on ka = kb1, kb2 = kc1, kc2 = kd.
const SQL4: &str =
    "SELECT va, wd FROM ta JOIN tb ON (ka = kb1) JOIN tc ON (kb2 = kc1) JOIN td ON (kc2 = kd)";

fn seed_db() -> Database {
    let mut db = Database::new();
    for (table, c1, c2) in [
        ("ta", "ka", "va"),
        ("tb", "kb1", "kb2"),
        ("tc", "kc1", "kc2"),
        ("td", "kd", "wd"),
    ] {
        db.create_table(
            table,
            Schema::new(vec![
                Field::new(c1, DataType::Int),
                Field::new(c2, DataType::Int),
            ]),
        )
        .unwrap();
    }
    for k in 0..KEYS {
        db.table_mut("ta")
            .unwrap()
            .bulk_load([row![k, k * 10]])
            .unwrap();
        db.table_mut("tb")
            .unwrap()
            .bulk_load([row![k, (k + 1) % KEYS]])
            .unwrap();
        db.table_mut("tc")
            .unwrap()
            .bulk_load([row![k, (k + 2) % KEYS]])
            .unwrap();
        db.table_mut("td")
            .unwrap()
            .bulk_load([row![k, k * 100]])
            .unwrap();
    }
    db
}

fn pset() -> Arc<PartitionSet> {
    Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("ta", "ka", 0, vec![Value::Int(2), Value::Int(4)]).unwrap(),
            RangePartition::new("td", "kd", 0, vec![Value::Int(2), Value::Int(4)]).unwrap(),
        ])
        .unwrap(),
    )
}

const TABLES: [(&str, &str); 4] = [("ta", "ka"), ("tb", "kb1"), ("tc", "kc1"), ("td", "kd")];

/// Apply one op batch as SQL; join-side columns keep values in the key
/// domain so inserts actually meet join partners.
fn apply_batch(db: &mut Database, batch: &[(usize, i64, bool, i64)]) {
    for &(t, key, delete, val) in batch {
        let (table, key_col) = TABLES[t];
        let sql = if delete {
            format!("DELETE FROM {table} WHERE {key_col} = {key}")
        } else if table == "tb" || table == "tc" {
            format!("INSERT INTO {table} VALUES ({key}, {})", val % KEYS)
        } else {
            format!("INSERT INTO {table} VALUES ({key}, {val})")
        };
        db.execute_sql(&sql).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn nary_matches_binary_oracle(
        ops in prop::collection::vec(
            (0usize..4, 0i64..KEYS, any::<bool>(), 0i64..50),
            1..36,
        ),
        evict in any::<bool>(),
    ) {
        let mut db = seed_db();
        let plan = db.plan_sql(SQL4).unwrap();
        let pset = pset();

        let nary_cfg = OpConfig::default();
        let oracle_cfg = OpConfig {
            nary_join: false,
            ..OpConfig::default()
        };
        let mut nary = SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), nary_cfg, true)
            .unwrap()
            .0;
        let mut oracle =
            SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), oracle_cfg, true)
                .unwrap()
                .0;
        prop_assert_eq!(nary.nary_arity(), Some(4), "4-table chain must compile n-ary");
        prop_assert_eq!(oracle.nary_arity(), None, "oracle must stay on the binary tree");

        for (batch_no, batch) in ops.chunks(4).enumerate() {
            apply_batch(&mut db, batch);
            // Every other batch (when enabled): evict + restore both
            // sides so the persisted n-ary indexes go through their
            // codec round trip with in-flight deletes pending.
            if evict && batch_no % 2 == 1 {
                for m in [&mut nary, &mut oracle] {
                    let saved = save_state(m);
                    m.drop_state();
                    load_state(m, saved).unwrap();
                }
            }
            let rn = nary.maintain(&db).unwrap();
            let ro = oracle.maintain(&db).unwrap();
            prop_assert_eq!(
                (&rn.sketch_delta.added, &rn.sketch_delta.removed),
                (&ro.sketch_delta.added, &ro.sketch_delta.removed),
                "n-ary sketch delta diverged from binary oracle at batch {}",
                batch_no
            );
            let truth = capture(&plan, &db, &pset).unwrap();
            prop_assert_eq!(nary.sketch(), &truth.sketch, "n-ary != recapture at batch {}", batch_no);
            prop_assert_eq!(oracle.sketch(), &truth.sketch, "oracle != recapture at batch {}", batch_no);
        }
    }
}

/// Scan leaf over a live table's schema.
fn scan(db: &Database, table: &str) -> LogicalPlan {
    LogicalPlan::Scan {
        table: table.to_string(),
        schema: db.table(table).unwrap().schema().clone(),
    }
}

fn join(l: LogicalPlan, r: LogicalPlan, lk: usize, rk: usize) -> LogicalPlan {
    LogicalPlan::Join {
        left: Box::new(l),
        right: Box::new(r),
        left_keys: vec![lk],
        right_keys: vec![rk],
    }
}

/// The three parse shapes of ta ⋈ tb ⋈ tc ⋈ td on
/// ka = kb1, kb2 = kc1, kc2 = kd.
fn tree_shapes(db: &Database) -> [LogicalPlan; 3] {
    let (a, b, c, d) = (
        scan(db, "ta"),
        scan(db, "tb"),
        scan(db, "tc"),
        scan(db, "td"),
    );
    let left_deep = join(
        join(join(a.clone(), b.clone(), 0, 0), c.clone(), 3, 0),
        d.clone(),
        5,
        0,
    );
    let right_deep = join(
        a.clone(),
        join(b.clone(), join(c.clone(), d.clone(), 1, 0), 1, 0),
        0,
        0,
    );
    let bushy = join(join(a, b, 0, 0), join(c, d, 1, 0), 3, 0);
    [left_deep, right_deep, bushy]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn tree_shapes_maintain_identically(
        ops in prop::collection::vec(
            (0usize..4, 0i64..KEYS, any::<bool>(), 0i64..50),
            1..24,
        ),
    ) {
        let mut db = seed_db();
        let shapes = tree_shapes(&db);
        let pset = pset();

        // All three shapes canonicalize to one NaryJoin.
        let flat: Vec<_> = shapes.iter().map(|p| flatten_join(p).unwrap()).collect();
        prop_assert_eq!(&flat[1], &flat[0], "right-deep flattened differently");
        prop_assert_eq!(&flat[2], &flat[0], "bushy flattened differently");

        let mut maintainers: Vec<SketchMaintainer> = shapes
            .iter()
            .map(|p| {
                SketchMaintainer::capture(p, &db, Arc::clone(&pset), OpConfig::default(), true)
                    .unwrap()
                    .0
            })
            .collect();
        let sig = maintainers[0].nary_signature();
        prop_assert!(sig.is_some(), "shapes must compile to the n-ary circuit");
        for m in &maintainers[1..] {
            prop_assert_eq!(m.nary_signature(), sig.clone(), "operator shapes diverged");
        }

        for (batch_no, batch) in ops.chunks(4).enumerate() {
            apply_batch(&mut db, batch);
            let mut deltas = Vec::new();
            for m in maintainers.iter_mut() {
                let r = m.maintain(&db).unwrap();
                deltas.push((r.sketch_delta.added, r.sketch_delta.removed));
            }
            prop_assert_eq!(&deltas[1], &deltas[0], "right-deep delta diverged at batch {}", batch_no);
            prop_assert_eq!(&deltas[2], &deltas[0], "bushy delta diverged at batch {}", batch_no);
            let truth = capture(&shapes[0], &db, &pset).unwrap();
            for m in &maintainers {
                prop_assert_eq!(m.sketch(), &truth.sketch, "shape != recapture at batch {}", batch_no);
            }
        }
    }
}

fn imp_config(workers: usize) -> ImpConfig {
    ImpConfig {
        fragments: 4,
        sched_workers: workers,
        coalesce_budget: 2,
        ingest_queue_cap: 2,
        work_stealing: true,
        ..ImpConfig::default()
    }
}

const IMP_QUERY: &str = "SELECT va, sum(wd) AS s FROM ta JOIN tb ON (ka = kb1) \
     JOIN tc ON (kb2 = kc1) JOIN td ON (kc2 = kd) GROUP BY va HAVING sum(wd) > 100";

fn run_query(imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
    let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
        panic!("expected rows for {sql}")
    };
    result.canonical()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn nary_pool_matches_sequential_store(
        ops in prop::collection::vec(
            (0usize..4, 0i64..KEYS, any::<bool>(), 0i64..60),
            1..36,
        ),
        workers in 2usize..5,
    ) {
        let mut seq = Imp::new(seed_db(), imp_config(0));
        let mut par = Imp::new(seed_db(), imp_config(workers));
        let a = run_query(&mut seq, IMP_QUERY);
        let b = run_query(&mut par, IMP_QUERY);
        prop_assert_eq!(a, b, "capture results diverged");
        prop_assert_eq!(seq.sketch_count(), 1, "join template must capture a sketch");
        prop_assert_eq!(par.sketch_count(), 1);

        for (round, batch) in ops.chunks(6).enumerate() {
            // Updates land against a paused pool so shard inboxes hold
            // multi-table backlogs; the claim's per-table version closure
            // must keep all four join inputs on one frontier.
            let paused = par.scheduler().unwrap().pause();
            for &(t, key, delete, val) in batch {
                let (table, key_col) = TABLES[t];
                let sql = if delete {
                    format!("DELETE FROM {table} WHERE {key_col} = {key}")
                } else if table == "tb" || table == "tc" {
                    format!("INSERT INTO {table} VALUES ({key}, {})", val % KEYS)
                } else {
                    format!("INSERT INTO {table} VALUES ({key}, {val})")
                };
                seq.execute(&sql).unwrap();
                par.execute(&sql).unwrap();
            }
            paused.resume();
            seq.maintain_all_stale().unwrap();
            par.maintain_all_stale().unwrap();
            prop_assert_eq!(
                seq.sketch_states(),
                par.sketch_states(),
                "sketch sets/versions diverged at round {} (workers {})",
                round,
                workers
            );
            let a = run_query(&mut seq, IMP_QUERY);
            let b = run_query(&mut par, IMP_QUERY);
            prop_assert_eq!(a, b, "query answers diverged at round {}", round);
        }
    }
}
