//! Differential property test for the maintenance scheduler: the same
//! randomized multi-query, multi-table insert/delete workload runs
//! through the sequential in-line store (`sched_workers = 0`) and through
//! a ≥2-worker `ShardPool`. After every round both sides must hold
//! **byte-identical sketch sets and maintained versions** — coalescing,
//! batch splits, fan-out order, and worker parallelism may change cost,
//! never results. Eviction/restore cycles are woven in mid-run, and query
//! answers through the USE/rewrite path are compared as well.

use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};
use proptest::prelude::*;

const KEYS: i64 = 6;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "ta",
        Schema::new(vec![
            Field::new("ka", DataType::Int),
            Field::new("va", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tb",
        Schema::new(vec![
            Field::new("kb", DataType::Int),
            Field::new("vb", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tc",
        Schema::new(vec![
            Field::new("kc", DataType::Int),
            Field::new("wc", DataType::Int),
        ]),
    )
    .unwrap();
    for k in 0..KEYS {
        db.table_mut("ta")
            .unwrap()
            .bulk_load([row![k, k * 10], row![k, 5]])
            .unwrap();
        db.table_mut("tb")
            .unwrap()
            .bulk_load([row![k, (k + 1) % KEYS]])
            .unwrap();
        db.table_mut("tc")
            .unwrap()
            .bulk_load([row![k, k * 100], row![k, 7]])
            .unwrap();
    }
    db
}

fn config(workers: usize) -> ImpConfig {
    ImpConfig {
        fragments: 4,
        topk_buffer: Some(4),
        sched_workers: workers,
        // Tiny budget: multi-statement rounds overflow it, exercising the
        // budget-bounded gather path too.
        coalesce_budget: 8,
        ..ImpConfig::default()
    }
}

/// The multi-query workload: aggregation, join + aggregation, and top-k
/// over grouped sums — three templates, spread across shards, touching
/// overlapping table sets.
const QUERIES: [&str; 3] = [
    "SELECT ka, sum(va) AS s FROM ta GROUP BY ka HAVING sum(va) > 40",
    "SELECT kb, sum(va) AS s FROM ta JOIN tb ON (ka = kb) GROUP BY kb HAVING sum(va) > 10",
    "SELECT kc, sum(wc) AS sw FROM tc GROUP BY kc ORDER BY sw DESC LIMIT 2",
];

const TABLES: [(&str, &str); 3] = [("ta", "ka"), ("tb", "kb"), ("tc", "kc")];

fn run_query(imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
    let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
        panic!("expected rows for {sql}")
    };
    result.canonical()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn shard_pool_matches_sequential_store(
        // (table, key, delete?, value), chunked into multi-statement
        // rounds so routed batches interleave tables and coalesce.
        ops in prop::collection::vec(
            (0usize..3, 0i64..KEYS, any::<bool>(), 0i64..60),
            1..40,
        ),
        workers in 2usize..5,
        evict in any::<bool>(),
    ) {
        let mut seq = Imp::new(seed_db(), config(0));
        let mut par = Imp::new(seed_db(), config(workers));
        for sql in QUERIES {
            let a = run_query(&mut seq, sql);
            let b = run_query(&mut par, sql);
            prop_assert_eq!(a, b, "capture results diverged for {}", sql);
        }
        prop_assert_eq!(seq.sketch_count(), 3);
        prop_assert_eq!(par.sketch_count(), 3);

        for (round, batch) in ops.chunks(3).enumerate() {
            for &(t, key, delete, val) in batch {
                let (table, key_col) = TABLES[t];
                let sql = if delete {
                    format!("DELETE FROM {table} WHERE {key_col} = {key}")
                } else {
                    format!("INSERT INTO {table} VALUES ({key}, {val})")
                };
                seq.execute(&sql).unwrap();
                par.execute(&sql).unwrap();
            }
            // Mid-run eviction: the pool must survive its sketches being
            // serialized out and restored on the worker side.
            if evict && round % 2 == 1 {
                seq.evict_all_states().unwrap();
                par.evict_all_states().unwrap();
            }
            // Converge both sides (the pool processes queued routed
            // batches first — queue order — then sweeps stragglers).
            seq.maintain_all_stale().unwrap();
            par.maintain_all_stale().unwrap();
            prop_assert_eq!(
                seq.sketch_states(),
                par.sketch_states(),
                "sketch sets/versions diverged at round {} (workers {})",
                round,
                workers
            );
            // The USE path answers identically through both stores.
            let sql = QUERIES[round % QUERIES.len()];
            let a = run_query(&mut seq, sql);
            let b = run_query(&mut par, sql);
            prop_assert_eq!(a, b, "query answers diverged at round {}", round);
            prop_assert_eq!(seq.sketch_states(), par.sketch_states());
        }
    }
}
