//! Differential property test for join maintenance: random insert/delete
//! workloads through a two-join plan, run under all four combinations of
//! {bloom filters, side indexes} × {on, off}. Every configuration must
//! produce the *same* sketch delta each batch and the same final sketch
//! as a fresh recapture — the optimizations may only change cost, never
//! results. Periodic state eviction/restore cycles are woven in so the
//! lazily rebuilt bloom filters and the persisted side indexes face
//! in-flight deletes (the Δ⋈Δ cancellation corner).

use imp_core::maintain::SketchMaintainer;
use imp_core::ops::OpConfig;
use imp_core::state_codec::{load_state, save_state};
use imp_engine::Database;
use imp_sketch::{capture, PartitionSet, RangePartition};
use imp_storage::{row, DataType, Field, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

const KEYS: i64 = 5;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "ta",
        Schema::new(vec![
            Field::new("ka", DataType::Int),
            Field::new("va", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tb",
        Schema::new(vec![
            Field::new("kb1", DataType::Int),
            Field::new("kb2", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tc",
        Schema::new(vec![
            Field::new("kc", DataType::Int),
            Field::new("wc", DataType::Int),
        ]),
    )
    .unwrap();
    for k in 0..KEYS {
        db.table_mut("ta")
            .unwrap()
            .bulk_load([row![k, k * 10]])
            .unwrap();
        db.table_mut("tb")
            .unwrap()
            .bulk_load([row![k, (k + 1) % KEYS]])
            .unwrap();
        db.table_mut("tc")
            .unwrap()
            .bulk_load([row![k, k * 100]])
            .unwrap();
    }
    db
}

fn pset() -> Arc<PartitionSet> {
    Arc::new(
        PartitionSet::new(vec![
            RangePartition::new("ta", "ka", 0, vec![Value::Int(2), Value::Int(4)]).unwrap(),
            RangePartition::new("tc", "kc", 0, vec![Value::Int(2), Value::Int(4)]).unwrap(),
        ])
        .unwrap(),
    )
}

const TABLES: [(&str, &str); 3] = [("ta", "ka"), ("tb", "kb1"), ("tc", "kc")];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn four_configurations_agree_on_every_batch(
        // (table, key, delete?, value) — chunked into multi-op batches so
        // inserts and deletes of the same key collide within one delta.
        ops in prop::collection::vec(
            (0usize..3, 0i64..KEYS, any::<bool>(), 0i64..50),
            1..36,
        ),
        evict in any::<bool>(),
    ) {
        let mut db = seed_db();
        let sql = "SELECT va, wc FROM ta JOIN tb ON (ka = kb1) JOIN tc ON (kb2 = kc)";
        let plan = db.plan_sql(sql).unwrap();
        let pset = pset();

        let configs = [(true, true), (true, false), (false, true), (false, false)];
        let mut maintainers: Vec<SketchMaintainer> = configs
            .iter()
            .map(|&(bloom, index)| {
                let cfg = OpConfig {
                    bloom,
                    join_index_budget: index.then_some(1 << 20),
                    ..OpConfig::default()
                };
                SketchMaintainer::capture(&plan, &db, Arc::clone(&pset), cfg, true)
                    .unwrap()
                    .0
            })
            .collect();

        for (batch_no, batch) in ops.chunks(4).enumerate() {
            for &(t, key, delete, val) in batch {
                let (table, key_col) = TABLES[t];
                let sql = if delete {
                    format!("DELETE FROM {table} WHERE {key_col} = {key}")
                } else if table == "tb" {
                    format!("INSERT INTO tb VALUES ({key}, {})", val % KEYS)
                } else {
                    format!("INSERT INTO {table} VALUES ({key}, {val})")
                };
                db.execute_sql(&sql).unwrap();
            }
            // Every other batch (when enabled): evict + restore state so
            // the blooms are rebuilt from post-update side scans and the
            // side indexes go through their codec round trip.
            if evict && batch_no % 2 == 1 {
                for m in maintainers.iter_mut() {
                    let saved = save_state(m);
                    m.drop_state();
                    load_state(m, saved).unwrap();
                }
            }
            let mut deltas = Vec::new();
            for m in maintainers.iter_mut() {
                let report = m.maintain(&db).unwrap();
                deltas.push((report.sketch_delta.added, report.sketch_delta.removed));
            }
            for (i, d) in deltas.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    d, &deltas[0],
                    "config {:?} diverged from {:?} at batch {}",
                    configs[i], configs[0], batch_no
                );
            }
            let truth = capture(&plan, &db, &pset).unwrap();
            for (i, m) in maintainers.iter().enumerate() {
                prop_assert_eq!(
                    m.sketch(), &truth.sketch,
                    "config {:?} != recapture at batch {}",
                    configs[i], batch_no
                );
            }
        }
    }
}
