//! Integration tests of the `imp_core::advisor` lifecycle autopilot: the
//! demotion ladder, budget enforcement, promotion (byte-identical to an
//! always-maintained sketch), and the single-template eviction API.

use imp_core::advisor::Lifecycle;
use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_engine::Database;
use imp_sql::{QueryTemplate, Statement};
use imp_storage::{row, DataType, Field, Schema};

const GROUPS: i64 = 8;
const ROWS_PER_GROUP: usize = 50;

/// One table whose group 0 dominates the sums: `HAVING sum(v) > 1000`
/// marks a single fragment (a selective sketch with a large skip
/// estimate), while `HAVING sum(v) > 0` marks all of them (zero skip
/// benefit).
fn add_table(db: &mut Database, name: &str) {
    db.create_table(
        name,
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    let rows = (0..GROUPS).flat_map(|g| {
        (0..ROWS_PER_GROUP).map(move |_| if g == 0 { row![g, 100] } else { row![g, 1] })
    });
    db.table_mut(name).unwrap().bulk_load(rows).unwrap();
}

fn db_with(tables: &[&str]) -> Database {
    let mut db = Database::new();
    for t in tables {
        add_table(&mut db, t);
    }
    db
}

fn config(budget: Option<usize>, workers: usize) -> ImpConfig {
    ImpConfig {
        fragments: GROUPS as usize,
        sketch_memory_budget: budget,
        sched_workers: workers,
        ..ImpConfig::default()
    }
}

fn selective(table: &str) -> String {
    format!("SELECT g, sum(v) AS s FROM {table} GROUP BY g HAVING sum(v) > 1000")
}

fn unselective(table: &str) -> String {
    format!("SELECT g, sum(v) AS s FROM {table} GROUP BY g HAVING sum(v) > 0")
}

fn template_of(sql: &str) -> QueryTemplate {
    let Statement::Select(sel) = imp_sql::parse_one(sql).unwrap() else {
        panic!("not a select: {sql}")
    };
    QueryTemplate::of(&sel)
}

fn lifecycle_of(imp: &Imp, sql: &str) -> Option<Lifecycle> {
    imp.describe_sketches()
        .into_iter()
        .find(|s| s.sql == sql)
        .map(|s| s.lifecycle)
}

fn run(imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
    let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
        panic!("expected rows for {sql}")
    };
    result.canonical()
}

#[test]
fn zero_benefit_sketch_descends_the_ladder_one_rung_per_pass() {
    let mut imp = Imp::new(
        db_with(&["hot_t", "cold_t"]),
        config(Some(usize::MAX / 2), 0),
    );
    let hot = selective("hot_t");
    let cold = unselective("cold_t");
    imp.execute(&hot).unwrap();
    imp.execute(&cold).unwrap();
    assert_eq!(lifecycle_of(&imp, &cold), Some(Lifecycle::Maintained));

    // Pass 1: the cold sketch (zero skip benefit, positive heap cost)
    // loses even with an unlimited budget — one rung down.
    imp.execute(&hot).unwrap();
    let r1 = imp.advise().unwrap();
    assert_eq!(r1.outcome.demoted_lazy, 1, "{r1:?}");
    assert_eq!(lifecycle_of(&imp, &cold), Some(Lifecycle::Lazy));
    assert_eq!(lifecycle_of(&imp, &hot), Some(Lifecycle::Maintained));

    // Pass 2: next rung — state evicted to its serialized form.
    let before = imp
        .describe_sketches()
        .into_iter()
        .find(|s| s.sql == cold)
        .unwrap()
        .state_bytes;
    imp.execute(&hot).unwrap();
    let r2 = imp.advise().unwrap();
    assert_eq!(r2.outcome.evicted, 1, "{r2:?}");
    let after = imp
        .describe_sketches()
        .into_iter()
        .find(|s| s.sql == cold)
        .unwrap();
    assert_eq!(after.lifecycle, Lifecycle::Evicted);
    assert!(after.state_bytes < before);
    assert_eq!(after.retained_versions, 0, "versions released on eviction");

    // Pass 3: off the ladder entirely.
    imp.execute(&hot).unwrap();
    let r3 = imp.advise().unwrap();
    assert_eq!(r3.outcome.dropped, 1, "{r3:?}");
    assert_eq!(lifecycle_of(&imp, &cold), None);
    assert_eq!(imp.sketch_count(), 1);
    assert_eq!(lifecycle_of(&imp, &hot), Some(Lifecycle::Maintained));
    // The dropped sketch's tracker entry goes with it — the tracker is
    // bounded by the live store, not by every template ever captured.
    assert_eq!(imp.advisor().tracker().len(), 1);

    // The dropped template recaptures on its next query — correct
    // answers, re-entering the ladder at Maintained.
    let answers = run(&mut imp, &cold);
    assert_eq!(answers.len(), GROUPS as usize);
    assert_eq!(lifecycle_of(&imp, &cold), Some(Lifecycle::Maintained));
}

#[test]
fn budget_is_enforced_after_every_pass_on_both_backends() {
    // Probe: heap of a single stored sketch for this workload.
    let one = {
        let mut probe = Imp::new(db_with(&["ta"]), config(None, 0));
        probe.execute(&selective("ta")).unwrap();
        probe.store_heap_size()
    };
    let budget = one + one / 2; // room for ~1 sketch, never 3

    for workers in [0usize, 2] {
        let mut imp = Imp::new(db_with(&["ta", "tb", "tc"]), config(Some(budget), workers));
        for t in ["ta", "tb", "tc"] {
            imp.execute(&selective(t)).unwrap();
        }
        assert!(imp.store_heap_size() > budget, "workload must overflow");
        for round in 0..4 {
            // Favor ta so the keep-set is stable and non-empty.
            imp.execute(&selective("ta")).unwrap();
            for t in ["ta", "tb", "tc"] {
                imp.execute(&format!("INSERT INTO {t} VALUES (3, {round})"))
                    .unwrap();
            }
            let report = imp.advise().unwrap();
            let heap = imp.store_heap_size();
            assert!(
                heap <= budget,
                "workers {workers} round {round}: heap {heap} > budget {budget} ({report:?})"
            );
            assert!(report.outcome.any_demotion() || report.rounds <= 1);
            // Demoted-or-dropped sketches still answer correctly.
            let a = run(&mut imp, &selective("tb"));
            assert!(!a.is_empty());
        }
    }
}

#[test]
fn promotion_lands_byte_identical_to_always_maintained() {
    let one = {
        let mut probe = Imp::new(db_with(&["ta"]), config(None, 0));
        probe.execute(&selective("ta")).unwrap();
        probe.store_heap_size()
    };
    let budget = one + one / 2;

    let qa = selective("ta");
    let qb = selective("tb");
    let mut advised = Imp::new(db_with(&["ta", "tb"]), config(Some(budget), 0));
    let mut reference = Imp::new(db_with(&["ta", "tb"]), config(None, 0));
    for imp in [&mut advised, &mut reference] {
        imp.execute(&qa).unwrap();
        imp.execute(&qb).unwrap();
    }

    // Heat A for one pass: B is squeezed out (and down) by the budget.
    // One pass only — each further pass walks a loser one more rung, and
    // a dropped B would recapture rather than promote.
    for _ in 0..3 {
        advised.execute(&qa).unwrap();
    }
    for imp in [&mut advised, &mut reference] {
        imp.execute("INSERT INTO tb VALUES (5, 1)").unwrap();
        imp.execute("INSERT INTO ta VALUES (6, 1)").unwrap();
    }
    advised.advise().unwrap();
    reference.maintain_all_stale().unwrap();
    let b_state = lifecycle_of(&advised, &qb).expect("B still stored");
    assert_ne!(b_state, Lifecycle::Maintained, "B must be demoted");

    // Flip the workload: B becomes hot, A cools off.
    let mut promoted = false;
    for round in 0..4 {
        for _ in 0..5 {
            let x = run(&mut advised, &qb);
            let y = run(&mut reference, &qb);
            assert_eq!(x, y, "demoted B answered differently");
        }
        for imp in [&mut advised, &mut reference] {
            imp.execute(&format!("INSERT INTO tb VALUES (7, {round})"))
                .unwrap();
        }
        let report = advised.advise().unwrap();
        reference.maintain_all_stale().unwrap();
        promoted |= report.outcome.promoted > 0;
        if lifecycle_of(&advised, &qb) == Some(Lifecycle::Maintained) {
            break;
        }
    }
    assert!(promoted, "B was never promoted back");
    assert_eq!(lifecycle_of(&advised, &qb), Some(Lifecycle::Maintained));

    // Byte-identical promotion: B's bits and maintained version equal the
    // always-maintained reference's.
    reference.maintain_all_stale().unwrap();
    let find = |imp: &Imp| {
        imp.sketch_states()
            .into_iter()
            .find(|s| s.sql == qb)
            .expect("B state present")
    };
    assert_eq!(find(&advised), find(&reference));
}

#[test]
fn evict_state_targets_one_template_only() {
    for workers in [0usize, 2] {
        let mut imp = Imp::new(db_with(&["ta", "tb"]), config(None, workers));
        imp.execute(&selective("ta")).unwrap();
        imp.execute(&selective("tb")).unwrap();
        let heap_of = |imp: &Imp, sql: &str| {
            imp.describe_sketches()
                .into_iter()
                .find(|s| s.sql == sql)
                .unwrap()
                .state_bytes
        };
        let a_before = heap_of(&imp, &selective("ta"));
        let b_before = heap_of(&imp, &selective("tb"));
        let freed = imp.evict_state(&template_of(&selective("ta"))).unwrap();
        assert!(freed > 0, "workers {workers}: nothing freed");
        assert!(heap_of(&imp, &selective("ta")) < a_before);
        assert_eq!(heap_of(&imp, &selective("tb")), b_before);
        // Re-evicting an evicted template frees nothing more.
        assert_eq!(imp.evict_state(&template_of(&selective("ta"))).unwrap(), 0);
        // Unknown templates are a no-op.
        let other = template_of("SELECT g, sum(v) AS s FROM ta GROUP BY g");
        assert_eq!(imp.evict_state(&other).unwrap(), 0);
        // The evicted sketch still answers (restore on demand).
        imp.execute("INSERT INTO ta VALUES (2, 9)").unwrap();
        let rows = run(&mut imp, &selective("ta"));
        assert!(!rows.is_empty());
    }
}

#[test]
fn tracker_records_uses_and_maintenance() {
    let mut imp = Imp::new(db_with(&["ta"]), config(None, 0));
    let q = selective("ta");
    imp.execute(&q).unwrap();
    imp.execute(&q).unwrap();
    imp.execute("INSERT INTO ta VALUES (1, 5)").unwrap();
    imp.execute(&q).unwrap();
    let snapshot = imp.advisor().tracker().snapshot();
    assert_eq!(snapshot.len(), 1);
    let (key, stats) = &snapshot[0];
    assert_eq!(key.sql, q);
    assert_eq!(stats.captures, 1);
    assert_eq!(stats.fresh_uses, 1);
    assert_eq!(stats.maintained_uses, 1);
    assert_eq!(stats.maint_runs, 1);
    assert!(stats.maint_delta_rows >= 1);
    assert!(stats.rows_skipped_est > 0, "selective sketch must skip");
    assert!(stats.hot_rows_skipped > 0.0);
}

#[test]
fn advise_without_budget_is_a_no_op() {
    let mut imp = Imp::new(db_with(&["ta"]), config(None, 0));
    imp.execute(&unselective("ta")).unwrap();
    let report = imp.advise().unwrap();
    assert_eq!(report.rounds, 0);
    assert!(!report.outcome.any_demotion());
    assert_eq!(
        lifecycle_of(&imp, &unselective("ta")),
        Some(Lifecycle::Maintained)
    );
}
