//! Differential property test for the advisor autopilot: a randomized
//! multi-table insert/delete workload runs through (a) an unbudgeted
//! keep-everything store, (b) a tightly budgeted in-line store, and (c) a
//! tightly budgeted 2–4-worker sharded store. The budget is half the
//! keep-everything heap, so every autopilot pass demotes (and re-hot
//! templates promote back). Advisor decisions may change *cost*, never
//! *answers*: all three stores must return byte-identical query answers
//! every round, and the budgeted stores' `store_heap_size()` must be at
//! or under budget after every pass.

use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};
use proptest::prelude::*;

const KEYS: i64 = 6;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "ta",
        Schema::new(vec![
            Field::new("ka", DataType::Int),
            Field::new("va", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tb",
        Schema::new(vec![
            Field::new("kb", DataType::Int),
            Field::new("vb", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tc",
        Schema::new(vec![
            Field::new("kc", DataType::Int),
            Field::new("wc", DataType::Int),
        ]),
    )
    .unwrap();
    for k in 0..KEYS {
        db.table_mut("ta")
            .unwrap()
            .bulk_load([row![k, k * 10], row![k, 5]])
            .unwrap();
        db.table_mut("tb")
            .unwrap()
            .bulk_load([row![k, (k + 1) % KEYS]])
            .unwrap();
        db.table_mut("tc")
            .unwrap()
            .bulk_load([row![k, k * 100], row![k, 7]])
            .unwrap();
    }
    db
}

fn config(workers: usize, budget: Option<usize>) -> ImpConfig {
    ImpConfig {
        fragments: 4,
        topk_buffer: Some(4),
        sched_workers: workers,
        coalesce_budget: 8,
        sketch_memory_budget: budget,
        ..ImpConfig::default()
    }
}

/// The same multi-query workload as the scheduler differential suite:
/// aggregation, join + aggregation, and top-k over grouped sums.
const QUERIES: [&str; 3] = [
    "SELECT ka, sum(va) AS s FROM ta GROUP BY ka HAVING sum(va) > 40",
    "SELECT kb, sum(va) AS s FROM ta JOIN tb ON (ka = kb) GROUP BY kb HAVING sum(va) > 10",
    "SELECT kc, sum(wc) AS sw FROM tc GROUP BY kc ORDER BY sw DESC LIMIT 2",
];

const TABLES: [(&str, &str); 3] = [("ta", "ka"), ("tb", "kb"), ("tc", "kc")];

fn run_query(imp: &mut Imp, sql: &str) -> Vec<(imp_storage::Row, i64)> {
    let ImpResponse::Rows { result, .. } = imp.execute(sql).unwrap() else {
        panic!("expected rows for {sql}")
    };
    result.canonical()
}

/// Keep-everything heap for the three captured sketches — the budget
/// baseline (deterministic: depends only on the seed data and queries).
fn keep_everything_heap() -> usize {
    let mut probe = Imp::new(seed_db(), config(0, None));
    for sql in QUERIES {
        probe.execute(sql).unwrap();
    }
    probe.store_heap_size()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn budgeted_stores_answer_byte_identically(
        ops in prop::collection::vec(
            (0usize..3, 0i64..KEYS, any::<bool>(), 0i64..60),
            1..36,
        ),
        workers in 2usize..5,
    ) {
        let budget = keep_everything_heap() / 2;
        let mut all = Imp::new(seed_db(), config(0, None));
        let mut adv = Imp::new(seed_db(), config(0, Some(budget)));
        let mut advp = Imp::new(seed_db(), config(workers, Some(budget)));
        for sql in QUERIES {
            let a = run_query(&mut all, sql);
            let b = run_query(&mut adv, sql);
            let c = run_query(&mut advp, sql);
            prop_assert_eq!(&a, &b, "capture diverged (inline) for {}", sql);
            prop_assert_eq!(&a, &c, "capture diverged (sharded) for {}", sql);
        }

        let mut demotions = 0usize;
        let mut promotions = 0usize;
        for (round, batch) in ops.chunks(3).enumerate() {
            for &(t, key, delete, val) in batch {
                let (table, key_col) = TABLES[t];
                let sql = if delete {
                    format!("DELETE FROM {table} WHERE {key_col} = {key}")
                } else {
                    format!("INSERT INTO {table} VALUES ({key}, {val})")
                };
                all.execute(&sql).unwrap();
                adv.execute(&sql).unwrap();
                advp.execute(&sql).unwrap();
            }
            all.tick_maintenance().unwrap();
            let ra = adv.advise().unwrap();
            let rp = advp.advise().unwrap();
            demotions += ra.outcome.demoted_lazy + ra.outcome.evicted + ra.outcome.dropped;
            promotions += ra.outcome.promoted + rp.outcome.promoted;
            prop_assert!(
                adv.store_heap_size() <= budget,
                "inline heap {} > budget {} at round {} ({:?})",
                adv.store_heap_size(), budget, round, ra
            );
            prop_assert!(
                advp.store_heap_size() <= budget,
                "sharded heap {} > budget {} at round {} ({:?})",
                advp.store_heap_size(), budget, round, rp
            );

            // Every query, every round: answers must match bit for bit —
            // whether the budgeted store reuses, maintains on demand,
            // restores from the codec, or recaptures a dropped sketch.
            for sql in QUERIES {
                let a = run_query(&mut all, sql);
                let b = run_query(&mut adv, sql);
                let c = run_query(&mut advp, sql);
                prop_assert_eq!(&a, &b, "inline diverged at round {} for {}", round, sql);
                prop_assert_eq!(&a, &c, "sharded diverged at round {} for {}", round, sql);
            }
        }
        // The budget is half the keep-everything heap: the autopilot must
        // actually have demoted something.
        prop_assert!(demotions > 0, "tight budget never demoted");
        // Promotions depend on the sampled workload; they are counted
        // (and exercised by the advisor suite) but not asserted here.
        let _ = promotions;
    }
}
