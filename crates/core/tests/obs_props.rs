//! Property tests of the observability primitives (`imp_core::obs`).
//!
//! * The log-bucketed [`LatencyHistogram`] against a sorted-`Vec` oracle:
//!   every quantile estimate lands in the same bucket as the true order
//!   statistic (error bounded by one bucket width, ≤ 25% relative), and
//!   `merge(a, b)` is exactly `record(a ∪ b)`.
//! * The span tracer: exported spans always form a well-founded forest
//!   (parents exist and are distinct), and child timestamps nest inside
//!   their parents'.

use imp_core::obs::hist::{bucket_index, bucket_upper_bound, LatencyHistogram};
use imp_core::obs::trace::{self, Tracer};
use proptest::prelude::*;

/// The oracle: the rank used by `HistSnapshot::quantile` (`ceil(q·n)`
/// clamped to `[1, n]`), applied to the sorted samples.
fn oracle_order_statistic(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Samples spanning the interesting ranges: exact small buckets, the
/// log-bucketed middle, and near-overflow magnitudes.
fn sample_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..16,
        4 => 16u64..100_000,
        2 => 100_000u64..u64::MAX / 2,
        1 => Just(u64::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn quantiles_land_in_the_oracle_bucket(
        mut values in prop::collection::vec(sample_value(), 1..400),
        q_millis in 0u32..1001,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.max, *values.last().unwrap());
        // Sum is a plain wrapping accumulator (samples near u64::MAX).
        let expect_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(snap.sum, expect_sum);
        for q in [0.5, 0.9, 0.95, 0.99, q] {
            let oracle = oracle_order_statistic(&values, q);
            let est = snap.quantile(q);
            // Same bucket: the estimate is the bucket's upper bound
            // clamped to the observed max, so it brackets the oracle.
            prop_assert!(est >= oracle, "q={q}: est {est} < oracle {oracle}");
            prop_assert!(
                est <= bucket_upper_bound(bucket_index(oracle)),
                "q={q}: est {est} beyond oracle bucket (oracle {oracle})"
            );
            prop_assert_eq!(
                bucket_index(est).max(bucket_index(oracle)),
                bucket_index(oracle),
                "estimate left its oracle bucket"
            );
        }
    }

    #[test]
    fn merge_is_record_of_the_union(
        a in prop::collection::vec(sample_value(), 0..200),
        b in prop::collection::vec(sample_value(), 0..200),
    ) {
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        let hu = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        // Atomic-level merge…
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), hu.snapshot());
        // …and snapshot-level merge agree with recording the union.
        let mut snap = LatencyHistogram::new().snapshot();
        let hb2 = LatencyHistogram::new();
        for &v in &b {
            hb2.record(v);
        }
        let ha2 = LatencyHistogram::new();
        for &v in &a {
            ha2.record(v);
        }
        snap.merge(&ha2.snapshot());
        snap.merge(&hb2.snapshot());
        prop_assert_eq!(snap, hu.snapshot());
    }

    #[test]
    fn exported_spans_form_a_nested_forest(
        // Random bracket structure: each entry opens a span holding
        // `children` nested spans, two levels of fan-out.
        shape in prop::collection::vec((1usize..4, 0usize..4), 1..12),
    ) {
        let tracer = std::sync::Arc::new(Tracer::new(true, 4096));
        {
            let _attach = tracer.attach();
            for &(outer, inner) in &shape {
                for _ in 0..outer {
                    let _o = trace::span("outer");
                    for _ in 0..inner {
                        let _i = trace::span("inner");
                    }
                }
            }
        }
        let spans = tracer.export_spans();
        let expected: usize = shape.iter().map(|&(o, i)| o + o * i).sum();
        prop_assert_eq!(spans.len(), expected);
        for s in &spans {
            prop_assert!(s.id != 0, "span ids start at 1");
            if s.parent != 0 {
                let parent = spans
                    .iter()
                    .find(|p| p.id == s.parent)
                    .expect("parent of every span is exported");
                prop_assert!(parent.id != s.id);
                // Timestamps nest: child runs within its parent.
                prop_assert!(parent.start_ns <= s.start_ns);
                prop_assert!(
                    s.start_ns + s.dur_ns <= parent.start_ns + parent.dur_ns,
                    "child [{}, +{}] escapes parent [{}, +{}]",
                    s.start_ns, s.dur_ns, parent.start_ns, parent.dur_ns
                );
            }
        }
        // Roots exist: the forest is well-founded.
        prop_assert!(spans.iter().any(|s| s.parent == 0));
    }
}
