//! Overhead guard (ISSUE 9 acceptance): full observability — histograms,
//! tracing, an attached probe — must stay within 10% of the obs-off wall
//! clock on a smoke-scale workload. Measured as best-of-N on each side
//! (best-of discards scheduler hiccups) with a small absolute floor so a
//! fast machine's sub-millisecond jitter cannot fail the ratio.

use imp_core::middleware::{Imp, ImpConfig};
use imp_core::{ObsConfig, ObsEvent, Probe};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: i64 = 1500;
const ROUNDS: i64 = 12;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "ta",
        Schema::new(vec![
            Field::new("ka", DataType::Int),
            Field::new("va", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "tb",
        Schema::new(vec![
            Field::new("kb", DataType::Int),
            Field::new("vb", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("ta")
        .unwrap()
        .bulk_load((0..ROWS).map(|i| row![i % 50, i % 97]))
        .unwrap();
    db.table_mut("tb")
        .unwrap()
        .bulk_load((0..ROWS / 2).map(|i| row![i % 50, i % 13]))
        .unwrap();
    db
}

struct NullProbe;

impl Probe for NullProbe {
    fn on_event(&self, _event: &ObsEvent) {}
}

/// One full workload pass: capture, churn, maintain, re-query. Returns
/// the measured wall clock.
fn run_once(obs: ObsConfig, with_probe: bool) -> Duration {
    let config = ImpConfig {
        fragments: 8,
        obs,
        ..ImpConfig::default()
    };
    let mut imp = Imp::new(seed_db(), config);
    if with_probe {
        imp.subscribe_probe(Arc::new(NullProbe));
    }
    let queries = [
        "SELECT ka, sum(va) AS s FROM ta GROUP BY ka HAVING sum(va) > 100",
        "SELECT kb, sum(va) AS s FROM ta JOIN tb ON (ka = kb) GROUP BY kb HAVING sum(va) > 50",
    ];
    let start = Instant::now();
    for sql in queries {
        imp.execute(sql).unwrap();
    }
    for round in 0..ROUNDS {
        for k in 0..20 {
            imp.execute(&format!(
                "INSERT INTO ta VALUES ({}, {})",
                (round * 7 + k) % 50,
                k * 3
            ))
            .unwrap();
        }
        imp.execute(&format!("DELETE FROM tb WHERE kb = {}", round % 50))
            .unwrap();
        imp.maintain_all_stale().unwrap();
        for sql in queries {
            imp.execute(sql).unwrap();
        }
    }
    start.elapsed()
}

fn best_of(n: usize, obs: &ObsConfig, with_probe: bool) -> Duration {
    (0..n)
        .map(|_| run_once(obs.clone(), with_probe))
        .min()
        .unwrap()
}

#[test]
fn full_obs_within_ten_percent_of_disabled() {
    // Warm both paths (allocator, code, file caches) before measuring.
    run_once(ObsConfig::default(), false);
    run_once(ObsConfig::on(), true);

    let off = best_of(4, &ObsConfig::default(), false);
    let on = best_of(4, &ObsConfig::on(), true);

    // 10% relative budget plus a 20ms absolute floor: on a machine fast
    // enough that the whole workload takes a few ms, the ratio is noise.
    let budget = off.as_secs_f64() * 1.10 + 0.020;
    assert!(
        on.as_secs_f64() <= budget,
        "obs-on wall clock {:.1}ms exceeds obs-off {:.1}ms + 10% + 20ms floor",
        on.as_secs_f64() * 1e3,
        off.as_secs_f64() * 1e3,
    );
}
