//! End-to-end obsd endpoint tests (ISSUE 10 acceptance): a live `Imp`
//! with the sharded backend serves all six telemetry endpoints over real
//! TCP while maintenance churns, the Prometheus exposition parses, a
//! deliberately wedged shard flips `/health` to degraded with a flight
//! dump captured, and running with the endpoint on changes **nothing**
//! observable — sketch states stay byte-identical to obsd off.

use imp_core::middleware::{Imp, ImpConfig, ImpResponse};
use imp_core::{HealthConfig, ObsConfig};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const KEYS: i64 = 6;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "ta",
        Schema::new(vec![
            Field::new("ka", DataType::Int),
            Field::new("va", DataType::Int),
        ]),
    )
    .unwrap();
    for k in 0..KEYS {
        db.table_mut("ta")
            .unwrap()
            .bulk_load([row![k, k * 10], row![k, 5]])
            .unwrap();
    }
    db
}

fn config(workers: usize, obsd: bool) -> ImpConfig {
    ImpConfig {
        fragments: 4,
        sched_workers: workers,
        coalesce_budget: 8,
        ingest_queue_cap: 4,
        obs: ObsConfig::metrics_only(),
        obsd_addr: obsd.then(|| "127.0.0.1:0".to_string()),
        health: HealthConfig {
            tick: Duration::from_millis(25),
            ..HealthConfig::default()
        },
        ..ImpConfig::default()
    }
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: imp\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Every non-comment exposition line must be `name{labels} value` with a
/// parseable numeric value and a sane metric-name charset.
fn assert_prometheus_parses(text: &str) {
    let mut series = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line without value: {line:?}");
        });
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        series += 1;
    }
    assert!(series > 0, "empty exposition");
}

fn churn(imp: &mut Imp, rounds: i64) {
    let q = "SELECT ka, sum(va) AS s FROM ta GROUP BY ka HAVING sum(va) > 40";
    let ImpResponse::Rows { .. } = imp.execute(q).unwrap() else {
        panic!("expected rows");
    };
    for round in 0..rounds {
        for k in 0..KEYS {
            imp.execute(&format!(
                "INSERT INTO ta VALUES ({k}, {})",
                (round * 7 + k) % 50
            ))
            .unwrap();
        }
        imp.maintain_all_stale().unwrap();
        imp.execute(q).unwrap();
    }
}

#[test]
fn obsd_serves_all_endpoints_during_live_maintenance() {
    let mut imp = Imp::new(seed_db(), config(2, true));
    let addr = imp.obsd_addr().expect("obsd endpoint running");

    // Scrape every endpoint from a small fleet of threads while the main
    // thread churns updates and maintenance through the scheduler.
    let scrapers: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let targets = [
                    "/metrics",
                    "/metrics.json",
                    "/trace",
                    "/health",
                    "/sketches",
                    "/flight",
                ];
                for n in 0..12 {
                    let (status, body) = http_get(addr, targets[(i + n) % targets.len()]);
                    assert!(status == 200 || status == 503, "status {status} for {body}");
                    assert!(!body.is_empty());
                }
            })
        })
        .collect();
    churn(&mut imp, 6);
    for h in scrapers {
        h.join().unwrap();
    }

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_prometheus_parses(&metrics);
    assert!(metrics.contains("imp_sched_heartbeat"), "{metrics}");

    let (_, json) = http_get(addr, "/metrics.json");
    assert!(json.contains("\"metrics\""));

    let (_, sketches) = http_get(addr, "/sketches");
    assert!(
        sketches.contains("\"template\""),
        "no published sketches: {sketches}"
    );
    assert!(
        sketches.contains("\"lifecycle\":\"maintained\""),
        "{sketches}"
    );
    assert!(sketches.contains("\"maintain_ns\""), "{sketches}");

    let (_, flight) = http_get(addr, "/flight");
    for kind in ["staged", "routed", "claimed", "maintained", "published"] {
        assert!(
            flight.contains(&format!("\"kind\":\"{kind}\"")),
            "missing {kind}: {flight}"
        );
    }

    let (status, health) = http_get(addr, "/health");
    assert_eq!(status, 200, "healthy system reported: {health}");
    assert!(health.contains("\"verdict\":\"ok\""), "{health}");
}

#[test]
fn wedged_shard_flips_health_to_degraded_with_trip_dump() {
    let mut imp = Imp::new(seed_db(), config(2, true));
    let addr = imp.obsd_addr().unwrap();
    churn(&mut imp, 2);

    // Wedge: park every shard worker while the router keeps filling
    // inboxes — frozen heartbeats with non-empty queues.
    let paused = imp.scheduler().unwrap().pause();
    for k in 0..KEYS {
        imp.execute(&format!("INSERT INTO ta VALUES ({k}, 1)"))
            .unwrap();
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    let degraded = loop {
        let (status, body) = http_get(addr, "/health");
        if status == 503 {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never fired; last report: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(degraded.contains("\"verdict\":\"degraded\""), "{degraded}");
    assert!(
        degraded.contains("shard_liveness"),
        "wrong rule: {degraded}"
    );

    // The ok→degraded transition captured a flight dump.
    let (status, trip) = http_get(addr, "/flight?trip=1");
    assert_eq!(status, 200, "no trip dump: {trip}");
    assert!(trip.contains("\"events\""), "{trip}");

    drop(paused);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        imp.maintain_all_stale().unwrap();
        let (status, _) = http_get(addr, "/health");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "health never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sketch_states_identical_with_obsd_on_and_off() {
    let mut with = Imp::new(seed_db(), config(2, true));
    let mut without = Imp::new(seed_db(), config(2, false));
    assert!(with.obsd_addr().is_some());
    assert!(without.obsd_addr().is_none());

    churn(&mut with, 6);
    churn(&mut without, 6);

    let states = without.sketch_states();
    assert!(!states.is_empty());
    assert_eq!(states, with.sketch_states(), "obsd perturbed sketch state");
}
