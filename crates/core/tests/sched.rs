//! Integration tests of the sharded maintenance scheduler
//! (`imp_core::sched`): lifecycle through the middleware, deterministic
//! coalescing under pause, snapshot publication, and pool-backed
//! background maintenance.

use imp_core::middleware::{Imp, ImpConfig, ImpResponse, QueryMode};
use imp_engine::Database;
use imp_storage::{row, DataType, Field, Schema};

const Q: &str = "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 100";

fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    )
    .unwrap();
    db.table_mut("t")
        .unwrap()
        .bulk_load((0..60).map(|i| row![i % 6, i]))
        .unwrap();
    db
}

fn sharded_config(workers: usize) -> ImpConfig {
    ImpConfig {
        fragments: 6,
        sched_workers: workers,
        ..ImpConfig::default()
    }
}

#[test]
fn sharded_lifecycle_capture_use_maintain() {
    let mut imp = Imp::new(seed_db(), sharded_config(2));
    let ImpResponse::Rows { mode, .. } = imp.execute(Q).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::Captured));
    assert_eq!(imp.sketch_count(), 1);

    // Fresh reuse straight from the published snapshot.
    let ImpResponse::Rows { mode, result } = imp.execute(Q).unwrap() else {
        panic!()
    };
    assert!(matches!(mode, QueryMode::UsedFresh));
    let expected = imp.db().query(Q).unwrap().canonical();
    assert_eq!(result.canonical(), expected);

    // An update routes its delta; after a drain the snapshot is fresh
    // again and the query must not need maintenance.
    imp.execute("INSERT INTO t VALUES (3, 500)").unwrap();
    imp.scheduler().unwrap().drain();
    let ImpResponse::Rows { mode, result } = imp.execute(Q).unwrap() else {
        panic!()
    };
    assert!(
        matches!(mode, QueryMode::UsedFresh),
        "drained snapshot must serve the query without maintenance, got {mode:?}"
    );
    let expected = imp.db().query(Q).unwrap().canonical();
    assert_eq!(result.canonical(), expected);

    // Without a drain the query still answers correctly (either the
    // worker won the race or the select synchronizes with it).
    imp.execute("INSERT INTO t VALUES (4, 500)").unwrap();
    let ImpResponse::Rows { result, .. } = imp.execute(Q).unwrap() else {
        panic!()
    };
    let expected = imp.db().query(Q).unwrap().canonical();
    assert_eq!(result.canonical(), expected);
}

#[test]
fn paused_shards_coalesce_same_table_batches() {
    // Synchronous ingestion (`ingest_queue_cap: 0`): with workers paused,
    // each insert routes inline into the owning shard's inbox, so queue
    // depth and coalescing are deterministic.
    let mut imp = Imp::new(
        seed_db(),
        ImpConfig {
            ingest_queue_cap: 0,
            ..sharded_config(2)
        },
    );
    imp.execute(Q).unwrap(); // capture

    let epoch_before = imp.scheduler().unwrap().snapshot_epoch();
    let paused = imp.scheduler().unwrap().pause();
    for i in 0..4 {
        imp.execute(&format!("INSERT INTO t VALUES (2, {})", 50 + i))
            .unwrap();
    }
    // All four batches sit in the owning shard's queue.
    let stats = imp.scheduler().unwrap().stats();
    assert_eq!(stats.routed_batches, 4);
    assert!(
        stats.per_shard.iter().any(|s| s.max_depth >= 4),
        "queue depth must reflect the parked batches: {stats:?}"
    );
    paused.resume();
    imp.scheduler().unwrap().drain();

    let stats = imp.scheduler().unwrap().stats();
    assert!(
        stats.coalesced_batches >= 3,
        "4 parked same-table batches must coalesce, got {stats:?}"
    );
    assert!(stats.maintain_runs >= 1);
    assert!(imp.scheduler().unwrap().snapshot_epoch() > epoch_before);

    // Coalesced maintenance converged to the ground truth.
    let truth = Imp::new(
        seed_db(),
        ImpConfig {
            fragments: 6,
            ..ImpConfig::default()
        },
    );
    let mut truth = truth;
    truth.execute(Q).unwrap();
    for i in 0..4 {
        truth
            .execute(&format!("INSERT INTO t VALUES (2, {})", 50 + i))
            .unwrap();
    }
    truth.maintain_all_stale().unwrap();
    assert_eq!(imp.sketch_states(), truth.sketch_states());
}

#[test]
fn sharded_evict_restore_and_admin_ops() {
    let mut imp = Imp::new(seed_db(), sharded_config(3));
    imp.execute(Q).unwrap();
    imp.execute("INSERT INTO t VALUES (1, 40)").unwrap();
    let reports = imp.maintain_all_stale().unwrap();
    assert!(reports.len() <= 1); // routed processing may already be done

    let freed = imp.evict_all_states().unwrap();
    assert!(freed > 0);
    // Maintenance after eviction restores transparently on the worker.
    imp.execute("INSERT INTO t VALUES (1, 41)").unwrap();
    imp.scheduler().unwrap().drain();
    let ImpResponse::Rows { result, .. } = imp.execute(Q).unwrap() else {
        panic!()
    };
    assert_eq!(result.canonical(), imp.db().query(Q).unwrap().canonical());

    assert_eq!(imp.repartition_all().unwrap(), 1);
    let summaries = imp.describe_sketches();
    assert_eq!(summaries.len(), 1);
    assert!(!summaries[0].stale);
    assert!(imp.store_heap_size() > 0);
    let (_, dropped) = imp.vacuum();
    // Everything maintained: the whole log can go.
    assert!(dropped > 0);
}

#[test]
fn dropping_imp_with_live_pause_guard_does_not_deadlock() {
    // The pool's Drop must unpark workers whose PausedShards guard is
    // still alive — otherwise the worker join hangs forever.
    let mut imp = Imp::new(seed_db(), sharded_config(2));
    imp.execute(Q).unwrap();
    imp.execute("INSERT INTO t VALUES (2, 60)").unwrap();
    let _guard = imp.scheduler().unwrap().pause();
    drop(imp);
}

#[test]
fn background_maintainer_converges_on_sharded_store() {
    use imp_core::strategy::BackgroundMaintainer;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut imp = Imp::new(seed_db(), sharded_config(2));
    imp.execute(Q).unwrap();
    let imp = Arc::new(Mutex::new(imp));
    let bg = BackgroundMaintainer::spawn(Arc::clone(&imp), Duration::from_millis(2));
    {
        let mut guard = imp.lock();
        guard.execute("INSERT INTO t VALUES (5, 999)").unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        {
            let guard = imp.lock();
            if guard.describe_sketches().iter().all(|s| !s.stale) {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "sharded background maintenance never converged"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    bg.stop();
    let guard = imp.lock();
    let states = guard.sketch_states();
    assert_eq!(states.len(), 1);
}
