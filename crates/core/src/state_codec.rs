//! Persistence of maintainer state.
//!
//! "The system can persist the state that it maintains for its incremental
//! operators in the database. This enables the system to continue
//! incremental maintenance from a consistent state, e.g., when the
//! database is restarted, or when we are running out of memory and need to
//! evict the operator states for a query" (paper §2).
//!
//! The encoding walks the operator tree in a fixed order; restoring
//! requires a maintainer built from the *same plan and configuration*
//! (the store keys state by query template, so that is guaranteed).
//! Join bloom filters are deliberately not persisted — they are insert-only
//! summaries rebuilt lazily on first use (from the restored side indexes
//! when present, without a backend round trip). Join-side indexes *are*
//! persisted: rebuilding one costs a full evaluation of the side, which
//! is exactly the round trip the index exists to avoid.
//!
//! Pooled annotations are encoded by *content* (their bitvectors), never
//! by [`imp_storage::AnnotId`] — ids are only canonical within one live
//! pool. Restoring re-interns every annotation the state carries into the
//! maintainer's pool, so after a round-trip (including an eviction that
//! cleared the pool) the restored state shares allocations and ids with
//! the live delta pipeline again.

use crate::error::CoreError;
use crate::maintain::SketchMaintainer;
use crate::ops::IncNode;
use crate::Result;
use bytes::{Bytes, BytesMut};
use imp_sketch::SketchSet;
use imp_storage::{codec, AnnotPool};

/// Serialize the full maintainer state (sketch, version, μ counters,
/// every stateful operator).
pub fn save_state(m: &SketchMaintainer) -> Bytes {
    let mut buf = BytesMut::new();
    codec::encode_header(&mut buf);
    let (root, merge, sketch, version) = m.parts();
    codec::encode_u64(&mut buf, version);
    codec::encode_bitvec(&mut buf, sketch.bits());
    merge.encode_state(&mut buf);
    encode_node(root, &mut buf);
    buf.freeze()
}

/// Restore state produced by [`save_state`] into a maintainer built from
/// the same plan and configuration.
pub fn load_state(m: &mut SketchMaintainer, mut bytes: Bytes) -> Result<()> {
    codec::decode_header(&mut bytes).map_err(|e| CoreError::Codec(e.to_string()))?;
    let version = codec::decode_u64(&mut bytes).map_err(|e| CoreError::Codec(e.to_string()))?;
    let bits = codec::decode_bitvec(&mut bytes).map_err(|e| CoreError::Codec(e.to_string()))?;
    let pset = std::sync::Arc::clone(m.partitions());
    if bits.len() != pset.total_fragments() {
        return Err(CoreError::Codec(format!(
            "sketch width mismatch: stored {}, expected {}",
            bits.len(),
            pset.total_fragments()
        )));
    }
    let (root, merge, sketch, last_version, pool) = m.parts_mut();
    *sketch = SketchSet::from_bits(pset, bits);
    *last_version = version;
    merge.decode_state(&mut bytes)?;
    decode_node(root, &mut bytes, pool)?;
    if !bytes.is_empty() {
        return Err(CoreError::Codec(format!(
            "{} trailing bytes after state",
            bytes.len()
        )));
    }
    Ok(())
}

fn encode_node(node: &IncNode, buf: &mut BytesMut) {
    match node {
        IncNode::TableAccess { .. } => {}
        IncNode::Selection { input, .. }
        | IncNode::Projection { input, .. }
        | IncNode::Passthrough { input } => encode_node(input, buf),
        IncNode::Join(j) => {
            j.encode_state(buf);
            encode_node(j.left_child(), buf);
            encode_node(j.right_child(), buf);
        }
        IncNode::Nary(n) => {
            n.encode_state(buf);
            for child in n.children() {
                encode_node(child, buf);
            }
        }
        IncNode::Aggregate(a) => {
            a.encode_state(buf);
            encode_node(a.input_child(), buf);
        }
        IncNode::TopK(t) => {
            t.encode_state(buf);
            encode_node(t.input_child(), buf);
        }
    }
}

fn decode_node(node: &mut IncNode, buf: &mut Bytes, pool: &mut AnnotPool) -> Result<()> {
    match node {
        IncNode::TableAccess { .. } => Ok(()),
        IncNode::Selection { input, .. }
        | IncNode::Projection { input, .. }
        | IncNode::Passthrough { input } => decode_node(input, buf, pool),
        IncNode::Join(j) => {
            j.decode_state(buf, pool)?;
            let (l, r) = j.children_mut();
            decode_node(l, buf, pool)?;
            decode_node(r, buf, pool)
        }
        IncNode::Nary(n) => {
            n.decode_state(buf, pool)?;
            for child in n.children_mut() {
                decode_node(child, buf, pool)?;
            }
            Ok(())
        }
        IncNode::Aggregate(a) => {
            a.decode_state(buf)?;
            decode_node(a.input_child_mut(), buf, pool)
        }
        IncNode::TopK(t) => {
            t.decode_state(buf, pool)?;
            decode_node(t.input_child_mut(), buf, pool)
        }
    }
}
