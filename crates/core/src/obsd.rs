//! The live telemetry plane: obsd endpoint glue.
//!
//! Wires the [`imp_obsd`] exposition server to one [`Imp`]'s
//! observability hub. Started by [`Imp::new`] when
//! [`ImpConfig::obsd_addr`](crate::middleware::ImpConfig::obsd_addr) is
//! set (or the `IMP_OBSD_ADDR` environment variable names an address);
//! `127.0.0.1:0` binds an ephemeral port, reported by
//! [`Imp::obsd_addr`](crate::middleware::Imp::obsd_addr).
//!
//! Every endpoint reads **snapshots only** — `MetricsRegistry::sample`,
//! [`SnapshotBoard::read`], flight-ring scans, the published
//! [`HealthState`] — never scheduler locks or the store, so a slow or
//! hostile scraper cannot stall maintenance:
//!
//! | Path            | Body                                                  |
//! |-----------------|-------------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of every registered metric |
//! | `/metrics.json` | Deterministic JSON snapshot of the registry           |
//! | `/trace`        | Chrome trace-event JSON of recorded pipeline spans    |
//! | `/health`       | Watchdog verdict (`503` while degraded), firing rules |
//! | `/sketches`     | Per-template introspection: lifecycle rung, heap bytes, advisor score, maintain p50/p95/p99, owning shard and its queue depth |
//! | `/flight`       | Flight-recorder dump (`?window_ns=` bounds the window)|
//!
//! Starting obsd also starts the [`health`](crate::obs::health) watchdog
//! ticker; both shut down (threads joined) when the owning `Imp` drops.

use std::net::SocketAddr;
use std::sync::Arc;

use imp_obsd::{Request, Response, Router, Server};

use crate::advisor::{AdvisorParams, SketchKey, WorkloadTracker};
use crate::obs::flight::fid;
use crate::obs::health::spawn_health_ticker;
use crate::obs::registry::json_string;
use crate::obs::{HealthConfig, HealthState, HealthTicker, Obs, SampleValue, MAINTAIN_LATENCY};
use crate::sched::SnapshotBoard;

/// Worker threads of the exposition server: scrapes are cheap
/// snapshot-renders, so a handful of threads absorbs even aggressive
/// fleets (the `fig_obsd` harness drives 64+ concurrent scrapers).
const OBSD_THREADS: usize = 4;

/// Environment variable that starts obsd when
/// [`ImpConfig::obsd_addr`](crate::middleware::ImpConfig::obsd_addr) is
/// unset, e.g. `IMP_OBSD_ADDR=127.0.0.1:9464`.
pub const OBSD_ADDR_ENV: &str = "IMP_OBSD_ADDR";

/// Everything the endpoint handlers read from. All fields are shared
/// snapshot handles; the struct is built once and moved behind an `Arc`
/// into the router closures.
pub(crate) struct ObsdState {
    /// The observability hub (registry, tracer, flight recorder).
    pub(crate) obs: Arc<Obs>,
    /// Latest published watchdog verdict.
    pub(crate) health: Arc<HealthState>,
    /// Snapshot board of the sharded backend (`None` in-line: `/sketches`
    /// then serves an empty board).
    pub(crate) board: Option<Arc<SnapshotBoard>>,
    /// Workload tracker feeding the advisor score on `/sketches`.
    pub(crate) tracker: Arc<WorkloadTracker>,
    /// Cost-model weights used to score each published sketch.
    pub(crate) advisor: AdvisorParams,
}

/// A running obsd endpoint: the HTTP server plus the health watchdog
/// ticker it owns. Dropping the handle shuts both down and joins their
/// threads.
pub struct ObsdHandle {
    addr: SocketAddr,
    _server: Server,
    _ticker: HealthTicker,
}

impl ObsdHandle {
    /// The bound address (ephemeral ports resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl std::fmt::Debug for ObsdHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsdHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Bind `addr` and serve the telemetry plane for `state`; also spawns
/// the health watchdog ticker with `health_config`.
pub(crate) fn start_obsd(
    addr: &str,
    state: ObsdState,
    health_config: HealthConfig,
) -> std::io::Result<ObsdHandle> {
    let ticker = spawn_health_ticker(
        Arc::clone(&state.obs),
        Arc::clone(&state.health),
        health_config,
    );
    let state = Arc::new(state);
    let mut router = Router::new();

    {
        let s = Arc::clone(&state);
        router.get("/metrics", move |_req: &Request| {
            Response::prometheus(s.obs.metrics_text())
        });
    }
    {
        let s = Arc::clone(&state);
        router.get("/metrics.json", move |_req: &Request| {
            Response::json(200, s.obs.metrics_json())
        });
    }
    {
        let s = Arc::clone(&state);
        router.get("/trace", move |_req: &Request| {
            Response::json(200, s.obs.trace_chrome_json())
        });
    }
    {
        let s = Arc::clone(&state);
        router.get("/health", move |_req: &Request| {
            let report = s.health.report();
            let status = if s.health.is_degraded() { 503 } else { 200 };
            Response::json(status, report.render_json())
        });
    }
    {
        let s = Arc::clone(&state);
        router.get("/flight", move |req: &Request| {
            // `?trip=1` returns the dump captured at the last ok→degraded
            // watchdog transition instead of the live ring.
            if req.query_param("trip").is_some() {
                return match s.health.trip_dump() {
                    Some(dump) => Response::json(200, dump),
                    None => Response::json(404, "{\"flight\":null}"),
                };
            }
            let window = req
                .query_param("window_ns")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(u64::MAX);
            Response::json(200, s.obs.flight().dump_json(window))
        });
    }
    {
        let s = Arc::clone(&state);
        router.get("/sketches", move |_req: &Request| {
            Response::json(200, render_sketches(&s))
        });
    }
    router.get("/", |_req: &Request| {
        Response::text(
            200,
            "imp obsd\n/metrics\n/metrics.json\n/trace\n/health\n/sketches\n/flight\n",
        )
    });

    let server = Server::bind(addr, router, OBSD_THREADS)?;
    Ok(ObsdHandle {
        addr: server.local_addr(),
        _server: server,
        _ticker: ticker,
    })
}

/// Render `/sketches`: one entry per published sketch, joined against a
/// single registry sample (per-template maintain-latency histograms,
/// per-shard queue depths) and the workload tracker (advisor score).
fn render_sketches(state: &ObsdState) -> String {
    let mut out = String::from("{\"sketches\":{");
    let Some(board) = &state.board else {
        out.push_str("\"epoch\":0,\"shards\":0,\"entries\":[]}}");
        return out;
    };

    let samples = state.obs.registry().sample();
    let queue_depth = |shard: usize| -> u64 {
        let shard = shard.to_string();
        samples
            .iter()
            .find(|s| s.name == "imp_sched_queue_depth" && s.label("shard") == Some(&shard))
            .and_then(|s| s.value.scalar())
            .unwrap_or(0)
    };

    out.push_str("\"epoch\":");
    out.push_str(&board.epoch().to_string());
    out.push_str(",\"shards\":");
    out.push_str(&board.shards().to_string());
    out.push_str(",\"entries\":[");
    let mut first = true;
    for shard in 0..board.shards() {
        let snapshot = board.read(shard);
        let depth = queue_depth(shard);
        for sketch in &snapshot.sketches {
            if !first {
                out.push(',');
            }
            first = false;
            let template = sketch.template.text();
            out.push_str("{\"template\":");
            json_string(&mut out, template);
            out.push_str(",\"fid\":");
            out.push_str(&fid(template).to_string());
            out.push_str(",\"shard\":");
            out.push_str(&shard.to_string());
            out.push_str(",\"queue_depth\":");
            out.push_str(&depth.to_string());
            out.push_str(",\"lifecycle\":\"");
            out.push_str(sketch.lifecycle.label());
            out.push_str("\",\"state_bytes\":");
            out.push_str(&sketch.state_bytes.to_string());
            out.push_str(",\"version\":");
            out.push_str(&sketch.version.to_string());

            let key = SketchKey::new(template, sketch.sql.as_ref());
            let score = state
                .advisor
                .score(&state.tracker.get(&key), sketch.state_bytes);
            out.push_str(",\"advisor_score\":");
            out.push_str(&format!("{score:.3}"));

            out.push_str(",\"maintain_ns\":");
            let hist = samples.iter().find_map(|s| match &s.value {
                SampleValue::Histogram(h)
                    if s.name == MAINTAIN_LATENCY && s.label("template") == Some(template) =>
                {
                    Some(h)
                }
                _ => None,
            });
            match hist {
                Some(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count,
                        h.p50(),
                        h.p95(),
                        h.p99()
                    ));
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsConfig;

    fn read_url(addr: SocketAddr, target: &str) -> String {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_state() -> ObsdState {
        let obs = Obs::new(&ObsConfig::metrics_only());
        ObsdState {
            health: HealthState::new(),
            board: None,
            tracker: Arc::new(WorkloadTracker::new()),
            advisor: AdvisorParams::default(),
            obs,
        }
    }

    #[test]
    fn all_endpoints_respond_without_a_scheduler() {
        let handle = start_obsd("127.0.0.1:0", test_state(), HealthConfig::default()).unwrap();
        let addr = handle.addr();
        assert!(read_url(addr, "/metrics").starts_with("HTTP/1.1 200"));
        assert!(read_url(addr, "/metrics.json").contains("\"metrics\""));
        assert!(read_url(addr, "/trace").contains("traceEvents"));
        let health = read_url(addr, "/health");
        assert!(health.contains("\"verdict\":\"ok\""), "{health}");
        let sketches = read_url(addr, "/sketches");
        assert!(sketches.contains("\"entries\":[]"), "{sketches}");
        let flight = read_url(addr, "/flight");
        assert!(flight.contains("\"flight\""), "{flight}");
        assert!(read_url(addr, "/").contains("/sketches"));
    }

    #[test]
    fn flight_window_param_filters_events() {
        let state = test_state();
        let obs = Arc::clone(&state.obs);
        let handle = start_obsd("127.0.0.1:0", state, HealthConfig::default()).unwrap();
        obs.flight().record(crate::obs::FlightEvent::Staged {
            table: 7,
            queued: 1,
        });
        let all = read_url(handle.addr(), "/flight");
        assert!(all.contains("\"kind\":\"staged\""), "{all}");
        let none = read_url(handle.addr(), "/flight?window_ns=0");
        assert!(!none.contains("\"kind\":\"staged\""), "{none}");
    }
}
