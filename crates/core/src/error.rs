//! Core-layer errors.

use imp_engine::EngineError;
use imp_sketch::SketchError;
use std::fmt;

/// Errors from the incremental engine and middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Backend engine failure.
    Engine(EngineError),
    /// Sketch-layer failure.
    Sketch(SketchError),
    /// Plan shape the incremental engine does not support.
    Unsupported(String),
    /// Operator state diverged from the database (e.g. negative counts) —
    /// indicates a delta was skipped or applied twice.
    StateCorrupt(String),
    /// Persisted state could not be decoded.
    Codec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Sketch(e) => write!(f, "{e}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::StateCorrupt(m) => write!(f, "operator state corrupt: {m}"),
            CoreError::Codec(m) => write!(f, "state codec: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            CoreError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<SketchError> for CoreError {
    fn from(e: SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

impl From<imp_sql::SqlError> for CoreError {
    fn from(e: imp_sql::SqlError) -> Self {
        CoreError::Engine(EngineError::Sql(e))
    }
}

impl From<imp_storage::StorageError> for CoreError {
    fn from(e: imp_storage::StorageError) -> Self {
        CoreError::Engine(EngineError::Storage(e))
    }
}
