//! The incremental maintenance procedure (Def. 4.5).
//!
//! A [`SketchMaintainer`] owns everything the sketch store keeps per query
//! (paper §2): the sketch itself, the incremental operator state `S`, the
//! database version the sketch was last maintained at, and the
//! [`AnnotPool`] / [`RowInterner`] pair every delta batch of this query is
//! interpreted against. `maintain` implements
//! `I(Q, Φ, S, Δ𝒟) = (ΔP, S′)`: fetch the annotated delta since the last
//! maintained version, push it through the operator tree, merge the
//! result deltas into a sketch delta, apply it.

use crate::delta::{delta_heap_size, delta_heap_size_flat, DeltaBatch, DeltaEntry};
use crate::metrics::MaintMetrics;
use crate::ops::{IncNode, MaintCtx, MergeOp, OpConfig};
use crate::opt::pushdown::pushable_predicates;
use crate::Result;
use imp_engine::{Bag, Database};
use imp_sketch::{
    annotate_delta_with, annotation_ids_for_rows, PartitionSet, SketchDelta, SketchSet,
};
use imp_sql::{Expr, LogicalPlan};
use imp_storage::{AnnotPool, DeltaColumns, FxHashMap, PoolStats, Row, RowInterner};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Row-interner size above which a run with zero intern hits flushes the
/// cache (fresh-insert streams would otherwise pin dead payloads).
const COLD_ROW_CACHE_FLUSH: usize = 1024;

/// Pool size (distinct annotations) above which the pool is rebuilt
/// before a run. Ids are only live *within* one maintenance/bootstrap
/// call — operator state holds fragment counters or `Arc<BitVec>`
/// content handles, never ids — so flushing between runs is safe; it
/// trades memoization warmth for a hard memory bound on churny
/// annotation populations.
pub const POOL_FLUSH_LEN: usize = 1 << 16;

/// Outcome of one maintenance run.
#[derive(Debug, Clone)]
pub struct MaintReport {
    /// The sketch delta applied (`ΔP`).
    pub sketch_delta: SketchDelta,
    /// Cost counters.
    pub metrics: MaintMetrics,
    /// Whether bounded state forced a full recapture.
    pub recaptured: bool,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Operator-state heap footprint after the run (Fig. 15/17).
    pub state_bytes: usize,
    /// Per-input probe counts of the n-ary join circuit during this run
    /// (empty when the plan compiled to the binary fallback, or on the
    /// empty fast-path / recapture paths where no probing happened).
    pub nary_input_probes: Vec<u64>,
}

impl MaintReport {
    /// The run's cost as the [`crate::advisor`] accounts it: wall-clock
    /// nanoseconds plus the delta rows consumed (fetched from the log or
    /// routed in).
    pub fn advisor_cost(&self) -> crate::advisor::MaintCost {
        crate::advisor::MaintCost {
            nanos: self.duration.as_nanos() as u64,
            delta_rows: self.metrics.delta_rows_fetched,
        }
    }
}

/// Per-query maintenance state: sketch + operator states + version.
#[derive(Debug)]
pub struct SketchMaintainer {
    plan: LogicalPlan,
    pset: Arc<PartitionSet>,
    root: IncNode,
    merge: MergeOp,
    sketch: SketchSet,
    last_version: u64,
    tables: Vec<String>,
    pushdown: Option<Vec<(String, Expr)>>,
    op_config: OpConfig,
    /// Annotation arena for this query's delta pipeline. Persists across
    /// runs so memoized unions keep paying off for repeated annotations.
    pool: AnnotPool,
    /// Deduplicates delta row payloads at ingestion.
    rows: RowInterner,
}

impl SketchMaintainer {
    /// Capture a sketch for `plan` and bootstrap operator state by feeding
    /// the full current database through the incremental pipeline as
    /// insertions from the empty state. Returns the maintainer plus the
    /// query result (capture answers the query too, Fig. 2).
    pub fn capture(
        plan: &LogicalPlan,
        db: &Database,
        pset: Arc<PartitionSet>,
        op_config: OpConfig,
        selection_pushdown: bool,
    ) -> Result<(SketchMaintainer, Bag)> {
        let root = IncNode::build(plan, &op_config)?;
        let tables = plan.tables();
        let pushdown = selection_pushdown.then(|| pushable_predicates(plan));
        let mut m = SketchMaintainer {
            plan: plan.clone(),
            merge: MergeOp::new(pset.total_fragments()),
            sketch: SketchSet::empty(Arc::clone(&pset)),
            pool: AnnotPool::new(pset.total_fragments()),
            rows: RowInterner::new(),
            pset,
            root,
            last_version: 0,
            tables,
            pushdown,
            op_config,
        };
        let mut metrics = MaintMetrics::default();
        let result = m.bootstrap(db, &mut metrics)?;
        Ok((m, result))
    }

    /// Rebuild state + sketch from the full current database, accumulating
    /// the work into `metrics` (recapture paths report it, Fig. 13/14).
    /// The pool is kept — its ids stay canonical and memoized unions
    /// remain valid.
    fn bootstrap(&mut self, db: &Database, metrics: &mut MaintMetrics) -> Result<Bag> {
        self.root.reset();
        self.merge.reset();
        self.sketch = SketchSet::empty(Arc::clone(&self.pset));

        let mut deltas: FxHashMap<String, DeltaBatch> = FxHashMap::default();
        for table in &self.tables {
            let t = db.table(table)?;
            let mut delta = DeltaBatch::with_capacity(t.row_count());
            let part = self.pset.for_table(table);
            let pool = &mut self.pool;
            t.scan(
                None,
                |row| {
                    let annot = match &part {
                        Some((_, offset, p)) => {
                            pool.singleton(offset + p.fragment_of(&row[p.column]))
                        }
                        None => pool.empty_id(),
                    };
                    delta.push(DeltaEntry {
                        row,
                        annot,
                        mult: 1,
                    });
                },
                |_| {},
            );
            deltas.insert(table.clone(), self.apply_pushdown(table, delta, None));
        }
        let out = {
            let mut ctx = MaintCtx {
                db,
                pset: &self.pset,
                deltas: &deltas,
                pool: &mut self.pool,
                metrics,
                needs_recapture: false,
            };
            self.root.process(&mut ctx)?
        };
        let delta = self.merge.process(&out, &self.pool)?;
        self.sketch.apply_delta(&delta);
        // Split-invariant versioning: the scan consumed every row of the
        // sketch's tables, i.e. everything up to the last logged record of
        // those tables. Using that (instead of the global `db.version()`)
        // makes the version a pure function of the consumed content, so a
        // sequential full-range run and a scheduler-routed sub-range run
        // land on byte-identical versions. The `max` guards against
        // regression when a vacuumed log no longer holds its tail.
        self.last_version = self.last_version.max(tables_log_version(db, &self.tables)?);
        // Bootstrap output from the empty state is the full query result.
        Ok(out
            .into_iter()
            .filter(|d| d.mult > 0)
            .map(|d| (d.row, d.mult))
            .collect())
    }

    /// Pre-filter a table's delta with push-down predicates (§7.2).
    fn apply_pushdown(
        &self,
        table: &str,
        delta: DeltaBatch,
        metrics: Option<&mut MaintMetrics>,
    ) -> DeltaBatch {
        let Some(preds) = &self.pushdown else {
            return delta;
        };
        let preds: Vec<&Expr> = preds
            .iter()
            .filter(|(t, _)| t == table)
            .map(|(_, p)| p)
            .collect();
        if preds.is_empty() {
            return delta;
        }
        let before = delta.len();
        let kept: DeltaBatch = delta
            .into_iter()
            .filter(|d| {
                preds
                    .iter()
                    .all(|p| p.eval_predicate(&d.row).unwrap_or(true))
            })
            .collect();
        if let Some(m) = metrics {
            m.delta_rows_pruned += (before - kept.len()) as u64;
        }
        kept
    }

    /// Is the sketch stale w.r.t. the current database?
    pub fn is_stale(&self, db: &Database) -> bool {
        self.tables.iter().any(|t| {
            db.delta_since(t, self.last_version)
                .map(|d| !d.is_empty())
                .unwrap_or(false)
        })
    }

    /// Incrementally maintain the sketch to the current database version.
    pub fn maintain(&mut self, db: &Database) -> Result<MaintReport> {
        let start = Instant::now();
        let mut metrics = MaintMetrics::default();
        if self.pool.len() > POOL_FLUSH_LEN {
            self.flush_pool_caches();
        }
        let pool_stats_before = self.pool.stats();
        let row_hits_before = self.rows.hits();

        // Fetch + annotate + (optionally) pre-filter the deltas.
        let mut deltas: FxHashMap<String, DeltaBatch> = FxHashMap::default();
        let mut max_seen = 0u64;
        for table in &self.tables {
            let records = db.delta_since(table, self.last_version)?;
            metrics.delta_rows_fetched += records.len() as u64;
            if let Some(last) = records.last() {
                max_seen = max_seen.max(last.version);
            }
            let annotated = annotate_delta_with(
                &mut self.pool,
                &mut self.rows,
                &self.pset,
                table,
                records,
                self.op_config.columnar_min,
            );
            let filtered = self.apply_pushdown(table, annotated, Some(&mut metrics));
            let normalized =
                crate::delta::normalize_delta_with(filtered, self.op_config.columnar_min);
            deltas.insert(table.clone(), normalized);
        }
        self.flush_cold_row_cache(row_hits_before);
        self.run_prepared(db, deltas, max_seen, metrics, start, pool_stats_before)
    }

    /// Maintain from scheduler-routed table deltas instead of fetching
    /// from the backend's delta logs (the [`crate::sched`] shard workers'
    /// path). Entries at or below the maintained version are skipped, so
    /// a routed batch may safely overlap history the sketch has already
    /// consumed (e.g. after an on-demand [`Self::maintain`] overtook the
    /// queue). Produces byte-identical sketches and versions to the
    /// fetching path run over the same record ranges.
    pub fn maintain_from(
        &mut self,
        db: &Database,
        routed: &FxHashMap<String, Vec<Arc<crate::sched::TableDelta>>>,
    ) -> Result<MaintReport> {
        let start = Instant::now();
        let mut metrics = MaintMetrics::default();
        if self.pool.len() > POOL_FLUSH_LEN {
            self.flush_pool_caches();
        }
        let pool_stats_before = self.pool.stats();
        let row_hits_before = self.rows.hits();

        let mut deltas: FxHashMap<String, DeltaBatch> = FxHashMap::default();
        let mut max_seen = 0u64;
        for table in &self.tables {
            // Columnar gather: version-filter the routed batches into
            // contiguous row/multiplicity arrays, then annotate (chunked
            // fragment extraction) and intern in whole-column passes.
            let mut rows_col: Vec<Row> = Vec::new();
            let mut mults: Vec<i64> = Vec::new();
            for batch in routed.get(table).map(Vec::as_slice).unwrap_or_default() {
                for entry in batch
                    .entries
                    .iter()
                    .filter(|e| e.version > self.last_version)
                {
                    rows_col.push(entry.row.clone());
                    mults.push(entry.mult);
                }
                max_seen = max_seen.max(batch.to_version);
            }
            metrics.delta_rows_fetched += rows_col.len() as u64;
            let annots = annotation_ids_for_rows(&mut self.pool, &self.pset, table, &rows_col);
            let mut cols = DeltaColumns::with_capacity(rows_col.len());
            for (row, (annot, mult)) in rows_col.into_iter().zip(annots.into_iter().zip(mults)) {
                cols.push(self.rows.intern(row), annot, mult);
            }
            let annotated = cols.into_batch();
            let filtered = self.apply_pushdown(table, annotated, Some(&mut metrics));
            let normalized =
                crate::delta::normalize_delta_with(filtered, self.op_config.columnar_min);
            deltas.insert(table.clone(), normalized);
        }
        self.flush_cold_row_cache(row_hits_before);
        self.run_prepared(db, deltas, max_seen, metrics, start, pool_stats_before)
    }

    /// A stream of fresh inserts never hits the interner; drop a grown
    /// cold cache so dead payloads don't stay pinned for the maintainer's
    /// lifetime (the in-flight batches keep their `Arc`s).
    fn flush_cold_row_cache(&mut self, row_hits_before: u64) {
        if self.rows.hits() == row_hits_before && self.rows.len() >= COLD_ROW_CACHE_FLUSH {
            self.rows.clear();
        }
    }

    /// Shared tail of [`Self::maintain`] / [`Self::maintain_from`]: push
    /// prepared per-table batches through the operator tree, fall back to
    /// recapture when bounded state exhausts, apply the sketch delta, and
    /// advance the version to the highest record version consumed
    /// (split-invariant — see [`Self::maintain`]'s bootstrap notes).
    fn run_prepared(
        &mut self,
        db: &Database,
        deltas: FxHashMap<String, DeltaBatch>,
        max_seen: u64,
        mut metrics: MaintMetrics,
        start: Instant,
        pool_stats_before: PoolStats,
    ) -> Result<MaintReport> {
        // Memory accounting walks every entry; keep its cost out of the
        // reported maintenance duration (it is measurement, not work the
        // flat representation would have avoided).
        let acct_start = Instant::now();
        for batch in deltas.values() {
            metrics.delta_bytes_pooled += delta_heap_size(batch, &self.pool) as u64;
            metrics.delta_bytes_flat += delta_heap_size_flat(batch, &self.pool) as u64;
        }
        let accounting = acct_start.elapsed();
        if deltas.values().all(|b| b.is_empty()) {
            // Nothing survived (or nothing new): advance past records that
            // were consumed-but-pruned so they are not refetched.
            self.last_version = self.last_version.max(max_seen);
            return Ok(MaintReport {
                sketch_delta: SketchDelta::default(),
                metrics,
                recaptured: false,
                duration: start.elapsed().saturating_sub(accounting),
                state_bytes: self.state_heap_size(),
                nary_input_probes: Vec::new(),
            });
        }

        let (out, recapture) = {
            let mut ctx = MaintCtx {
                db,
                pset: &self.pset,
                deltas: &deltas,
                pool: &mut self.pool,
                metrics: &mut metrics,
                needs_recapture: false,
            };
            let out = self.root.process(&mut ctx)?;
            (out, ctx.needs_recapture)
        };

        if recapture {
            // Bounded state exhausted: fall back to full maintenance
            // (§7.2 / §8.4.3), reporting it — including the bootstrap's
            // own work — so callers can account for it.
            let before = self.sketch.clone();
            self.bootstrap(db, &mut metrics)?;
            let sketch_delta = diff_sketches(&before, &self.sketch);
            metrics.record_pool_activity(pool_stats_before, self.pool.stats());
            return Ok(MaintReport {
                sketch_delta,
                metrics,
                recaptured: true,
                duration: start.elapsed().saturating_sub(accounting),
                state_bytes: self.state_heap_size(),
                nary_input_probes: Vec::new(),
            });
        }

        let sketch_delta = self.merge.process(&out, &self.pool)?;
        self.sketch.apply_delta(&sketch_delta);
        self.last_version = self.last_version.max(max_seen);
        metrics.record_pool_activity(pool_stats_before, self.pool.stats());
        Ok(MaintReport {
            sketch_delta,
            metrics,
            recaptured: false,
            duration: start.elapsed().saturating_sub(accounting),
            state_bytes: self.state_heap_size(),
            nary_input_probes: self.root.nary_probe_counts().unwrap_or_default(),
        })
    }

    /// Full maintenance: recapture from scratch regardless of staleness
    /// (the FM baseline of §8). The report carries the bootstrap's real
    /// cost counters, not zeros.
    pub fn full_maintain(&mut self, db: &Database) -> Result<MaintReport> {
        let start = Instant::now();
        let pool_stats_before = self.pool.stats();
        let before = self.sketch.clone();
        let mut metrics = MaintMetrics::default();
        self.bootstrap(db, &mut metrics)?;
        metrics.record_pool_activity(pool_stats_before, self.pool.stats());
        Ok(MaintReport {
            sketch_delta: diff_sketches(&before, &self.sketch),
            metrics,
            recaptured: true,
            duration: start.elapsed(),
            state_bytes: self.state_heap_size(),
            nary_input_probes: Vec::new(),
        })
    }

    /// The maintained sketch (valid as of [`Self::version`]).
    pub fn sketch(&self) -> &SketchSet {
        &self.sketch
    }

    /// Database version the sketch is valid for.
    pub fn version(&self) -> u64 {
        self.last_version
    }

    /// The maintained query plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The partitions `Φ`.
    pub fn partitions(&self) -> &Arc<PartitionSet> {
        &self.pset
    }

    /// Base tables whose updates invalidate this sketch.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Operator tuning configuration.
    pub fn op_config(&self) -> OpConfig {
        self.op_config
    }

    /// The annotation pool backing this query's delta pipeline.
    pub fn pool(&self) -> &AnnotPool {
        &self.pool
    }

    /// Cumulative pool activity (hash-consing, union memoization, and
    /// row interning).
    pub fn pool_stats(&self) -> PoolStats {
        let mut stats = self.pool.stats();
        stats.rows_interned = self.rows.interned();
        stats.row_hits = self.rows.hits();
        stats
    }

    /// Entries and bytes of the top-k operator state (Fig. 13e/f).
    pub fn topk_state(&self) -> Option<(usize, usize)> {
        self.root.topk_state()
    }

    /// Number of inputs of the n-ary join circuit, if the plan compiled
    /// to one (`None` means the binary-tree fallback is in use).
    pub fn nary_arity(&self) -> Option<usize> {
        self.root.nary_arity()
    }

    /// Canonical signature of the n-ary join circuit (input schemas +
    /// equivalence classes), if the plan compiled to one. Identical
    /// across all parse shapes of the same equi-join set.
    pub fn nary_signature(&self) -> Option<String> {
        self.root.nary_signature()
    }

    /// Aggregate entries and bytes of the join-side indexes (Fig. 17).
    pub fn join_index_state(&self) -> (usize, usize) {
        self.root.join_index_state()
    }

    /// Drop the in-memory operator state (after persisting it via
    /// [`crate::state_codec::save_state`]); the sketch and version stay
    /// available for use-rewrites. The annotation pool and row interner
    /// are flushed too — no batch is in flight, and restoring re-interns
    /// what the state needs. Restore with
    /// [`crate::state_codec::load_state`] before the next maintenance.
    pub fn drop_state(&mut self) {
        self.root.reset();
        self.merge.reset();
        self.pool.clear();
        self.rows.clear();
    }

    /// Heap footprint of all operator state + merge counters + sketch +
    /// the interning pools, with shared-ownership-aware attribution of
    /// annotation contents (each allocation counted exactly once, whether
    /// the pool or only the operator state keeps it alive).
    pub fn state_heap_size(&self) -> usize {
        self.root.heap_size()
            + self.merge.heap_size()
            + self.sketch.heap_size()
            + self.pool.heap_size()
            + self.rows.heap_size()
            + self.unpooled_annot_bytes()
    }

    /// Heap bytes of annotation contents kept alive *only* by operator
    /// state `Arc<BitVec>` handles (top-k entries, join-side indexes) and
    /// not owned by the pool. Normally zero — state handles come from
    /// [`AnnotPool::share`], so the pool's own `heap_size` covers their
    /// contents — but after a between-runs pool flush (the
    /// [`POOL_FLUSH_LEN`] bound, or [`Self::flush_pool_caches`]) those
    /// bitvectors live on solely through the state's handles and would
    /// otherwise be counted by neither side. Each distinct allocation
    /// counts once, however many entries share it.
    pub fn unpooled_annot_bytes(&self) -> usize {
        let mut seen: imp_storage::FxHashSet<usize> = imp_storage::FxHashSet::default();
        let mut bytes = 0usize;
        let pool = &self.pool;
        self.root.for_each_annot(&mut |handle| {
            if seen.insert(std::sync::Arc::as_ptr(handle) as usize) && !pool.owns(handle) {
                bytes += handle.heap_size() + std::mem::size_of::<imp_storage::BitVec>();
            }
        });
        bytes
    }

    /// Flush the annotation pool between runs (the bound-triggered
    /// [`POOL_FLUSH_LEN`] flush, exposed for memory-pressure callers and
    /// tests). Safe at any between-runs point: ids are only live within
    /// one maintenance/bootstrap call — persistent operator state holds
    /// fragment counters or `Arc<BitVec>` content handles, never ids.
    /// Trades memoization warmth (and the pool's coverage of state-held
    /// annotation contents — see [`Self::unpooled_annot_bytes`]) for a
    /// hard bound on the pool's footprint.
    pub fn flush_pool_caches(&mut self) {
        self.pool.clear();
    }

    /// Internal accessors for state persistence (see [`crate::state_codec`]).
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (
        &mut IncNode,
        &mut MergeOp,
        &mut SketchSet,
        &mut u64,
        &mut AnnotPool,
    ) {
        (
            &mut self.root,
            &mut self.merge,
            &mut self.sketch,
            &mut self.last_version,
            &mut self.pool,
        )
    }

    /// Internal accessors for state persistence.
    pub(crate) fn parts(&self) -> (&IncNode, &MergeOp, &SketchSet, u64) {
        (&self.root, &self.merge, &self.sketch, self.last_version)
    }
}

/// Highest logged record version across `tables` (0 when their logs are
/// empty): the version a from-scratch scan of those tables represents.
fn tables_log_version(db: &Database, tables: &[String]) -> Result<u64> {
    let mut v = 0u64;
    for table in tables {
        if let Some(last) = db.table(table)?.delta_log().all().last() {
            v = v.max(last.version);
        }
    }
    Ok(v)
}

/// Compute the delta between two sketch versions (`ΔP` with
/// `P₂ = P₁ ∪• ΔP`).
pub fn diff_sketches(before: &SketchSet, after: &SketchSet) -> SketchDelta {
    let mut delta = SketchDelta::default();
    let n = before.bits().len();
    for f in 0..n {
        match (before.contains(f), after.contains(f)) {
            (false, true) => delta.added.push(f),
            (true, false) => delta.removed.push(f),
            _ => {}
        }
    }
    delta
}
